#!/usr/bin/env python3
"""Decentralized payments on top of Byzantine reliable broadcast.

The paper's introduction points at BRB-based decentralized payment
systems (consensus-free asset transfer): because every correct process
delivers the same set of transfers from each account — even when the
account owner is Byzantine — balances can be tracked consistently without
running consensus.

This example runs a small payment system over a partially connected
network: every account owner broadcasts its transfers with increasing
broadcast identifiers (per-account sequence numbers), a Byzantine owner
tries to double-spend by equivocating, and every correct replica applies
the transfers it BRB-delivers.  The example prints the final balances and
shows that all correct replicas agree and that the double-spend attempt
could not split them.

Run with:  python examples/decentralized_payments.py
"""

from collections import defaultdict

from repro import (
    CrossLayerBrachaDolev,
    FixedDelay,
    ModificationSet,
    SimulatedNetwork,
    SystemConfig,
    random_regular_topology,
)
from repro.network.adversary import EquivocatingSource

INITIAL_BALANCE = 100


def transfer(recipient: int, amount: int) -> bytes:
    return f"pay {amount} to {recipient}".encode()


def parse_transfer(payload: bytes):
    parts = payload.decode().split()
    return int(parts[3]), int(parts[1])  # (recipient, amount)


def main() -> None:
    n, f, k = 10, 2, 5
    config = SystemConfig.for_system(n, f)
    topology = random_regular_topology(n, k, seed=11, min_connectivity=config.min_connectivity)
    mods = ModificationSet.latency_and_bandwidth_optimized()

    byzantine_account = 3
    protocols = {}
    for pid in topology.nodes:
        neighbors = sorted(topology.neighbors(pid))
        if pid == byzantine_account:
            # Tries to send conflicting transfers to different neighbors.
            protocols[pid] = EquivocatingSource(
                pid,
                neighbors,
                family="cross_layer",
                conflicting_payload=transfer(recipient=9, amount=90),
            )
        else:
            protocols[pid] = CrossLayerBrachaDolev(pid, config, neighbors, modifications=mods)

    # Replica state: balances per observing process.
    balances = {pid: defaultdict(lambda: INITIAL_BALANCE) for pid in topology.nodes}
    applied = {pid: set() for pid in topology.nodes}

    def on_deliver(pid, event, time):
        key = (event.source, event.bid)
        if key in applied[pid]:
            return
        applied[pid].add(key)
        recipient, amount = parse_transfer(event.payload)
        if balances[pid][event.source] >= amount:
            balances[pid][event.source] -= amount
            balances[pid][recipient] += amount

    network = SimulatedNetwork(
        topology, protocols, delay_model=FixedDelay(20.0), seed=11, on_deliver=on_deliver
    )

    # Honest payments: account i pays (i + 1) mod n.
    for account in topology.nodes:
        if account == byzantine_account:
            continue
        network.broadcast(account, transfer((account + 1) % n, 10), bid=0)
    # The Byzantine account attempts a double spend (equivocation) with bid 0.
    network.broadcast(byzantine_account, transfer(recipient=4, amount=90), bid=0)
    network.run()

    correct = [pid for pid in topology.nodes if pid != byzantine_account]
    reference = dict(balances[correct[0]])
    agreement = all(dict(balances[pid]) == reference for pid in correct)

    print("Final balances as seen by replica 0:")
    for account in sorted(topology.nodes):
        print(f"  account {account:>2}: {balances[0][account]:>4}")
    print(f"\nAll correct replicas agree on every balance: {agreement}")
    double_spend_applied = sum(
        1 for key in applied[correct[0]] if key[0] == byzantine_account
    )
    print(
        "Transfers applied from the equivocating account "
        f"(at most one can be delivered per broadcast id): {double_spend_applied}"
    )


if __name__ == "__main__":
    main()
