#!/usr/bin/env python3
"""Causally-consistent decentralized payments over RCO-on-BRB.

The paper's introduction points at BRB-based decentralized payment
systems (consensus-free asset transfer): because every correct process
delivers the same set of transfers from each account, balances can be
tracked consistently without consensus.  One ingredient is still
missing from bare BRB, though — *order*.  A payment that spends money
received moments earlier is only safe to apply if every replica sees
the funding transfer first; BRB alone promises nothing about the
relative order of broadcasts from different accounts.

This example stacks the causal-order wrapper (``rco_cross_layer``) on
the cross-layer Bracha–Dolev protocol and runs an escalating payment
chain where every hop spends the funds the previous hop just sent:

    account 0 pays 60 to 3,  3 pays 120 to 6,  6 pays 180 to 9, ...

Each amount exceeds the payer's initial balance, so a replica that
applied hop *i + 1* before hop *i* would bounce the payment — replicas
only stay consistent if every one of them delivers the chain in causal
order, which is exactly what the RCO pending-set rule enforces.

The scenario is declarative: a single :class:`ScenarioSpec` with a
``causal_chain`` workload, expanded over the ``protocol`` grid axis so
the causal wrapper runs side by side with bare BRB, and replayable
bit-for-bit from its seed.

Run with:  python examples/decentralized_payments.py
"""

from repro.rco import causal_dependencies, causal_order_violations
from repro.scenarios import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    expand_grid,
    run_scenario,
)

INITIAL_BALANCE = 100

#: The payment chain: each account pays its successor, escalating the
#: amount so every hop needs the funds of the hop before it.
CHAIN = (0, 3, 6, 9)
AMOUNT_STEP = 60


def chain_transfers(spec):
    """Map each chained broadcast key to its ``(payer, payee, amount)``."""
    transfers = {}
    broadcasts = spec.broadcasts()
    for index, broadcast in enumerate(broadcasts):
        payee = (
            broadcast.successor
            if broadcast.successor is not None
            else broadcasts[0].source
        )
        transfers[broadcast.key] = (
            broadcast.source,
            payee,
            AMOUNT_STEP * (index + 1),
        )
    return transfers


def replay_ledgers(result):
    """Apply the transfers in each replica's own delivery order.

    A transfer is applied only when the payer can cover it — the rule a
    real asset-transfer replica enforces — so any replica that receives
    a hop before its funding hop permanently bounces the payment.
    Returns per-replica balance dicts and the set of bounced hops.
    """
    transfers = chain_transfers(result.spec)
    balances = {
        pid: {account: INITIAL_BALANCE for account in set(CHAIN)}
        for pid in result.correct_processes
    }
    bounced = set()
    for pid, key in result.metrics.delivery_times:
        if pid not in balances or key not in transfers:
            continue
        payer, payee, amount = transfers[key]
        if balances[pid][payer] >= amount:
            balances[pid][payer] -= amount
            balances[pid][payee] += amount
        else:
            bounced.add((pid, key))
    return balances, bounced


def main() -> None:
    base = ScenarioSpec(
        name="causal-payments",
        topology=TopologySpec(kind="harary", n=10, k=5),
        f=2,
        seed=11,
        workload=WorkloadSpec.causal_chain(CHAIN, interval_ms=200.0),
    )
    cells = expand_grid(base, {"protocol": ["rco_cross_layer", "cross_layer"]})

    for spec in cells:
        result = run_scenario(spec)
        balances, bounced = replay_ledgers(result)
        reference = next(iter(balances.values()))
        agreement = all(ledger == reference for ledger in balances.values())
        violations = causal_order_violations(result)

        print(f"protocol={spec.protocol}")
        print(f"  causal dependencies enforced: {len(causal_dependencies(result))}")
        print(f"  causal-order violations: {len(violations)}")
        print(f"  payments bounced for lack of funds: {len(bounced)}")
        print(f"  all correct replicas agree on every balance: {agreement}")
        print("  final balances (replica view of the chain accounts):")
        for account in sorted(reference):
            print(f"    account {account:>2}: {reference[account]:>4}")
        print()

    print(
        "Only the rco_* protocols *guarantee* the chain is applied in "
        "causal order at every replica; bare BRB happening to match here "
        "is a property of this schedule, not of the protocol."
    )


if __name__ == "__main__":
    main()
