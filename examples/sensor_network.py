#!/usr/bin/env python3
"""Sensor network: repeatable broadcasts with Byzantine sensors.

The paper motivates repeatable broadcasts with sensing applications
(Sec. 5): a sensor periodically re-broadcasts readings — possibly the
exact same payload — distinguished by a monotonically increasing
broadcast identifier.  This example simulates a 16-node sensor mesh
(a torus grid, 4-connected, so f = 1 is tolerated), in which:

* every sensor broadcasts three temperature readings;
* one sensor is mute (crashed) and another tampers with the paths of the
  messages it relays;
* each correct node maintains the latest reading of every sensor from
  the BRB deliveries and the example prints the resulting, consistent
  monitoring table.

Run with:  python examples/sensor_network.py
"""

from collections import defaultdict

from repro import (
    CrossLayerBrachaDolev,
    FixedDelay,
    ModificationSet,
    SimulatedNetwork,
    SystemConfig,
    torus_topology,
)
from repro.network.adversary import MuteProcess, PathForgingRelay


def reading(sensor: int, round_index: int) -> bytes:
    temperature = 18.0 + (sensor * 7 + round_index * 3) % 10
    return f"sensor={sensor};round={round_index};temp={temperature:.1f}C".encode()


def main() -> None:
    rows, cols, f = 4, 4, 1
    topology = torus_topology(rows, cols)
    config = SystemConfig.for_system(rows * cols, f)
    mods = ModificationSet.latency_and_bandwidth_optimized()

    mute_sensor, forging_sensor = 5, 10
    protocols = {}
    for pid in topology.nodes:
        neighbors = sorted(topology.neighbors(pid))
        if pid == mute_sensor:
            protocols[pid] = MuteProcess(pid, neighbors)
        elif pid == forging_sensor:
            inner = CrossLayerBrachaDolev(pid, config, neighbors, modifications=mods)
            protocols[pid] = PathForgingRelay(inner, config, seed=7)
        else:
            protocols[pid] = CrossLayerBrachaDolev(pid, config, neighbors, modifications=mods)

    # Application state: per observer, the latest reading of each sensor.
    latest = defaultdict(dict)

    def on_deliver(pid, event, time):
        latest[pid][event.source] = (event.bid, event.payload.decode())

    network = SimulatedNetwork(
        topology, protocols, delay_model=FixedDelay(20.0), seed=3, on_deliver=on_deliver
    )

    for round_index in range(3):
        for sensor in topology.nodes:
            if sensor == mute_sensor:
                continue  # the crashed sensor never reports
            network.broadcast(sensor, reading(sensor, round_index), bid=round_index)
    metrics = network.run()

    observer = 0
    print(f"Monitoring table as seen by node {observer}:")
    for sensor in sorted(latest[observer]):
        bid, text = latest[observer][sensor]
        print(f"  sensor {sensor:>2} (last broadcast id {bid}): {text}")

    # All correct observers agree on every sensor's latest reading.
    correct = [p for p in topology.nodes if p not in (mute_sensor,)]
    reference = latest[observer]
    consistent = all(latest[pid] == reference for pid in correct if pid in latest)
    print(f"\nAll correct nodes agree on the monitoring table: {consistent}")
    print(f"Total messages: {metrics.message_count}, bytes: {metrics.total_bytes / 1000:.1f} kB")
    print(f"Missing sensors (crashed): {sorted(set(topology.nodes) - set(reference))}")


if __name__ == "__main__":
    main()
