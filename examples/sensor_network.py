#!/usr/bin/env python3
"""Sensor network: declarative repeated broadcasts with Byzantine sensors.

The paper motivates repeatable broadcasts with sensing applications
(Sec. 5): a sensor periodically re-broadcasts readings — possibly the
exact same payload — distinguished by a monotonically increasing
broadcast identifier.  This example expresses that as a declarative
multi-broadcast :class:`WorkloadSpec` on a 16-node sensor mesh (a torus
grid, 4-connected, so f = 1 is tolerated):

* three sensors each report three readings, interleaved round-robin at a
  fixed interval (``WorkloadSpec.round_robin``);
* one sensor is mute and the scenario engine places it deterministically;
* the run freezes one :class:`BroadcastOutcome` per reading — its own
  delivery set, latency and safety verdicts — plus run-level throughput
  in delivered broadcasts per (simulated) second.

Run with:  PYTHONPATH=src python examples/sensor_network.py
"""

from repro import (
    AdversarySpec,
    DelaySpec,
    ModificationSet,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    run_scenario,
)


def main() -> None:
    scenario = ScenarioSpec(
        name="sensor-mesh",
        topology=TopologySpec(kind="torus", rows=4, cols=4),
        delay=DelaySpec(kind="fixed", mean_ms=20.0),
        protocol="cross_layer",
        modifications=ModificationSet.latency_and_bandwidth_optimized(),
        f=1,
        payload_size=24,
        seed=3,
        adversaries=(AdversarySpec(behaviour="mute", count=1, placement="random"),),
        # Sensors 1, 6 and 11 take turns reporting: nine readings, one
        # every 60 simulated ms, with per-source increasing broadcast
        # identifiers and distinct payload seeds per reading.
        workload=WorkloadSpec.round_robin([1, 6, 11], 9, interval_ms=60.0),
    )

    result = run_scenario(scenario)

    print(f"Sensor mesh: {result.topology_name}, Byzantine: {dict(result.byzantine)}")
    print(f"{result.broadcast_count} readings broadcast, "
          f"{result.delivered_broadcast_count} fully delivered\n")

    print("per-reading outcomes:")
    for outcome in result.outcomes:
        latency = (
            f"{outcome.latency_ms:6.1f} ms" if outcome.latency_ms is not None else "   n/a"
        )
        verdict = "ok" if outcome.all_correct_delivered else "PARTIAL"
        print(
            f"  sensor {outcome.source:>2} reading {outcome.bid} "
            f"(t={outcome.start_time_ms:5.0f} ms): latency {latency} | "
            f"delivered by {len(outcome.delivered_processes)} nodes | {verdict}"
        )

    stats = result.latency_distribution()
    print(f"\nlatency distribution over {stats['count']} delivered readings: "
          f"min {stats['min_ms']:.1f} / mean {stats['mean_ms']:.1f} / "
          f"max {stats['max_ms']:.1f} ms")
    print(f"throughput: {result.throughput_dps:.1f} delivered readings per simulated second")
    print(f"safety: agreement={result.agreement_holds} validity={result.validity_holds}")
    print(f"traffic: {result.message_count} messages, "
          f"{result.total_bytes / 1000:.1f} kB")


if __name__ == "__main__":
    main()
