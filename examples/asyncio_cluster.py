#!/usr/bin/env python3
"""Run the protocol over real TCP sockets with asyncio.

Starts seven nodes on localhost, each hosting a cross-layer Bracha-Dolev
instance, connects them according to a 4-connected Harary graph, and
broadcasts two payloads from different sources.  The exact same protocol
objects used by the discrete-event simulation run here over real
length-prefixed TCP connections.

Run with:  python examples/asyncio_cluster.py
"""

import asyncio

from repro import CrossLayerBrachaDolev, ModificationSet, SystemConfig, harary_topology
from repro.network.asyncio_runtime import AsyncioCluster


async def main() -> None:
    n, f = 7, 1
    config = SystemConfig.for_system(n, f)
    topology = harary_topology(n, 4)
    print(f"Starting {n} TCP nodes (connectivity {topology.vertex_connectivity()})...")

    # Ports are ephemeral (each node binds port 0 and the cluster
    # exchanges the actual ports), so any number of clusters can run
    # concurrently; start() returns once the readiness barrier saw every
    # neighbor connection established.
    cluster = AsyncioCluster(
        topology,
        config,
        lambda pid, cfg, neighbors: CrossLayerBrachaDolev(
            pid, cfg, neighbors, modifications=ModificationSet.all_enabled()
        ),
    )
    await cluster.start()
    try:
        await cluster.broadcast(0, b"first broadcast over TCP", bid=1)
        await cluster.broadcast(4, b"second broadcast over TCP", bid=1)
        ok = await cluster.wait_for_all_deliveries(count=2, timeout=30)
        print(f"Every node delivered both broadcasts: {ok}")
        for pid in topology.nodes:
            payloads = sorted(cluster.delivered_payloads(pid))
            print(f"  node {pid}: {[p.decode() for p in payloads]}")
    finally:
        await cluster.stop()


if __name__ == "__main__":
    asyncio.run(main())
