#!/usr/bin/env python3
"""Demonstration of the attacks the protocol defends against.

Runs three scenarios on the same partially connected topology and prints
what an attacker can and cannot achieve:

1. *Mute relays* — up to ``f`` processes silently drop everything; the
   broadcast still reaches every correct process because the graph is
   ``2f + 1``-connected.
2. *Path-forging relays* — Byzantine relays rewrite transmission paths to
   try to trick the disjoint-path verification; correct processes still
   only deliver the genuine payload.
3. *Equivocating source* — the source sends different payloads to
   different neighbors; BRB-Agreement guarantees the correct processes
   never deliver conflicting values.

Run with:  python examples/byzantine_attack_demo.py
"""

from repro import (
    CrossLayerBrachaDolev,
    FixedDelay,
    ModificationSet,
    SimulatedNetwork,
    SystemConfig,
    random_regular_topology,
)
from repro.network.adversary import EquivocatingSource, MuteProcess, PathForgingRelay


def build_network(topology, config, byzantine, mods, seed=5):
    protocols = {}
    for pid in topology.nodes:
        neighbors = sorted(topology.neighbors(pid))
        if pid in byzantine:
            protocols[pid] = byzantine[pid](pid, neighbors)
        else:
            protocols[pid] = CrossLayerBrachaDolev(pid, config, neighbors, modifications=mods)
    return SimulatedNetwork(topology, protocols, delay_model=FixedDelay(25.0), seed=seed)


def main() -> None:
    n, f, k = 10, 2, 5
    config = SystemConfig.for_system(n, f)
    topology = random_regular_topology(n, k, seed=21, min_connectivity=config.min_connectivity)
    mods = ModificationSet.all_enabled()
    payload = b"authentic payload"

    print(f"System: N={n}, f={f}, connectivity={topology.vertex_connectivity()}\n")

    # Scenario 1: mute relays.
    byzantine = {4: lambda pid, nb: MuteProcess(pid, nb), 7: lambda pid, nb: MuteProcess(pid, nb)}
    network = build_network(topology, config, byzantine, mods)
    network.broadcast(0, payload, 0)
    metrics = network.run()
    delivered = metrics.deliveries_for((0, 0))
    print("1. Mute relays (processes 4 and 7 drop everything)")
    print(f"   correct processes that delivered: {len(delivered)}/{n - 2}\n")

    # Scenario 2: path-forging relays.
    def forger(pid, neighbors):
        inner = CrossLayerBrachaDolev(pid, config, neighbors, modifications=mods)
        return PathForgingRelay(inner, config, seed=pid)

    byzantine = {4: forger, 7: forger}
    network = build_network(topology, config, byzantine, mods)
    network.broadcast(0, payload, 0)
    metrics = network.run()
    delivered = metrics.deliveries_for((0, 0))
    genuine = {pid for pid, value in delivered.items() if value == payload and pid not in (4, 7)}
    print("2. Path-forging relays (processes 4 and 7 rewrite paths)")
    print(f"   correct processes that delivered the genuine payload: {len(genuine)}/{n - 2}")
    print(f"   correct processes that delivered a forged payload:    "
          f"{sum(1 for pid, v in delivered.items() if v != payload and pid not in (4, 7))}\n")

    # Scenario 3: equivocating source.
    byzantine = {0: lambda pid, nb: EquivocatingSource(pid, nb, family="cross_layer")}
    network = build_network(topology, config, byzantine, mods)
    network.broadcast(0, payload, 0)
    metrics = network.run()
    delivered = metrics.deliveries_for((0, 0))
    values = {value for pid, value in delivered.items() if pid != 0}
    print("3. Equivocating source (process 0 sends two different payloads)")
    print(f"   distinct values delivered by correct processes: {len(values)}")
    print("   (BRB-Agreement allows at most one)")


if __name__ == "__main__":
    main()
