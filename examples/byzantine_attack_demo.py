#!/usr/bin/env python3
"""Demonstration of the attacks and faults the protocol defends against.

Runs five declarative scenarios on the same partially connected topology
and prints what an attacker (or an unlucky deployment) can and cannot
achieve:

1. *Mute relays* — ``f`` processes silently drop everything; the
   broadcast still reaches every correct process because the graph is
   ``2f + 1``-connected.
2. *Path-forging relays* — Byzantine relays rewrite transmission paths to
   try to trick the disjoint-path verification; correct processes still
   only deliver the genuine payload.
3. *Equivocating source* — the source sends different payloads to
   different neighbors; BRB-Agreement guarantees the correct processes
   never deliver conflicting values.
4. *Crash mid-broadcast* — a relay crashes 60 ms into the run, after
   forwarding only part of its traffic.
5. *Link outage + late boot* — one link drops every message for the
   first 100 ms and one node only boots at 150 ms; redundancy and the
   wake-up replay still get everyone to deliver.

Each scenario is a :class:`~repro.scenarios.ScenarioSpec`: the adversary
count, behaviour and placement strategy are data, so the same specs can
be swept over grids or shipped to the parallel executor unchanged.

Run with:  python examples/byzantine_attack_demo.py
"""

from repro.core.modifications import ModificationSet
from repro.scenarios import (
    AdversarySpec,
    CrashAt,
    DelayedStart,
    DelaySpec,
    LinkDropWindow,
    ScenarioSpec,
    TopologySpec,
    run_scenario,
)

N, F, K = 10, 2, 5

BASE = ScenarioSpec(
    topology=TopologySpec(kind="random_regular", n=N, k=K, min_connectivity=2 * F + 1),
    delay=DelaySpec(kind="fixed", mean_ms=25.0),
    modifications=ModificationSet.all_enabled(),
    f=F,
    payload_size=17,  # b"authentic"-sized payload, deterministic content
    seed=21,
)


def report(title: str, result) -> None:
    correct = len(result.correct_processes)
    delivered = sum(1 for pid in result.delivered_processes if pid in result.correct_processes)
    print(title)
    print(f"   Byzantine: {dict(result.byzantine) or '{}'}  crashed: {list(result.crashed) or '[]'}")
    print(f"   correct processes that delivered: {delivered}/{correct}")
    print(f"   agreement: {result.agreement_holds}   validity: {result.validity_holds}\n")


def main() -> None:
    from dataclasses import replace

    print(f"System: N={N}, f={F}, k={K} (connectivity ≥ {2 * F + 1})\n")

    report(
        "1. Mute relays (max-degree placement — the strongest spots)",
        run_scenario(
            replace(
                BASE,
                name="mute-relays",
                adversaries=(AdversarySpec(behaviour="mute", count=2, placement="max_degree"),),
            )
        ),
    )
    report(
        "2. Path-forging relays (random placement)",
        run_scenario(
            replace(
                BASE,
                name="path-forgers",
                adversaries=(AdversarySpec(behaviour="forge", count=2, placement="random"),),
            )
        ),
    )
    report(
        "3. Equivocating source (conflicting payloads to each half)",
        run_scenario(
            replace(
                BASE,
                name="equivocation",
                adversaries=(AdversarySpec(behaviour="equivocate", count=1),),
            )
        ),
    )
    report(
        "4. Crash mid-broadcast (process 4 dies at t=60 ms)",
        run_scenario(replace(BASE, name="mid-run-crash", faults=(CrashAt(pid=4, time_ms=60.0),))),
    )
    report(
        "5. Link outage for 100 ms + process 6 boots at t=150 ms",
        run_scenario(
            replace(
                BASE,
                name="outage-and-late-boot",
                faults=(
                    LinkDropWindow(u=0, v=5, start_ms=0.0, end_ms=100.0),
                    DelayedStart(pid=6, time_ms=150.0),
                ),
            )
        ),
    )


if __name__ == "__main__":
    main()
