#!/usr/bin/env python3
"""Quickstart: Byzantine reliable broadcast on a partially connected network.

Builds a 10-process system that tolerates f = 2 Byzantine processes,
connects it with a random 5-regular graph (so the ``2f + 1 = 5``
connectivity requirement holds), and broadcasts one payload with the
paper's cross-layer Bracha-Dolev protocol — all declared as a single
:class:`~repro.scenarios.ScenarioSpec` and executed by the scenario
engine.  Prints who delivered what, how long it took (in simulated
milliseconds) and how many bytes were put on the wire.

Run with:  python examples/quickstart.py
"""

from repro.core.modifications import ModificationSet
from repro.scenarios import DelaySpec, ScenarioSpec, TopologySpec, run_scenario


def main() -> None:
    scenario = ScenarioSpec(
        name="quickstart",
        topology=TopologySpec(kind="random_regular", n=10, k=5, min_connectivity=5),
        delay=DelaySpec(kind="fixed", mean_ms=50.0),
        protocol="cross_layer",
        modifications=ModificationSet.all_enabled(),
        f=2,
        payload_size=32,
        seed=1,
    )
    result = run_scenario(scenario)

    print(f"Topology: {result.topology_name}")
    print(f"Delivered by {len(result.delivered_processes)}/{scenario.topology.n} processes")
    print(f"Latency until all processes delivered: {result.latency_ms:.0f} ms (simulated)")
    print(f"Messages on the wire: {result.message_count}")
    print(f"Network consumption: {result.total_bytes / 1000:.1f} kB")
    print(f"BRB agreement: {result.agreement_holds}, validity: {result.validity_holds}")
    print(f"Scenario hash (sweep cache key): {result.scenario_hash[:16]}…")


if __name__ == "__main__":
    main()
