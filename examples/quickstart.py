#!/usr/bin/env python3
"""Quickstart: Byzantine reliable broadcast on a partially connected network.

Builds a 10-process system that tolerates f = 2 Byzantine processes,
connects it with a random 5-regular graph (so the ``2f + 1 = 5``
connectivity requirement holds), and broadcasts one payload with the
paper's cross-layer Bracha-Dolev protocol.  Prints who delivered what,
how long it took (in simulated milliseconds) and how many bytes were put
on the wire.

Run with:  python examples/quickstart.py
"""

from repro import (
    CrossLayerBrachaDolev,
    FixedDelay,
    ModificationSet,
    SimulatedNetwork,
    SystemConfig,
    random_regular_topology,
)


def main() -> None:
    n, f, k = 10, 2, 5
    config = SystemConfig.for_system(n, f)
    topology = random_regular_topology(n, k, seed=1, min_connectivity=config.min_connectivity)
    print(f"Topology: {topology.name}, vertex connectivity {topology.vertex_connectivity()}")

    # One protocol instance per process.  The default modification set is the
    # paper's "lat. & bdw." configuration; here we enable everything.
    protocols = {
        pid: CrossLayerBrachaDolev(
            pid,
            config,
            sorted(topology.neighbors(pid)),
            modifications=ModificationSet.all_enabled(),
        )
        for pid in topology.nodes
    }

    network = SimulatedNetwork(
        topology, protocols, delay_model=FixedDelay(50.0), seed=1
    )
    network.broadcast(0, b"hello, partially connected world", bid=0)
    metrics = network.run()

    delivered = metrics.deliveries_for((0, 0))
    latency = metrics.delivery_latency((0, 0), topology.nodes)
    print(f"Delivered by {len(delivered)}/{n} processes")
    print(f"Payload: {next(iter(delivered.values())).decode()}")
    print(f"Latency until all processes delivered: {latency:.0f} ms (simulated)")
    print(f"Messages on the wire: {metrics.message_count}")
    print(f"Network consumption: {metrics.total_bytes / 1000:.1f} kB")


if __name__ == "__main__":
    main()
