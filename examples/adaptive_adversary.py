#!/usr/bin/env python3
"""An adaptive adversary defeats a naive configuration — the f-bound holds.

Static fault injection fires at fixed times; an *adaptive* adversary
watches the run and strikes at the worst possible moment.  This demo
pits the same adversary against two deployments of the cross-layer
protocol (n = 8, one tolerated fault):

* a **naive ring** — only 2-connected, below the ``2f + 1 = 3``
  connectivity the paper requires for f = 1.  The adversary cuts a ring
  link the instant it first carries traffic and silences one relay right
  after it delivers: the graph falls apart and totality fails;

* a **paper-compliant Harary graph H(3, 8)** — exactly 3-connected.  The
  *same* adversary (same triggers, same budget: one Byzantine
  conversion, one reactive link cut) cannot stop the broadcast: every
  correct process still delivers, and the safety oracle confirms
  agreement/validity/no-forgery held throughout.

The moral is the paper's: against adversaries — even adaptive ones — the
bound that matters is connectivity ``>= 2f + 1`` with at most ``f``
corrupted processes, not the absence of bad luck.

Run with:  python examples/adaptive_adversary.py
"""

from repro.scenarios import (
    CutLinkWhen,
    DelaySpec,
    ObservationFilter,
    ScenarioSpec,
    TopologySpec,
    TurnByzantineWhen,
    check_result,
    run_scenario,
)

N, F = 8, 1

#: The adversary: cut {0, 1} the moment the source first uses it, and
#: turn relay 2 mute right after its first delivery.  One conversion ==
#: the full f = 1 Byzantine budget; the link cut is network-level.
ADVERSARY = (
    CutLinkWhen(
        u=0, v=1, after=ObservationFilter(kind="send", pid=0, dest=1), count=1
    ),
    TurnByzantineWhen(
        pid=2, after=ObservationFilter(kind="deliver", pid=2), behaviour="mute"
    ),
)


def build(name: str, topology: TopologySpec) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        topology=topology,
        delay=DelaySpec(kind="fixed", mean_ms=20.0),
        f=F,
        seed=13,
        adaptive=ADVERSARY,
    )


def report(title: str, result) -> None:
    correct = set(result.correct_processes)
    delivered = sorted(set(result.delivered_processes) & correct)
    missing = sorted(correct - set(result.delivered_processes))
    violations = check_result(result)
    print(title)
    print(f"   byzantine: {dict(result.byzantine) or '{}'}   "
          f"crashed: {list(result.crashed) or '[]'}   "
          f"messages lost to cuts: {result.dropped_messages}")
    print(f"   correct deliverers: {delivered}" +
          (f"   NEVER delivered: {missing}" if missing else "   (everyone)"))
    print(f"   totality: {result.all_correct_delivered}   "
          f"agreement: {result.agreement_holds}   validity: {result.validity_holds}")
    print("   safety oracle: " +
          ("GREEN (no forgery, agreement, validity all hold)"
           if not violations else f"VIOLATED: {violations}"))
    print()


def main() -> None:
    print(f"System: n={N}, f={F} — the paper requires connectivity >= {2 * F + 1}\n")
    print("Adversary (identical in both runs): cut link {0,1} on first use, "
          "mute relay 2 after its first delivery.\n")

    naive = run_scenario(build("naive-ring", TopologySpec(kind="ring", n=N)))
    report("1. Naive ring (2-connected — below the bound): the adversary wins", naive)
    assert not naive.all_correct_delivered, "the ring should have been partitioned"

    compliant = run_scenario(build("harary-3-8", TopologySpec(kind="harary", n=N, k=3)))
    report("2. Harary H(3, 8) (3-connected — the paper's bound): delivery survives",
           compliant)
    assert compliant.all_correct_delivered, "2f+1-connectivity must defeat the adversary"
    assert not check_result(compliant)

    print("Same adversary, same budget — only the connectivity changed.")


if __name__ == "__main__":
    main()
