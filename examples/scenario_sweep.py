#!/usr/bin/env python3
"""Parallel scenario sweep: grid expansion, process pool and result cache.

Expands one base scenario over a (connectivity × adversary count × seed)
grid — 24 cells — and runs it three times:

1. serially (the reference),
2. over a process pool with two workers, verifying the results are
   identical cell by cell (the executor's determinism contract),
3. again with a warm on-disk cache, which short-circuits every cell.

Run with:  python examples/scenario_sweep.py
"""

import tempfile
import time
from dataclasses import replace

from repro.core.modifications import ModificationSet
from repro.runner.parallel import SweepExecutor
from repro.scenarios import AdversarySpec, DelaySpec, ScenarioSpec, TopologySpec, expand_grid


def build_cells():
    base = ScenarioSpec(
        name="sweep-demo",
        topology=TopologySpec(kind="random_regular", n=12, k=5, min_connectivity=5),
        delay=DelaySpec(kind="normal", mean_ms=50.0, std_ms=50.0),
        modifications=ModificationSet.latency_and_bandwidth_optimized(),
        f=2,
        seed=7,
    )
    cells = []
    for count in (0, 1, 2):
        variant = replace(
            base,
            adversaries=(AdversarySpec(behaviour="mute", count=count, placement="random"),)
            if count
            else (),
        )
        cells.extend(expand_grid(variant, {"topology.k": [5, 7], "seed": range(7, 11)}))
    return cells


def main() -> None:
    cells = build_cells()
    print(f"Scenario grid: {len(cells)} cells\n")

    start = time.perf_counter()
    serial = SweepExecutor(workers=1).run(cells)
    serial_s = time.perf_counter() - start
    print(f"serial   ({serial_s:5.2f} s): {sum(r.all_correct_delivered for r in serial)}"
          f"/{len(cells)} cells with full delivery")

    with tempfile.TemporaryDirectory() as cache_dir:
        executor = SweepExecutor(workers=2, cache_dir=cache_dir)
        start = time.perf_counter()
        parallel = executor.run(cells)
        parallel_s = time.perf_counter() - start
        print(f"parallel ({parallel_s:5.2f} s): identical to serial: {parallel == serial}")

        start = time.perf_counter()
        cached = executor.run(cells)
        cached_s = time.perf_counter() - start
        print(f"cached   ({cached_s:5.2f} s): {executor.cache_hits}/{len(cells)} cache hits, "
              f"identical: {cached == serial}")

    print("\nMean latency by adversary count (ms):")
    for count in (0, 1, 2):
        rows = [
            r for r in serial
            if len(r.byzantine) == count
        ]
        latencies = [r.latency_ms for r in rows if r.latency_ms is not None]
        mean = sum(latencies) / len(latencies) if latencies else float("nan")
        print(f"  {count} mute adversaries: {mean:7.1f}  ({len(rows)} cells)")


if __name__ == "__main__":
    main()
