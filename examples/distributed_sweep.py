#!/usr/bin/env python3
"""Distributed scenario sweep: coordinator, worker processes, shared cache.

Expands one base scenario over a (connectivity × seed) grid and runs it
three ways:

1. serially (the reference),
2. distributed over two ``repro-sweep-worker`` subprocesses the
   coordinator spawns on localhost, verifying results are identical cell
   by cell (the determinism contract survives the TCP hop),
3. distributed again over the warm shared cache directory, which
   short-circuits every cell without dispatching any work — the cache
   dir *is* the coordination layer, so a second sweep (or a second
   coordinator) never recomputes what any worker already ran.

It then demonstrates the failure semantics: a sweep with zero workers
degrades to local execution after ``worker_wait_s`` and still returns
the exact serial results.

Across real hosts the flow is the same, with workers started by hand::

    repro-sweep-worker --connect COORDINATOR:9999 --cache-dir /shared/cache

Run with:  python examples/distributed_sweep.py
"""

import tempfile
import time

from repro.runner.distributed import DistributedSweepExecutor
from repro.runner.parallel import SweepExecutor
from repro.scenarios import ScenarioSpec, TopologySpec, expand_grid


def build_cells():
    base = ScenarioSpec(
        name="distributed-demo",
        topology=TopologySpec(kind="random_regular", n=12, k=5, min_connectivity=5),
        f=2,
        seed=31,
    )
    return expand_grid(base, {"topology.k": [5, 7], "seed": range(31, 41)})


def main() -> None:
    cells = build_cells()
    print(f"Scenario grid: {len(cells)} cells\n")

    start = time.perf_counter()
    serial = SweepExecutor(workers=1).run(cells)
    print(f"serial        ({time.perf_counter() - start:5.2f} s): reference run")

    with tempfile.TemporaryDirectory() as cache_dir:
        executor = DistributedSweepExecutor(workers=2, cache_dir=cache_dir)
        start = time.perf_counter()
        distributed = executor.run(cells)
        print(
            f"distributed   ({time.perf_counter() - start:5.2f} s): "
            f"2 worker processes, {executor.dispatched_cells} cells dispatched, "
            f"identical to serial: {distributed == serial}"
        )

        warm = DistributedSweepExecutor(workers=2, cache_dir=cache_dir)
        start = time.perf_counter()
        cached = warm.run(cells)
        print(
            f"warm cache    ({time.perf_counter() - start:5.2f} s): "
            f"{warm.cache_hits}/{len(cells)} cells served from the shared "
            f"cache, identical: {cached == serial}"
        )

    fallback = DistributedSweepExecutor(worker_wait_s=0.5)
    start = time.perf_counter()
    local = fallback.run(cells)
    print(
        f"no workers    ({time.perf_counter() - start:5.2f} s): "
        f"{fallback.locally_executed} cells degraded to local execution, "
        f"identical: {local == serial}"
    )


if __name__ == "__main__":
    main()
