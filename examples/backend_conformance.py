#!/usr/bin/env python3
"""Run the same declarative scenario on both execution backends.

The scenario engine is backend-pluggable: a ``ScenarioSpec`` declares
whether it runs on the deterministic discrete-event simulator or on the
asyncio TCP runtime (real sockets on localhost).  This demo executes a
no-fault scenario and a crash-fault variant on both backends and shows
that the delivery/safety verdicts — who delivered what, and whether
totality/agreement/validity hold — are identical, while the timings
differ (simulated milliseconds vs the wall clock).

Run with:  python examples/backend_conformance.py
"""

from dataclasses import replace

from repro import CrashAt, ScenarioSpec, TopologySpec, run_conformance


def show(spec: ScenarioSpec) -> None:
    report = run_conformance(spec)
    latencies = dict(report.latencies_ms)
    print(f"scenario {spec.name!r}:")
    for backend, verdict in report.verdicts:
        latency_ms = latencies[backend]
        latency = f"{latency_ms:8.1f} ms" if latency_ms is not None else "     n/a"
        print(
            f"  {backend:>10}: delivered={verdict.delivered_correct} "
            f"totality={verdict.all_correct_delivered} "
            f"agreement={verdict.agreement_holds} latency={latency}"
        )
    print(f"  verdicts agree: {report.agree}")
    for mismatch in report.mismatches():
        print(f"    MISMATCH {mismatch}")
    print()


def main() -> None:
    base = ScenarioSpec(
        name="conformance-demo",
        topology=TopologySpec(kind="harary", n=6, k=4),
        f=1,
        seed=5,
    )
    show(base)
    show(
        replace(
            base,
            name="conformance-demo-crash",
            faults=(CrashAt(pid=4, time_ms=0.0),),
        )
    )


if __name__ == "__main__":
    main()
