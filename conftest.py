"""Pytest bootstrap: make the in-tree sources importable.

Allows running ``pytest`` straight from a checkout even when the package
has not been installed (useful on offline machines where editable
installs are unavailable).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
