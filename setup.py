"""Setuptools entry point.

The project is normally used straight from a checkout (the root
``conftest.py`` puts ``src`` on ``sys.path``); installing is only needed
for the console scripts, most importantly ``repro-sweep-worker`` — the
worker half of the distributed sweep executor
(:mod:`repro.runner.distributed`).  Uninstalled environments can run the
same worker as ``python -m repro.runner.distributed``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-bonomi-icdcs21",
    version="1.0.0",
    description=(
        "Reproduction of Bonomi et al. (ICDCS 2021): Byzantine-resilient "
        "broadcast on partially connected networks"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["networkx", "numpy"],
    entry_points={
        "console_scripts": [
            "repro-sweep-worker=repro.runner.distributed:worker_main",
            "repro-fuzz=repro.fuzz.cli:main",
            "repro-lint=repro.lint.cli:main",
        ],
    },
)
