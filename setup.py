"""Legacy setuptools entry point.

Kept so that ``pip install -e .`` keeps working on environments without
the ``wheel`` package (PEP 660 editable installs require it); all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
