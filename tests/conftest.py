"""Shared test helpers.

``run_broadcast`` is the workhorse of the integration tests: it builds a
protocol per process of a topology, optionally replaces some processes
with Byzantine behaviours, broadcasts one payload and returns the frozen
run metrics together with the protocol instances for white-box checks.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

import pytest

from repro.core.config import SystemConfig
from repro.core.modifications import ModificationSet
from repro.brb.optimized import CrossLayerBrachaDolev
from repro.metrics.collector import RunMetrics
from repro.network.simulation.delays import DelayModel, FixedDelay
from repro.network.simulation.network import SimulatedNetwork
from repro.topology.generators import Topology


ProtocolBuilder = Callable[[int, SystemConfig, Iterable[int]], object]


def cross_layer_builder(mods: ModificationSet) -> ProtocolBuilder:
    """A builder producing cross-layer protocol instances with ``mods``."""

    def build(pid: int, config: SystemConfig, neighbors):
        return CrossLayerBrachaDolev(pid, config, neighbors, modifications=mods)

    return build


def run_broadcast(
    topology: Topology,
    config: SystemConfig,
    builder: ProtocolBuilder,
    *,
    source: int = 0,
    payload: bytes = b"test-payload",
    bid: int = 0,
    byzantine: Optional[Dict[int, object]] = None,
    delay_model: Optional[DelayModel] = None,
    seed: int = 1,
    max_events: int = 2_000_000,
) -> Tuple[RunMetrics, Dict[int, object]]:
    """Run one broadcast on a simulated network and return its metrics."""
    byzantine = byzantine or {}
    protocols: Dict[int, object] = {}
    for pid in topology.nodes:
        if pid in byzantine:
            protocols[pid] = byzantine[pid]
        else:
            protocols[pid] = builder(pid, config, sorted(topology.neighbors(pid)))
    network = SimulatedNetwork(
        topology,
        protocols,
        delay_model=delay_model or FixedDelay(10.0),
        seed=seed,
    )
    network.broadcast(source, payload, bid)
    metrics = network.run(max_events=max_events)
    return metrics, protocols


def delivered_payloads(metrics: RunMetrics, key=(0, 0)) -> Dict[int, bytes]:
    """Payloads delivered per process for one broadcast key."""
    return metrics.deliveries_for(key)


@pytest.fixture
def small_system() -> SystemConfig:
    """A 7-process system tolerating one Byzantine fault."""
    return SystemConfig.for_system(7, 1)


@pytest.fixture
def medium_system() -> SystemConfig:
    """A 10-process system tolerating two Byzantine faults."""
    return SystemConfig.for_system(10, 2)
