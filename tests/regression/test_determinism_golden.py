"""Golden-file determinism tests for the scheduler's tie-breaking contract.

For a fixed seed, a run is fully deterministic: the event scheduler
breaks timestamp ties by insertion order (see
``repro/network/simulation/scheduler.py``), every random choice derives
from the scenario seed, and the delivery trace and metric summary must
therefore be *byte-identical* across runs, machines and worker processes.

These tests pin that contract for the three protocol stacks the paper
evaluates — Dolev, Bracha and the Bracha-Dolev combination — plus a
fault-heavy cross-layer scenario.  Any change to message ordering, RNG
consumption or metric accounting shows up as a golden-file diff.

Regenerate the golden files after an *intentional* contract change with:

    PYTHONPATH=src python tests/regression/test_determinism_golden.py --regenerate
"""

import json
from pathlib import Path

import pytest

from repro.core.modifications import ModificationSet
from repro.scenarios import (
    AdversarySpec,
    CrashAt,
    DelayedStart,
    DelaySpec,
    LinkDropWindow,
    ScenarioSpec,
    TopologySpec,
    run_scenario,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

SCENARIOS = {
    "dolev": ScenarioSpec(
        name="golden-dolev",
        topology=TopologySpec(kind="random_regular", n=8, k=3, min_connectivity=3),
        delay=DelaySpec(kind="normal", mean_ms=50.0, std_ms=50.0),
        protocol="dolev",
        modifications=ModificationSet.dolev_optimized(),
        f=1,
        payload_size=16,
        seed=42,
    ),
    "bracha": ScenarioSpec(
        name="golden-bracha",
        topology=TopologySpec(kind="complete", n=7),
        delay=DelaySpec(kind="normal", mean_ms=50.0, std_ms=50.0),
        protocol="bracha",
        f=2,
        payload_size=16,
        seed=7,
    ),
    "bracha_dolev": ScenarioSpec(
        name="golden-bracha-dolev",
        topology=TopologySpec(kind="random_regular", n=8, k=5, min_connectivity=3),
        delay=DelaySpec(kind="normal", mean_ms=50.0, std_ms=50.0),
        protocol="bracha_dolev",
        modifications=ModificationSet.dolev_optimized(),
        f=1,
        payload_size=16,
        seed=11,
    ),
    "cross_layer_faults": ScenarioSpec(
        name="golden-cross-layer-faults",
        topology=TopologySpec(kind="random_regular", n=10, k=5, min_connectivity=5),
        delay=DelaySpec(kind="uniform", low_ms=5.0, high_ms=60.0),
        protocol="cross_layer",
        modifications=ModificationSet.latency_and_bandwidth_optimized(),
        f=2,
        payload_size=32,
        seed=23,
        adversaries=(AdversarySpec(behaviour="forge", count=1, placement="max_degree"),),
        faults=(
            CrashAt(pid=9, time_ms=40.0),
            LinkDropWindow(u=0, v=1, start_ms=0.0, end_ms=30.0),
            DelayedStart(pid=4, time_ms=80.0),
        ),
    ),
}


def golden_bytes(spec: ScenarioSpec) -> bytes:
    """The canonical serialization compared byte-for-byte."""
    summary = run_scenario(spec).summary()
    return (json.dumps(summary, indent=2, sort_keys=True) + "\n").encode("utf-8")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_fixed_seed_runs_match_golden_files(name):
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden file {path}; regenerate with "
        "PYTHONPATH=src python tests/regression/test_determinism_golden.py --regenerate"
    )
    assert golden_bytes(SCENARIOS[name]) == path.read_bytes()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_back_to_back_runs_are_byte_identical(name):
    spec = SCENARIOS[name]
    assert golden_bytes(spec) == golden_bytes(spec)


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, spec in SCENARIOS.items():
        path = GOLDEN_DIR / f"{name}.json"
        path.write_bytes(golden_bytes(spec))
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
