"""Property-based tests of the scenario engine and the sweep executors.

Two contracts are checked over randomly drawn scenarios:

* **Safety** — any generated scenario with at most ``f`` Byzantine
  processes on a ``(2f + 1)``-connected topology still satisfies
  BRB-Agreement and BRB-Validity, whatever the placement strategy, delay
  regime or behaviour mix; with a correct source it also satisfies
  Totality.
* **Executor determinism** — the parallel executor returns results equal
  to the serial path for the same cells and seeds (same grid order, same
  per-cell outcomes), and running a spec twice yields equal results.
* **Delay-model determinism** — lossy delay regimes derive every
  drop/delay decision from the scenario seed: the same seed and spec
  hash yield identical dropped-message sets across repeated runs and
  across executor worker counts.
"""

import json
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.modifications import ModificationSet
from repro.runner.parallel import SweepExecutor, run_sweep
from repro.scenarios import (
    AdversarySpec,
    CrashWhen,
    DelaySpec,
    ObservationFilter,
    ScenarioSpec,
    TopologySpec,
    TurnByzantineWhen,
    expand_grid,
    run_scenario,
)

MODIFICATION_PRESETS = (
    ModificationSet.dolev_optimized(),
    ModificationSet.latency_and_bandwidth_optimized(),
    ModificationSet.all_enabled(),
)

BEHAVIOURS = ("mute", "drop", "forge", "equivocate")
PLACEMENTS = ("random", "max_degree", "articulation_adjacent")
DELAYS = (
    DelaySpec(kind="fixed", mean_ms=10.0),
    DelaySpec(kind="normal", mean_ms=20.0, std_ms=20.0),
    DelaySpec(kind="uniform", low_ms=1.0, high_ms=30.0),
)


@st.composite
def connected_scenarios(draw):
    """A scenario with ≤ f Byzantine processes on a (2f+1)-connected graph."""
    f = draw(st.integers(min_value=0, max_value=2))
    required = 2 * f + 1
    n = draw(st.integers(min_value=max(3 * f + 1, required + 1, 4), max_value=10))
    kind = draw(st.sampled_from(("complete", "harary", "random_regular")))
    if kind == "complete" or required < 2:
        topology = TopologySpec(kind="complete", n=n)
    elif kind == "harary":
        topology = TopologySpec(kind="harary", n=n, k=required)
    else:
        k = required if (n * required) % 2 == 0 else required + 1
        if k >= n:
            topology = TopologySpec(kind="complete", n=n)
        else:
            topology = TopologySpec(kind="random_regular", n=n, k=k, min_connectivity=required)

    adversaries = ()
    count = draw(st.integers(min_value=0, max_value=f))
    if count:
        behaviour = draw(st.sampled_from(BEHAVIOURS))
        if behaviour == "equivocate":
            # Equivocation only acts at the broadcasting source; the
            # engine rejects count > 1 by design (see place_byzantine).
            count = 1
        adversaries = (
            AdversarySpec(
                behaviour=behaviour,
                count=count,
                placement=draw(st.sampled_from(PLACEMENTS)),
            ),
        )
    return ScenarioSpec(
        name="property",
        topology=topology,
        delay=draw(st.sampled_from(DELAYS)),
        protocol="cross_layer",
        modifications=draw(st.sampled_from(MODIFICATION_PRESETS)),
        f=f,
        payload_size=draw(st.integers(min_value=0, max_value=64)),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
        adversaries=adversaries,
    )


@pytest.mark.slow
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=connected_scenarios())
def test_scenarios_preserve_brb_safety(spec):
    result = run_scenario(spec)
    assert result.agreement_holds
    assert result.validity_holds
    # With a correct source, every correct process must also deliver
    # (BRB-Totality): at most f Byzantine on a (2f+1)-connected graph.
    source_is_byzantine = any(pid == spec.source for pid, _ in result.byzantine)
    if not source_is_byzantine:
        assert result.all_correct_delivered
        assert result.latency_ms is not None


@pytest.mark.slow
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=connected_scenarios())
def test_running_a_spec_twice_is_deterministic(spec):
    assert run_scenario(spec) == run_scenario(spec)


def _executor_cells():
    base = ScenarioSpec(
        name="executor-property",
        topology=TopologySpec(kind="random_regular", n=10, k=5, min_connectivity=5),
        delay=DelaySpec(kind="normal", mean_ms=20.0, std_ms=20.0),
        modifications=ModificationSet.latency_and_bandwidth_optimized(),
        f=2,
        adversaries=(AdversarySpec(behaviour="mute", count=1, placement="max_degree"),),
        seed=100,
    )
    return expand_grid(base, {"topology.k": [5, 7], "seed": range(100, 104)})


@pytest.mark.slow
def test_parallel_executor_matches_serial_path():
    cells = _executor_cells()
    serial = run_sweep(cells, workers=1)
    parallel = run_sweep(cells, workers=2)
    assert parallel == serial
    # Order preservation: results come back in cell order.
    assert [r.spec for r in parallel] == list(cells)


@pytest.mark.slow
def test_parallel_executor_is_insensitive_to_worker_count():
    cells = _executor_cells()[:4]
    two = run_sweep(cells, workers=2)
    three = run_sweep(cells, workers=3)
    assert two == three


@st.composite
def lossy_scenarios(draw):
    """A scenario whose links lose messages (independent or bursty loss)."""
    spec = draw(connected_scenarios())
    if draw(st.booleans()):
        delay = DelaySpec(
            kind=spec.delay.kind,
            mean_ms=spec.delay.mean_ms,
            std_ms=spec.delay.std_ms,
            low_ms=spec.delay.low_ms,
            high_ms=spec.delay.high_ms,
            loss=draw(st.sampled_from((0.02, 0.1, 0.3))),
        )
    else:
        delay = DelaySpec(
            kind=spec.delay.kind,
            mean_ms=spec.delay.mean_ms,
            std_ms=spec.delay.std_ms,
            low_ms=spec.delay.low_ms,
            high_ms=spec.delay.high_ms,
            burst_period_ms=draw(st.sampled_from((40.0, 80.0))),
            burst_len_ms=draw(st.sampled_from((5.0, 20.0))),
        )
    return spec.with_delay(delay)


@pytest.mark.slow
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=lossy_scenarios())
def test_lossy_drop_decisions_are_deterministic(spec):
    """Same seed + spec hash ⇒ identical drop/delay decisions per run."""
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert first == second
    # The comparable summary excludes the metrics snapshot; the drop
    # decisions must match down to the loss accounting and traffic too.
    assert first.dropped_messages == second.dropped_messages
    assert first.metrics.message_count == second.metrics.message_count
    assert first.metrics.delivery_times == second.metrics.delivery_times
    assert spec.scenario_hash() == first.spec.scenario_hash()


@st.composite
def lossy_adaptive_scenarios(draw):
    """A lossy scenario with an adaptive fault armed on a random trigger."""
    spec = draw(lossy_scenarios())
    n = spec.topology.n
    trigger = ObservationFilter(kind=draw(st.sampled_from(("send", "deliver"))))
    count = draw(st.integers(min_value=1, max_value=3))
    pid = draw(st.integers(min_value=0, max_value=n - 1))
    if spec.f >= 1 and draw(st.booleans()):
        # A conversion counts against the f budget, so it takes the
        # place of any statically placed adversaries.
        return replace(
            spec,
            adversaries=(),
            adaptive=(
                TurnByzantineWhen(
                    pid=pid,
                    after=trigger,
                    count=count,
                    behaviour=draw(st.sampled_from(("mute", "drop", "forge"))),
                ),
            ),
        )
    return replace(spec, adaptive=(CrashWhen(pid=pid, after=trigger, count=count),))


def _metrics_blob(result) -> bytes:
    """Canonical byte serialization of a run's full metrics snapshot."""
    metrics = result.metrics
    payload = {
        "message_count": metrics.message_count,
        "total_bytes": metrics.total_bytes,
        "dropped_messages": result.dropped_messages,
        "messages_by_type": dict(sorted(metrics.messages_by_type.items())),
        "bytes_by_type": dict(sorted(metrics.bytes_by_type.items())),
        "messages_by_process": {
            str(pid): count
            for pid, count in sorted(metrics.messages_by_process.items())
        },
        "bytes_by_process": {
            str(pid): count
            for pid, count in sorted(metrics.bytes_by_process.items())
        },
        "delivery_times": {
            repr(key): time for key, time in sorted(metrics.delivery_times.items())
        },
        "delivered_payloads": {
            repr(key): payload.hex()
            for key, payload in sorted(metrics.delivered_payloads.items())
        },
        "state_sizes": {
            str(pid): size for pid, size in sorted(metrics.state_sizes.items())
        },
        "end_time": metrics.end_time,
    }
    return json.dumps(payload, sort_keys=True).encode()


@pytest.mark.slow
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=lossy_adaptive_scenarios())
def test_run_metrics_snapshots_are_byte_identical(spec):
    """The rearchitected hot path changes no number the collector reports.

    Every field of the :class:`RunMetrics` snapshot — message/byte
    counts and breakdowns, delivery times and payloads, loss accounting,
    state sizes — must serialize to identical bytes across repeated runs
    of a randomized lossy/adaptive cell.
    """
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert _metrics_blob(first) == _metrics_blob(second)


@pytest.mark.slow
@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=lossy_scenarios(), data=st.data())
def test_lossy_cells_are_insensitive_to_worker_count(spec, data):
    """Drop decisions survive the multiprocessing fan-out unchanged."""
    cells = tuple(spec.with_seed(spec.seed + index) for index in range(3))
    serial = run_sweep(cells, workers=1)
    workers = data.draw(st.sampled_from((2, 3)), label="workers")
    parallel = run_sweep(cells, workers=workers)
    assert parallel == serial
    assert [r.dropped_messages for r in parallel] == [
        r.dropped_messages for r in serial
    ]


def test_executor_cache_round_trips_results(tmp_path):
    cells = _executor_cells()[:3]
    executor = SweepExecutor(workers=1, cache_dir=tmp_path)
    fresh = executor.run(cells)
    assert executor.cache_hits == 0
    cached = executor.run(cells)
    assert executor.cache_hits == len(cells)
    assert cached == fresh

    # A corrupted cache entry degrades to a re-run, not a crash.
    victim = tmp_path / f"{cells[0].scenario_hash()}.pkl"
    victim.write_bytes(b"not a pickle")
    again = executor.run(cells)
    assert again == fresh
    assert executor.cache_hits == len(cells) - 1
