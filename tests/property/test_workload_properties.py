"""Property-based tests of multi-broadcast workload scheduling.

Three contracts over randomly drawn workloads (simulation backend):

* **Single-broadcast equivalence** — wrapping any legacy scenario's
  broadcast in a trivial :class:`WorkloadSpec` yields a spec, hash and
  :class:`ScenarioResult` equal to the legacy form, so golden summaries
  stay byte-for-byte (the acceptance contract of the workload feature).
* **Seed determinism** — running a random multi-broadcast workload twice
  produces equal results, outcomes included.
* **Order independence** — shuffling the broadcast tuple of a workload
  changes neither the execution (the engine initiates broadcasts in
  canonical schedule order) nor the sorted per-broadcast outcomes.
"""

import json
from dataclasses import replace

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.scenarios import (
    BroadcastSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    run_scenario,
)


@st.composite
def small_scenarios(draw):
    """A tiny, fast, fault-free scenario on a well-connected topology."""
    n = draw(st.integers(min_value=4, max_value=7))
    kind = draw(st.sampled_from(("complete", "harary")))
    if kind == "complete":
        topology = TopologySpec(kind="complete", n=n)
    else:
        topology = TopologySpec(kind="harary", n=n, k=3)
    return ScenarioSpec(
        name="workload-property",
        topology=topology,
        f=1,
        payload_size=draw(st.integers(min_value=0, max_value=32)),
        seed=draw(st.integers(min_value=0, max_value=5_000)),
    )


@st.composite
def workloads(draw, n_processes=4):
    """A random multi-broadcast workload with unique (source, bid) keys."""
    count = draw(st.integers(min_value=2, max_value=5))
    keys = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_processes - 1),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    broadcasts = tuple(
        BroadcastSpec(
            source=source,
            bid=bid,
            payload_seed=draw(st.integers(min_value=0, max_value=4)),
            start_time_ms=float(draw(st.sampled_from((0, 0, 20, 50, 80)))),
        )
        for source, bid in keys
    )
    return WorkloadSpec(broadcasts=broadcasts)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=small_scenarios(), source=st.integers(min_value=0, max_value=3))
def test_trivial_workload_reproduces_the_legacy_result(spec, source):
    legacy = replace(spec, source=source)
    wrapped = spec.with_workload(WorkloadSpec.single(source=source, bid=spec.bid))
    assert wrapped == legacy
    assert wrapped.scenario_hash() == legacy.scenario_hash()
    legacy_result = run_scenario(legacy)
    wrapped_result = run_scenario(wrapped)
    assert wrapped_result == legacy_result
    # The golden-file serialization is byte-for-byte identical too.
    assert json.dumps(wrapped_result.summary(), sort_keys=True) == json.dumps(
        legacy_result.summary(), sort_keys=True
    )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=small_scenarios(), workload=workloads())
def test_multi_broadcast_runs_are_seed_deterministic(spec, workload):
    cell = spec.with_workload(workload)
    first = run_scenario(cell)
    second = run_scenario(cell)
    assert first == second
    assert first.outcomes == second.outcomes
    # Every broadcast of the workload produced exactly one outcome.
    assert sorted(outcome.key for outcome in first.outcomes) == sorted(
        broadcast.key for broadcast in workload.broadcasts
    )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    spec=small_scenarios(),
    workload=workloads(),
    shuffle_seed=st.randoms(use_true_random=False),
)
def test_outcomes_are_independent_of_broadcast_tuple_order(spec, workload, shuffle_seed):
    broadcasts = list(workload.broadcasts)
    shuffle_seed.shuffle(broadcasts)
    shuffled = WorkloadSpec(broadcasts=tuple(broadcasts))
    original = run_scenario(spec.with_workload(workload))
    permuted = run_scenario(spec.with_workload(shuffled))
    # The specs differ (tuple order is part of the spec and its hash)
    # but execution follows the canonical schedule, so the sorted
    # per-broadcast outcomes — and every aggregate derived from them —
    # are identical.
    assert permuted.outcomes == original.outcomes
    assert permuted.delivered_broadcast_count == original.delivered_broadcast_count
    assert permuted.broadcast_latencies == original.broadcast_latencies
