"""Property-based tests for the disjoint-path machinery (Hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.paths.disjoint import DisjointPathVerifier
from repro.paths.oracle import max_disjoint_selection
from repro.paths.pathset import PathStore, bits_to_nodes, path_to_bits

# Small universes keep the exhaustive oracle tractable while still
# exercising plenty of overlap structure.
paths_strategy = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=9), min_size=0, max_size=4),
    min_size=0,
    max_size=9,
)


class TestVerifierMatchesOracle:
    @given(paths=paths_strategy)
    @settings(max_examples=200, deadline=None)
    def test_best_count_equals_exhaustive_maximum(self, paths):
        verifier = DisjointPathVerifier(required=10)  # never satisfied: track best
        for path in paths:
            verifier.add_path(path)
        assert verifier.best_count == max_disjoint_selection(paths)

    @given(paths=paths_strategy, required=st.integers(min_value=1, max_value=4))
    @settings(max_examples=200, deadline=None)
    def test_satisfaction_is_sound_and_complete(self, paths, required):
        verifier = DisjointPathVerifier(required=required)
        for path in paths:
            verifier.add_path(path)
        assert verifier.satisfied == (max_disjoint_selection(paths) >= required)

    @given(paths=paths_strategy)
    @settings(max_examples=100, deadline=None)
    def test_best_count_is_monotonic(self, paths):
        verifier = DisjointPathVerifier(required=10)
        previous = 0
        for path in paths:
            verifier.add_path(path)
            assert verifier.best_count >= previous
            previous = verifier.best_count

    @given(paths=paths_strategy)
    @settings(max_examples=100, deadline=None)
    def test_insertion_order_does_not_matter(self, paths):
        forward = DisjointPathVerifier(required=10)
        backward = DisjointPathVerifier(required=10)
        for path in paths:
            forward.add_path(path)
        for path in reversed(paths):
            backward.add_path(path)
        assert forward.best_count == backward.best_count


class TestPathStoreProperties:
    @given(paths=paths_strategy)
    @settings(max_examples=200, deadline=None)
    def test_store_is_an_antichain(self, paths):
        store = PathStore()
        for path in paths:
            store.add(path)
        stored = store.paths
        for i, a in enumerate(stored):
            for j, b in enumerate(stored):
                if i != j:
                    assert not (a & b == a)  # no stored path is a subset of another

    @given(paths=paths_strategy)
    @settings(max_examples=200, deadline=None)
    def test_every_offered_path_is_dominated_by_some_stored_path(self, paths):
        store = PathStore()
        for path in paths:
            store.add(path)
        for path in paths:
            bits = path_to_bits(path)
            assert any(stored & bits == stored for stored in store.paths)

    @given(nodes=st.frozensets(st.integers(min_value=0, max_value=63), max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_bitset_round_trip(self, nodes):
        assert frozenset(bits_to_nodes(path_to_bits(nodes))) == nodes
