"""Property-based tests of the distributed sweep executor.

For random cell sets, worker counts and pre-populated cache subsets, a
distributed sweep over localhost workers must return results byte-equal
to ``SweepExecutor(workers=1)`` for simulation cells, in cell order —
the same determinism contract the multiprocessing pool guarantees,
survived by a TCP hop, wire (de)serialization and cache coordination.

Workers run in-process (:func:`run_worker` as asyncio tasks) but speak
the full wire protocol over real localhost sockets, so every example
covers handshake, task dispatch, result framing and cache writes.
"""

import asyncio
import json
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.runner.cache import ResultCache
from repro.runner.distributed import DistributedSweepExecutor, run_worker
from repro.runner.parallel import SweepExecutor
from repro.scenarios import AdversarySpec, ScenarioSpec, TopologySpec


@st.composite
def sweep_setups(draw):
    """(cells, worker_count, precached mask) for one distributed sweep."""
    count = draw(st.integers(min_value=1, max_value=6))
    worker_count = draw(st.integers(min_value=1, max_value=3))
    f = draw(st.integers(min_value=0, max_value=1))
    adversaries = (
        (AdversarySpec(behaviour=draw(st.sampled_from(("mute", "forge"))), count=1),)
        if f and draw(st.booleans())
        else ()
    )
    base = ScenarioSpec(
        name="distributed-property",
        topology=TopologySpec(
            kind="random_regular", n=8, k=4, min_connectivity=2 * f + 1
        ),
        f=f,
        adversaries=adversaries,
        seed=0,
    )
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=5000),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    cells = [base.with_seed(seed) for seed in seeds]
    precached = draw(st.lists(st.booleans(), min_size=count, max_size=count))
    return cells, worker_count, precached


def canonical(results):
    return [json.dumps(r.summary(), sort_keys=True).encode() for r in results]


@pytest.mark.slow
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(setup=sweep_setups())
def test_distributed_sweep_equals_serial_sweep(setup):
    cells, worker_count, precached = setup
    serial = SweepExecutor(workers=1).run(cells)

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        expected_hits = 0
        for result, hit in zip(serial, precached):
            if hit:
                cache.store(result)
                expected_hits += 1

        async def go():
            executor = DistributedSweepExecutor(
                cache_dir=cache_dir, worker_wait_s=30.0
            )
            run_task = asyncio.create_task(executor.run_async(cells))
            # Surface startup failures instead of hanging on started.wait.
            started = asyncio.create_task(executor.started.wait())
            await asyncio.wait(
                {run_task, started}, return_when=asyncio.FIRST_COMPLETED
            )
            if not started.done():
                started.cancel()
                run_task.result()
            workers = [
                asyncio.create_task(
                    run_worker(
                        "127.0.0.1",
                        executor.port,
                        connect_attempts=4,
                        connect_delay_s=0.1,
                    )
                )
                for _ in range(worker_count)
            ]
            results = await run_task
            # A fully pre-cached sweep can finish before the workers
            # even dial in; those workers see a closed port, which is a
            # normal way for a sweep to be over.
            computed = [
                0 if isinstance(count, ConnectionError) else count
                for count in await asyncio.gather(*workers, return_exceptions=True)
            ]
            return executor, results, computed

        executor, results, computed = asyncio.run(go())

    # Byte-equal to the serial path, in cell order.
    assert results == serial
    assert canonical(results) == canonical(serial)
    assert [r.spec for r in results] == cells
    # Pre-populated cache entries were served, not re-dispatched.
    assert executor.cache_hits == expected_hits
    assert executor.dispatched_cells <= len(cells) - expected_hits
    assert sum(computed) == len(cells) - expected_hits
    # completed_cells counts live completions; initial cache hits are
    # reported separately as cache_hits.
    assert executor.completed_cells == len(cells) - expected_hits
