"""Property-based tests of causally-ordered broadcast over scenarios.

Three contracts over randomly drawn causal-chain scenarios:

* **Causal order** — every RCO run delivers in causal order at every
  correct process (the oracle's causal predicate never fires on the
  wrapper's own output);
* **Determinism** — the same RCO spec run twice yields identical
  delivery traces (the pending-set drain is deterministic);
* **Backend independence** — the same seed delivers the causal chain in
  the same (schedule) order on the simulator and on the asyncio TCP
  runtime, so the wrapper's promise does not lean on virtual time.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.rco import causal_order_violations
from repro.scenarios import (
    AsyncioBackend,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    run_scenario,
)

FAST_ASYNCIO = AsyncioBackend(delivery_timeout_s=10.0, connect_timeout_s=10.0)


@st.composite
def causal_chain_scenarios(draw):
    """An RCO scenario running a causal chain on a compliant topology."""
    f = draw(st.integers(min_value=0, max_value=2))
    required = 2 * f + 1
    n = draw(st.integers(min_value=max(3 * f + 1, required + 1, 4), max_value=9))
    if draw(st.booleans()) or required < 2:
        topology = TopologySpec(kind="complete", n=n)
    else:
        topology = TopologySpec(kind="harary", n=n, k=required)
    links = draw(st.integers(min_value=2, max_value=4))
    sources = tuple(
        draw(st.integers(min_value=0, max_value=n - 1)) for _ in range(links)
    )
    protocol = draw(st.sampled_from(("rco_cross_layer", "rco_bracha_dolev")))
    return ScenarioSpec(
        name="rco-prop",
        topology=topology,
        protocol=protocol,
        f=f,
        seed=draw(st.integers(min_value=0, max_value=50_000)),
        workload=WorkloadSpec.causal_chain(
            sources, interval_ms=draw(st.sampled_from((120.0, 200.0)))
        ),
    )


def chain_positions(result):
    """Per-process positions of the chain keys, in delivery order."""
    chain = [broadcast.key for broadcast in result.spec.broadcasts()]
    orders = {pid: [] for pid in result.correct_processes}
    for pid, key in result.metrics.delivery_times:
        if pid in orders and key in chain:
            orders[pid].append(key)
    return orders


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(spec=causal_chain_scenarios())
def test_rco_runs_deliver_in_causal_order(spec):
    result = run_scenario(spec)
    assert causal_order_violations(result) == []


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(spec=causal_chain_scenarios())
def test_rco_runs_are_seed_deterministic(spec):
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert list(first.metrics.delivery_times.items()) == list(
        second.metrics.delivery_times.items()
    )
    assert first.delivered_processes == second.delivered_processes


@pytest.mark.slow
@pytest.mark.parametrize("seed", [3, 11])
def test_same_seed_causal_order_is_identical_across_backends(seed):
    """Both backends deliver the chain in schedule order at every replica."""
    base = ScenarioSpec(
        name="rco-backend-order",
        topology=TopologySpec(kind="harary", n=5, k=3),
        protocol="rco_cross_layer",
        f=1,
        seed=seed,
        workload=WorkloadSpec.causal_chain((0, 2, 4), interval_ms=250.0),
    )
    sim = run_scenario(base)
    aio = FAST_ASYNCIO.run(base.with_backend("asyncio"))
    schedule = [broadcast.key for broadcast in base.broadcasts()]
    sim_orders = chain_positions(sim)
    aio_orders = chain_positions(aio)
    assert sim.correct_processes == aio.correct_processes
    for pid in sim.correct_processes:
        assert sim_orders[pid] == schedule
        assert aio_orders[pid] == schedule
    assert causal_order_violations(aio) == []
