"""Property-based tests of the BRB guarantees on randomized systems.

Each example draws a system size, fault threshold, connectivity,
modification subset, delay model and Byzantine placement, runs one
broadcast on a simulated network and checks the BRB properties.  The
sizes are kept small so each example runs in a few milliseconds.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.core.modifications import MBD_FIELD_NAMES, ModificationSet
from repro.brb.optimized import CrossLayerBrachaDolev
from repro.network.adversary import EquivocatingSource, MuteProcess
from repro.network.simulation.delays import AsynchronousDelay, FixedDelay
from repro.network.simulation.network import SimulatedNetwork
from repro.topology.generators import random_regular_topology


mbd_subsets = st.sets(st.sampled_from(sorted(MBD_FIELD_NAMES.values())), max_size=12)


def build_modifications(names) -> ModificationSet:
    return ModificationSet.dolev_optimized().with_enabled(*names)


def run_one(n, k, f, mods, seed, asynchronous, byzantine_pids=(), equivocating=False):
    config = SystemConfig.for_system(n, f)
    topology = random_regular_topology(n, k, seed=seed, min_connectivity=min(k, 2 * f + 1))
    protocols = {}
    for pid in topology.nodes:
        neighbors = sorted(topology.neighbors(pid))
        if equivocating and pid == 0:
            protocols[pid] = EquivocatingSource(pid, neighbors, family="cross_layer")
        elif pid in byzantine_pids:
            protocols[pid] = MuteProcess(pid, neighbors)
        else:
            protocols[pid] = CrossLayerBrachaDolev(
                pid, config, neighbors, modifications=mods
            )
    delay = AsynchronousDelay(10.0, 10.0) if asynchronous else FixedDelay(10.0)
    network = SimulatedNetwork(topology, protocols, delay_model=delay, seed=seed)
    network.broadcast(0, b"property-payload", 0)
    metrics = network.run(max_events=400_000)
    correct = [p for p in topology.nodes if p not in byzantine_pids and not (equivocating and p == 0)]
    return metrics, correct


class TestBRBProperties:
    @given(
        mods_names=mbd_subsets,
        seed=st.integers(min_value=0, max_value=10_000),
        asynchronous=st.booleans(),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_validity_and_agreement_with_correct_source(self, mods_names, seed, asynchronous):
        mods = build_modifications(mods_names)
        metrics, correct = run_one(8, 5, 1, mods, seed, asynchronous)
        delivered = metrics.deliveries_for((0, 0))
        # BRB-Validity: every correct process delivers the broadcast payload.
        assert set(correct) <= set(delivered)
        # BRB-Integrity / Agreement: they all deliver the same, genuine value.
        assert {delivered[pid] for pid in correct} == {b"property-payload"}

    @given(
        mods_names=mbd_subsets,
        seed=st.integers(min_value=0, max_value=10_000),
        byzantine=st.sets(st.integers(min_value=1, max_value=9), min_size=0, max_size=2),
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_mute_byzantine_processes_never_block_delivery(self, mods_names, seed, byzantine):
        mods = build_modifications(mods_names)
        metrics, correct = run_one(10, 5, 2, mods, seed, False, byzantine_pids=byzantine)
        delivered = metrics.deliveries_for((0, 0))
        assert set(correct) <= set(delivered)
        assert {delivered[pid] for pid in correct} == {b"property-payload"}

    @given(
        mods_names=mbd_subsets,
        seed=st.integers(min_value=0, max_value=10_000),
        asynchronous=st.booleans(),
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_agreement_under_equivocating_source(self, mods_names, seed, asynchronous):
        mods = build_modifications(mods_names)
        metrics, correct = run_one(8, 5, 1, mods, seed, asynchronous, equivocating=True)
        delivered = metrics.deliveries_for((0, 0))
        values = {delivered[pid] for pid in correct if pid in delivered}
        # BRB-Agreement: correct processes never deliver conflicting values.
        assert len(values) <= 1

    @given(
        mods_names=mbd_subsets,
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_modifications_never_change_what_is_delivered(self, mods_names, seed):
        """Optimizations change cost, not outcomes (same deliveries as BDopt)."""
        mods = build_modifications(mods_names)
        reference_metrics, correct = run_one(
            8, 5, 1, ModificationSet.dolev_optimized(), seed, False
        )
        candidate_metrics, _ = run_one(8, 5, 1, mods, seed, False)
        reference = reference_metrics.deliveries_for((0, 0))
        candidate = candidate_metrics.deliveries_for((0, 0))
        assert {pid: reference[pid] for pid in correct} == {
            pid: candidate[pid] for pid in correct
        }
