"""Property-based tests for the binary codec and wire-size accounting."""

from hypothesis import given, settings, strategies as st

from repro.core.encoding import decode_message, encode_message
from repro.core.messages import (
    BrachaMessage,
    CrossLayerMessage,
    DolevMessage,
    MessageType,
)

process_ids = st.integers(min_value=0, max_value=2 ** 16)
bids = st.integers(min_value=0, max_value=2 ** 16)
payloads = st.binary(max_size=256)
paths = st.lists(process_ids, max_size=8).map(tuple)
optional_ids = st.one_of(st.none(), process_ids)

bracha_messages = st.builds(
    BrachaMessage,
    mtype=st.sampled_from([MessageType.SEND, MessageType.ECHO, MessageType.READY]),
    source=process_ids,
    bid=bids,
    payload=payloads,
    creator=optional_ids,
)

dolev_messages = st.builds(
    DolevMessage,
    content=st.one_of(st.binary(min_size=0, max_size=128), bracha_messages),
    path=paths,
)

cross_layer_messages = st.builds(
    CrossLayerMessage,
    mtype=st.sampled_from(list(MessageType)),
    source=optional_ids,
    bid=st.one_of(st.none(), bids),
    creator=optional_ids,
    embedded_creator=optional_ids,
    payload=st.one_of(st.none(), payloads),
    local_payload_id=st.one_of(st.none(), bids),
    path=st.one_of(st.none(), paths),
)

any_message = st.one_of(bracha_messages, dolev_messages, cross_layer_messages)


class TestCodecProperties:
    @given(message=any_message)
    @settings(max_examples=300, deadline=None)
    def test_round_trip(self, message):
        assert decode_message(encode_message(message)) == message

    @given(message=any_message)
    @settings(max_examples=200, deadline=None)
    def test_encoding_is_deterministic(self, message):
        assert encode_message(message) == encode_message(message)

    @given(message=cross_layer_messages)
    @settings(max_examples=200, deadline=None)
    def test_wire_size_counts_only_present_fields(self, message):
        size = message.wire_size()
        minimum = 1  # the type tag is always counted
        assert size >= minimum
        # Removing the payload never increases the accounted size.
        without_payload = message.with_fields(payload=None)
        assert without_payload.wire_size() <= size

    @given(message=cross_layer_messages, extra=st.binary(min_size=1, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_trailing_bytes_always_rejected(self, message, extra):
        import pytest

        from repro.core.errors import EncodingError

        with pytest.raises(EncodingError):
            decode_message(encode_message(message) + extra)
