"""Integration tests: Bracha's protocol on fully connected simulated networks."""

import pytest

from repro.core.config import SystemConfig
from repro.brb.bracha import BrachaBroadcast
from repro.network.adversary import EquivocatingSource, MuteProcess
from repro.network.simulation.delays import AsynchronousDelay, FixedDelay
from repro.topology.generators import complete_topology

from tests.conftest import run_broadcast


def bracha_builder(pid, config, neighbors):
    return BrachaBroadcast(pid, config, neighbors)


class TestCorrectSource:
    def test_all_processes_deliver(self):
        config = SystemConfig.for_system(7, 2)
        metrics, _ = run_broadcast(complete_topology(7), config, bracha_builder)
        delivered = metrics.deliveries_for((0, 0))
        assert set(delivered) == set(range(7))
        assert set(delivered.values()) == {b"test-payload"}

    def test_latency_is_three_rounds(self):
        config = SystemConfig.for_system(4, 1)
        metrics, _ = run_broadcast(
            complete_topology(4), config, bracha_builder, delay_model=FixedDelay(50.0)
        )
        assert metrics.delivery_latency((0, 0), range(4)) == pytest.approx(150.0)

    def test_message_complexity_is_quadratic(self):
        # SEND: N-1, ECHO: N(N-1), READY: N(N-1) messages.
        n = 6
        config = SystemConfig.for_system(n, 1)
        metrics, _ = run_broadcast(complete_topology(n), config, bracha_builder)
        assert metrics.message_count == (n - 1) + 2 * n * (n - 1)

    def test_asynchronous_network_still_delivers(self):
        config = SystemConfig.for_system(7, 2)
        metrics, _ = run_broadcast(
            complete_topology(7),
            config,
            bracha_builder,
            delay_model=AsynchronousDelay(20.0, 20.0),
            seed=11,
        )
        assert len(metrics.deliveries_for((0, 0))) == 7

    def test_multiple_broadcast_ids_delivered_independently(self):
        config = SystemConfig.for_system(4, 1)
        topo = complete_topology(4)
        protocols = {
            pid: BrachaBroadcast(pid, config, sorted(topo.neighbors(pid)))
            for pid in topo.nodes
        }
        from repro.network.simulation.network import SimulatedNetwork

        network = SimulatedNetwork(topo, protocols, delay_model=FixedDelay(5.0))
        network.broadcast(0, b"first", 0)
        network.broadcast(0, b"second", 1)
        network.broadcast(2, b"third", 0)
        metrics = network.run()
        assert set(metrics.deliveries_for((0, 0)).values()) == {b"first"}
        assert set(metrics.deliveries_for((0, 1)).values()) == {b"second"}
        assert set(metrics.deliveries_for((2, 0)).values()) == {b"third"}
        assert len(metrics.deliveries_for((0, 1))) == 4


class TestByzantineFaults:
    def test_mute_processes_do_not_prevent_delivery(self):
        config = SystemConfig.for_system(7, 2)
        byzantine = {5: MuteProcess(5, list(range(5)) + [6]), 6: MuteProcess(6, list(range(6)))}
        metrics, _ = run_broadcast(
            complete_topology(7), config, bracha_builder, byzantine=byzantine
        )
        delivered = metrics.deliveries_for((0, 0))
        assert set(range(5)) <= set(delivered)

    def test_equivocating_source_never_splits_correct_processes(self):
        config = SystemConfig.for_system(7, 2)
        topo = complete_topology(7)
        byzantine = {0: EquivocatingSource(0, list(range(1, 7)), family="bracha")}
        metrics, _ = run_broadcast(
            topo, config, bracha_builder, byzantine=byzantine, source=0
        )
        payloads = set(metrics.deliveries_for((0, 0)).values())
        # BRB-Agreement: at most one value is delivered by correct processes.
        assert len(payloads) <= 1

    def test_no_delivery_without_source_broadcast(self):
        # BRB-Integrity: nothing is delivered if nothing was broadcast.
        config = SystemConfig.for_system(4, 1)
        topo = complete_topology(4)
        protocols = {
            pid: BrachaBroadcast(pid, config, sorted(topo.neighbors(pid)))
            for pid in topo.nodes
        }
        from repro.network.simulation.network import SimulatedNetwork

        network = SimulatedNetwork(topo, protocols)
        metrics = network.run()
        assert metrics.message_count == 0
        assert not metrics.delivery_times
