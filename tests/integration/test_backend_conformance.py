"""Cross-backend conformance: simulation and asyncio agree on verdicts.

The same declarative :class:`ScenarioSpec` is executed on the
discrete-event simulator and on the asyncio TCP runtime (real localhost
sockets), and the delivery/safety verdicts — who is correct, who
delivered what, and whether totality/agreement/validity hold — must be
identical.  Timings are intentionally excluded: the simulator's clock is
virtual, the runtime's is the wall.

These tests open dozens of real sockets per scenario and are marked
``slow``; the dedicated CI job runs them under a hard pytest timeout so
a hung socket fails fast instead of stalling the runner.
"""

import pytest

from repro.scenarios import (
    AdversarySpec,
    AsyncioBackend,
    CrashAt,
    DelayedStart,
    JoinAt,
    LeaveAt,
    LinkDropWindow,
    RewireLinkAt,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    conformance_mode_for,
    expand_grid,
    run_conformance,
)
from repro.runner.parallel import SweepExecutor

pytestmark = pytest.mark.slow

#: Short timeouts: every scenario below delivers within a second on
#: localhost, and a conformance failure should not wait out 20 s.
FAST_ASYNCIO = AsyncioBackend(delivery_timeout_s=10.0, connect_timeout_s=10.0)


def assert_conforms(spec: ScenarioSpec) -> None:
    report = run_conformance(spec, overrides={"asyncio": FAST_ASYNCIO})
    assert report.agree, f"backends disagree on {spec.name}: {report.mismatches()}"
    # The two backends must occupy distinct cache slots.
    hashes = dict(report.scenario_hashes)
    assert hashes["simulation"] != hashes["asyncio"]


class TestBackendConformance:
    def test_no_fault_small_topology(self):
        assert_conforms(
            ScenarioSpec(
                name="conformance-no-fault",
                topology=TopologySpec(kind="harary", n=5, k=3),
                f=1,
                seed=3,
            )
        )

    def test_crash_fault_variant(self):
        assert_conforms(
            ScenarioSpec(
                name="conformance-crash",
                topology=TopologySpec(kind="harary", n=6, k=4),
                f=1,
                seed=5,
                faults=(CrashAt(pid=4, time_ms=0.0),),
            )
        )

    def test_delayed_start_variant(self):
        assert_conforms(
            ScenarioSpec(
                name="conformance-delayed-start",
                topology=TopologySpec(kind="harary", n=5, k=3),
                f=1,
                seed=7,
                faults=(DelayedStart(pid=2, time_ms=100.0),),
            )
        )

    def test_permanent_link_drop_routes_around(self):
        # k=4 with one dead link still leaves 2f+1 disjoint paths, so
        # both backends must report full delivery.
        assert_conforms(
            ScenarioSpec(
                name="conformance-link-drop",
                topology=TopologySpec(kind="harary", n=6, k=4),
                f=1,
                seed=9,
                faults=(LinkDropWindow(u=0, v=1, start_ms=0.0, end_ms=None),),
            )
        )

    def test_mute_adversary_variant(self):
        assert_conforms(
            ScenarioSpec(
                name="conformance-mute",
                topology=TopologySpec(kind="harary", n=6, k=4),
                f=1,
                seed=11,
                adversaries=(
                    AdversarySpec(behaviour="mute", count=1, placement="random"),
                ),
            )
        )

    def test_bracha_on_complete_topology(self):
        assert_conforms(
            ScenarioSpec(
                name="conformance-bracha",
                topology=TopologySpec(kind="complete", n=4),
                protocol="bracha",
                f=1,
                seed=13,
            )
        )


class TestWorkloadConformance:
    """Multi-broadcast workloads: per-broadcast verdicts must agree.

    The verdict projection carries one :class:`BroadcastVerdict` per
    workload broadcast, so any backend that drops, reorders or
    mis-accounts a single broadcast of the schedule fails here even if
    the aggregate predicates happen to match.
    """

    def test_repeated_workload(self):
        spec = ScenarioSpec(
            name="conformance-workload-repeated",
            topology=TopologySpec(kind="harary", n=5, k=3),
            f=1,
            seed=17,
            workload=WorkloadSpec.repeated(0, 3, interval_ms=30.0),
        )
        report = run_conformance(spec, overrides={"asyncio": FAST_ASYNCIO})
        assert report.agree, f"backends disagree: {report.mismatches()}"
        for _, verdict in report.verdicts:
            assert len(verdict.broadcasts) == 3
            assert all(b.all_correct_delivered for b in verdict.broadcasts)

    def test_round_robin_workload_with_crash(self):
        spec = ScenarioSpec(
            name="conformance-workload-round-robin",
            topology=TopologySpec(kind="harary", n=6, k=4),
            f=1,
            seed=19,
            faults=(CrashAt(pid=5, time_ms=0.0),),
            workload=WorkloadSpec.round_robin([0, 2], 4, interval_ms=25.0),
        )
        report = run_conformance(spec, overrides={"asyncio": FAST_ASYNCIO})
        assert report.agree, f"backends disagree: {report.mismatches()}"
        verdict = dict(report.verdicts)["simulation"]
        assert [(b.source, b.bid) for b in verdict.broadcasts] == [
            (0, 0),
            (0, 1),
            (2, 0),
            (2, 1),
        ]


class TestRCOConformance:
    """The causal wrapper's verdicts agree across backends.

    The causal-order field of the safety verdict rides along, so a
    backend that delivered out of causal order would fail conformance,
    not just the oracle.
    """

    def test_causal_chain_conforms(self):
        assert_conforms(
            ScenarioSpec(
                name="conformance-rco-chain",
                topology=TopologySpec(kind="harary", n=5, k=3),
                protocol="rco_cross_layer",
                f=1,
                seed=13,
                workload=WorkloadSpec.causal_chain((0, 2, 4), interval_ms=250.0),
            )
        )

    def test_rco_with_delayed_start_conforms(self):
        assert_conforms(
            ScenarioSpec(
                name="conformance-rco-delayed",
                topology=TopologySpec(kind="harary", n=5, k=3),
                protocol="rco_cross_layer",
                f=1,
                seed=17,
                faults=(DelayedStart(pid=3, time_ms=120.0),),
                workload=WorkloadSpec.causal_chain((0, 2), interval_ms=300.0),
            )
        )


class TestChurnConformance:
    """Membership churn runs on both backends with matching safety verdicts.

    Which in-flight copies a graph edit catches is a timing property, so
    ``auto`` compares safety-only verdicts for churned specs — delivery
    sets may differ, forged/split deliveries may not.
    """

    def test_churn_specs_resolve_to_safety_mode(self):
        spec = ScenarioSpec(
            name="conformance-churn-mode",
            topology=TopologySpec(kind="harary", n=5, k=3),
            f=1,
            seed=23,
            faults=(LeaveAt(pid=4, time_ms=50.0),),
        )
        assert spec.has_churn
        assert conformance_mode_for(spec) == "safety"

    def test_join_leave_rewire_conform(self):
        for name, faults in (
            ("join", (JoinAt(pid=4, time_ms=50.0),)),
            ("leave", (LeaveAt(pid=4, time_ms=50.0),)),
            ("rewire", (RewireLinkAt(pid=4, old_peer=5, new_peer=1, time_ms=50.0),)),
        ):
            spec = ScenarioSpec(
                name=f"conformance-churn-{name}",
                topology=TopologySpec(kind="harary", n=6, k=4),
                f=1,
                seed=29,
                faults=faults,
            )
            report = run_conformance(spec, overrides={"asyncio": FAST_ASYNCIO})
            assert report.agree, (
                f"backends disagree on {spec.name}: {report.mismatches()}"
            )


class TestSweepWithBackendAxis:
    def test_executor_runs_mixed_backend_cells_and_caches_per_backend(self, tmp_path):
        base = ScenarioSpec(
            name="mixed-backend-sweep",
            topology=TopologySpec(kind="harary", n=5, k=3),
            f=1,
            seed=2,
        )
        cells = expand_grid(base, {"backend": ["simulation", "asyncio"], "seed": [2, 3]})
        executor = SweepExecutor(workers=1, cache_dir=tmp_path)

        results = executor.run(cells)
        assert [r.spec.backend for r in results] == [
            "simulation",
            "simulation",
            "asyncio",
            "asyncio",
        ]
        assert all(r.all_correct_delivered for r in results)

        # Every cell — including the asyncio ones — is served from the
        # cache on a re-run, because the hash keys include the backend.
        rerun = executor.run(cells)
        assert executor.cache_hits == len(cells)
        assert rerun == results
