"""Integration tests: the layered Bracha-Dolev combination (BD and BDopt)."""

import pytest

from repro.core.config import SystemConfig
from repro.core.modifications import ModificationSet
from repro.brb.bracha_dolev import BrachaDolevBroadcast
from repro.network.adversary import EquivocatingSource, MuteProcess
from repro.topology.generators import harary_topology, random_regular_topology

from tests.conftest import run_broadcast


def layered_builder(mods):
    def build(pid, config, neighbors):
        return BrachaDolevBroadcast(pid, config, neighbors, modifications=mods)

    return build


class TestLayeredCombination:
    @pytest.mark.parametrize(
        "mods",
        [ModificationSet.none(), ModificationSet.dolev_optimized()],
        ids=["bd", "bdopt"],
    )
    def test_brb_delivery_on_partially_connected_graph(self, mods):
        config = SystemConfig.for_system(7, 1)
        topo = harary_topology(7, 4)
        metrics, _ = run_broadcast(topo, config, layered_builder(mods))
        delivered = metrics.deliveries_for((0, 0))
        assert set(delivered) == set(range(7))
        assert set(delivered.values()) == {b"test-payload"}

    def test_bdopt_uses_fewer_messages_than_bd(self):
        config = SystemConfig.for_system(7, 1)
        topo = harary_topology(7, 4)
        bd, _ = run_broadcast(topo, config, layered_builder(ModificationSet.none()))
        bdopt, _ = run_broadcast(
            topo, config, layered_builder(ModificationSet.dolev_optimized())
        )
        assert bdopt.message_count < bd.message_count
        assert bdopt.total_bytes < bd.total_bytes

    def test_factory_constructors(self):
        config = SystemConfig.for_system(7, 1)
        bd = BrachaDolevBroadcast.bd(0, config, [1, 2, 3])
        bdopt = BrachaDolevBroadcast.bdopt(0, config, [1, 2, 3])
        assert not bd.modifications.md1_deliver_from_source
        assert bdopt.modifications.md1_deliver_from_source

    def test_mute_byzantine_processes_tolerated(self):
        config = SystemConfig.for_system(10, 2)
        topo = random_regular_topology(10, 5, seed=2)
        mute = [4, 9]
        byzantine = {pid: MuteProcess(pid, sorted(topo.neighbors(pid))) for pid in mute}
        metrics, _ = run_broadcast(
            topo,
            config,
            layered_builder(ModificationSet.dolev_optimized()),
            byzantine=byzantine,
        )
        delivered = metrics.deliveries_for((0, 0))
        assert set(delivered) >= set(topo.nodes) - set(mute)

    def test_equivocating_source_cannot_split_correct_processes(self):
        config = SystemConfig.for_system(7, 1)
        topo = harary_topology(7, 4)
        byzantine = {
            0: EquivocatingSource(0, sorted(topo.neighbors(0)), family="bracha_dolev")
        }
        metrics, _ = run_broadcast(
            topo,
            config,
            layered_builder(ModificationSet.dolev_optimized()),
            byzantine=byzantine,
            source=0,
        )
        payloads = set(metrics.deliveries_for((0, 0)).values())
        assert len(payloads) <= 1

    def test_non_source_broadcasts_also_work(self):
        config = SystemConfig.for_system(7, 1)
        topo = harary_topology(7, 4)
        metrics, _ = run_broadcast(
            topo,
            config,
            layered_builder(ModificationSet.dolev_optimized()),
            source=5,
            payload=b"from-five",
        )
        delivered = metrics.deliveries_for((5, 0))
        assert set(delivered) == set(range(7))
        assert set(delivered.values()) == {b"from-five"}
