"""Integration tests of the distributed sweep executor.

The contract under test: whatever happens to the worker fleet — clean
runs, a worker killed mid-cell, a worker that goes silent past its
lease, an incompatible worker, or no workers at all — a sweep of
simulation cells terminates with results identical to
``SweepExecutor(workers=1)`` on the same cells, in cell order.

The worker-subprocess tests exercise the real ``repro-sweep-worker``
code path (spawned via ``launch_local_workers``); the in-process tests
drive :func:`run_worker` as asyncio tasks over real localhost sockets so
they stay fast enough for the default lane.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.network.asyncio_runtime.framing import read_frame, write_frame
from repro.runner import wire
from repro.runner.distributed import DistributedSweepExecutor, run_worker, worker_main
from repro.runner.parallel import SweepExecutor
from repro.scenarios import ScenarioSpec, TopologySpec, WorkloadSpec, expand_grid


def build_cells(count, *, n=10, k=5, f=1, base_seed=50):
    base = ScenarioSpec(
        name="distributed-sweep",
        topology=TopologySpec(kind="random_regular", n=n, k=k, min_connectivity=2 * f + 1),
        f=f,
        seed=base_seed,
    )
    cells = expand_grid(base, {"seed": range(base_seed, base_seed + count)})
    assert len(cells) == count
    return cells


def summaries(results):
    """Canonical bytes of each result's deterministic summary."""
    return [json.dumps(r.summary(), sort_keys=True).encode() for r in results]


async def start_sweep(executor, cells):
    """Start ``run_async`` and wait until the coordinator is listening.

    Waits on the run task *and* the started event together so a startup
    failure (port bind, fd limit) surfaces as the real exception instead
    of hanging the test on ``started.wait()`` until pytest-timeout.
    """
    run_task = asyncio.create_task(executor.run_async(cells))
    started = asyncio.create_task(executor.started.wait())
    await asyncio.wait({run_task, started}, return_when=asyncio.FIRST_COMPLETED)
    if not started.done():
        started.cancel()
        run_task.result()  # raises the startup failure
    return run_task


def run_with_inprocess_workers(executor, cells, worker_count, **worker_kwargs):
    """Drive a sweep with ``worker_count`` in-process workers over TCP."""

    async def go():
        run_task = await start_sweep(executor, cells)
        workers = [
            asyncio.create_task(
                run_worker("127.0.0.1", executor.port, **worker_kwargs)
            )
            for _ in range(worker_count)
        ]
        results = await run_task
        computed = await asyncio.gather(*workers)
        return results, computed

    return asyncio.run(go())


# ----------------------------------------------------------------------
# Clean distributed runs
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_subprocess_sweep_matches_serial_executor(tmp_path):
    """≥ 20 cells over 2 real worker processes == the serial path."""
    cells = build_cells(20, n=16, k=7, f=2)
    serial = SweepExecutor(workers=1).run(cells)

    executor = DistributedSweepExecutor(
        workers=2, cache_dir=tmp_path / "cache", lease_timeout_s=60.0
    )
    distributed = executor.run(cells)

    assert distributed == serial
    assert summaries(distributed) == summaries(serial)
    # Order preservation: results come back in cell order.
    assert [r.spec for r in distributed] == list(cells)
    assert executor.cache_hits == 0
    assert executor.completed_cells == len(cells)
    # Everything ran on the fleet, nothing degraded to the coordinator.
    assert executor.locally_executed == 0

    # A second sweep over the shared cache directory is pure cache hits.
    again = DistributedSweepExecutor(workers=0, cache_dir=tmp_path / "cache")
    assert again.run(cells) == serial
    assert again.cache_hits == len(cells)


def test_workload_cells_round_trip_the_distributed_path(tmp_path):
    """Multi-broadcast specs and per-broadcast outcomes survive the wire.

    The workload rides inside the TASK pickle and the outcomes inside
    the RESULT pickle; a distributed sweep over workload cells must
    equal the serial path, per-broadcast outcomes included.
    """
    base = ScenarioSpec(
        name="distributed-workload",
        topology=TopologySpec(kind="harary", n=6, k=3),
        f=1,
        seed=9,
        workload=WorkloadSpec.round_robin([0, 1], 4, interval_ms=20.0),
    )
    cells = expand_grid(base, {"seed": [9, 10, 11]})
    serial = SweepExecutor(workers=1).run(cells)

    executor = DistributedSweepExecutor(workers=2, cache_dir=tmp_path / "cache")
    distributed = executor.run(cells)

    assert distributed == serial
    assert summaries(distributed) == summaries(serial)
    assert all(r.broadcast_count == 4 for r in distributed)
    assert [r.outcomes for r in distributed] == [r.outcomes for r in serial]


def test_inprocess_workers_match_serial_executor(tmp_path):
    cells = build_cells(8)
    serial = SweepExecutor(workers=1).run(cells)
    executor = DistributedSweepExecutor(cache_dir=tmp_path)
    results, computed = run_with_inprocess_workers(executor, cells, 2)
    assert results == serial
    assert summaries(results) == summaries(serial)
    assert sum(computed) == len(cells)
    assert executor.dispatched_cells == len(cells)


def test_precached_cells_are_never_dispatched(tmp_path):
    cells = build_cells(6)
    serial = SweepExecutor(workers=1, cache_dir=tmp_path).run(cells[:4])

    executor = DistributedSweepExecutor(cache_dir=tmp_path)
    results, computed = run_with_inprocess_workers(executor, cells, 2)
    assert executor.cache_hits == 4
    assert sum(computed) == 2
    assert executor.dispatched_cells == 2
    assert results[:4] == serial
    assert results == SweepExecutor(workers=1).run(cells)


# ----------------------------------------------------------------------
# Fault injection against the coordinator itself
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_killed_worker_mid_sweep_requeues_and_completes(tmp_path):
    """Kill a worker subprocess mid-sweep: the coordinator requeues its
    in-flight cell, the surviving worker finishes the sweep, and the
    results still equal a serial run."""
    cells = build_cells(20, n=20, k=9, f=2)  # ~0.2 s/cell: the sweep
    serial = SweepExecutor(workers=1).run(cells)  # outlives the kill

    executor = DistributedSweepExecutor(
        workers=2, cache_dir=tmp_path / "cache", lease_timeout_s=60.0
    )
    box = {}

    def sweep():
        box["results"] = executor.run(cells)

    thread = threading.Thread(target=sweep)
    thread.start()
    try:
        # Wait for the fleet to make progress, then kill one worker
        # while cells are still being dispatched.
        deadline = time.monotonic() + 60.0
        while executor.completed_cells < 2:
            assert time.monotonic() < deadline, "sweep never made progress"
            assert thread.is_alive(), "sweep finished before the kill"
            time.sleep(0.02)
        assert len(executor.worker_processes) == 2
        executor.worker_processes[0].kill()
    finally:
        thread.join(timeout=120.0)
    assert not thread.is_alive(), "sweep did not terminate after the kill"

    assert box["results"] == serial
    assert summaries(box["results"]) == summaries(serial)
    # The killed worker's in-flight cell went back on the queue.
    assert executor.requeued_cells >= 1
    assert executor.completed_cells == len(cells)


def test_silent_worker_lease_expires_and_cell_degrades_locally():
    """A worker that accepts a cell and then goes silent: the lease
    expires without a heartbeat, the retry budget (0) is exhausted, and
    the coordinator executes the cell itself."""
    cells = build_cells(1)
    serial = SweepExecutor(workers=1).run(cells)

    async def go():
        executor = DistributedSweepExecutor(
            lease_timeout_s=0.5,
            retry_budget=0,
            worker_wait_s=30.0,
        )
        run_task = await start_sweep(executor, cells)

        reader, writer = await asyncio.open_connection("127.0.0.1", executor.port)
        write_frame(writer, wire.encode_hello())
        await writer.drain()
        kind, _ = wire.decode_envelope(await read_frame(reader))
        assert kind == wire.WELCOME
        kind, body = wire.decode_envelope(await read_frame(reader))
        assert kind == wire.TASK
        index, spec = wire.decode_task(body)
        assert (index, spec) == (0, cells[0])
        # ... and never answer: no heartbeat, no result.
        results = await run_task
        writer.close()
        return executor, results

    executor, results = asyncio.run(go())
    assert results == serial
    assert executor.requeued_cells == 1
    assert executor.locally_executed == 1


def test_cell_error_requeues_without_dropping_the_worker():
    """A worker whose cell *execution* raises reports ERROR; the
    coordinator requeues the cell on the same, still-healthy connection
    instead of tearing it down — one failing cell must not shrink the
    fleet."""
    cells = build_cells(1)
    (serial_result,) = SweepExecutor(workers=1).run(cells)

    async def go():
        executor = DistributedSweepExecutor(retry_budget=1, worker_wait_s=30.0)
        run_task = await start_sweep(executor, cells)

        reader, writer = await asyncio.open_connection("127.0.0.1", executor.port)
        write_frame(writer, wire.encode_hello())
        await writer.drain()
        kind, _ = wire.decode_envelope(await read_frame(reader))
        assert kind == wire.WELCOME
        kind, body = wire.decode_envelope(await read_frame(reader))
        assert kind == wire.TASK
        index, _ = wire.decode_task(body)
        write_frame(writer, wire.encode_error(index, "transient failure"))
        await writer.drain()
        # The requeued cell comes back on the *same* connection.
        kind, body = wire.decode_envelope(await read_frame(reader))
        assert kind == wire.TASK
        retry_index, retry_spec = wire.decode_task(body)
        assert (retry_index, retry_spec) == (index, cells[0])
        write_frame(writer, wire.encode_result(index, serial_result))
        await writer.drain()
        results = await run_task
        writer.close()
        return executor, results

    executor, results = asyncio.run(go())
    assert results == [serial_result]
    assert executor.requeued_cells == 1
    assert executor.locally_executed == 0
    assert executor.dispatched_cells == 2


def test_zero_workers_degrades_to_local_execution(tmp_path):
    cells = build_cells(5)
    serial = SweepExecutor(workers=1).run(cells)
    executor = DistributedSweepExecutor(
        cache_dir=tmp_path, worker_wait_s=0.3
    )
    results = executor.run(cells)
    assert results == serial
    assert executor.locally_executed == len(cells)
    assert executor.dispatched_cells == 0


def test_local_fallback_disabled_aborts_instead(tmp_path):
    from repro.core.errors import RuntimeAbort

    executor = DistributedSweepExecutor(
        worker_wait_s=0.2, local_fallback=False
    )
    with pytest.raises(RuntimeAbort):
        executor.run(build_cells(2))


def test_incompatible_worker_is_rejected_at_handshake():
    """A worker speaking a different wire version gets an explicit
    REJECT reply and never receives work; the sweep still finishes."""
    cells = build_cells(2)
    serial = SweepExecutor(workers=1).run(cells)

    async def go():
        executor = DistributedSweepExecutor(worker_wait_s=0.4)
        run_task = await start_sweep(executor, cells)

        reader, writer = await asyncio.open_connection("127.0.0.1", executor.port)
        bad_hello = wire.WIRE_MAGIC + bytes((wire.WIRE_VERSION + 1, wire.HELLO))
        write_frame(writer, bad_hello)
        await writer.drain()
        kind, body = wire.decode_envelope(await read_frame(reader))
        writer.close()
        results = await run_task
        return executor, results, kind, wire.decode_reject(body)

    executor, results, kind, reason = asyncio.run(go())
    assert kind == wire.REJECT
    assert "version" in reason
    assert executor.rejected_workers == 1
    assert executor.dispatched_cells == 0
    assert results == serial


# ----------------------------------------------------------------------
# Worker CLI
# ----------------------------------------------------------------------
def test_worker_cli_rejects_malformed_address():
    with pytest.raises(SystemExit):
        worker_main(["--connect", "no-port-here"])


def test_worker_cli_reports_unreachable_coordinator():
    # Port 1 is never listening; a single dial attempt fails fast.
    code = worker_main(
        ["--connect", "127.0.0.1:1", "--connect-attempts", "1"]
    )
    assert code == 3
