"""Integration tests: the cross-layer protocol under every modification.

These tests check the four BRB properties (validity, no-duplication,
integrity, agreement) of the paper's protocol for every individual
modification MBD.1–12, for the composite configurations of Sec. 7.4, in
synchronous and asynchronous networks, and under several Byzantine
behaviours.
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.modifications import ModificationSet
from repro.brb.optimized import CrossLayerBrachaDolev
from repro.network.adversary import (
    CrashingProcess,
    EquivocatingSource,
    MessageDroppingRelay,
    MuteProcess,
    PathForgingRelay,
)
from repro.network.simulation.delays import AsynchronousDelay
from repro.network.simulation.network import SimulatedNetwork
from repro.topology.generators import harary_topology, random_regular_topology

from tests.conftest import cross_layer_builder, run_broadcast

ALL_SINGLE_MODIFICATIONS = [f"mbd{i}" for i in range(1, 13)]
COMPOSITE_CONFIGURATIONS = {
    "bdopt": ModificationSet.dolev_optimized(),
    "lat": ModificationSet.latency_optimized(),
    "bdw": ModificationSet.bandwidth_optimized(),
    "lat_bdw": ModificationSet.latency_and_bandwidth_optimized(),
    "all": ModificationSet.all_enabled(),
}


class TestValidityAcrossModifications:
    @pytest.mark.parametrize("name", ALL_SINGLE_MODIFICATIONS)
    def test_single_modification_preserves_validity(self, name):
        index = int(name[3:])
        mods = ModificationSet.single_mbd(index)
        config = SystemConfig.for_system(10, 2)
        topo = random_regular_topology(10, 5, seed=7)
        metrics, _ = run_broadcast(topo, config, cross_layer_builder(mods), payload=b"v")
        delivered = metrics.deliveries_for((0, 0))
        assert set(delivered) == set(topo.nodes)
        assert set(delivered.values()) == {b"v"}

    @pytest.mark.parametrize("name", sorted(COMPOSITE_CONFIGURATIONS))
    def test_composite_configuration_preserves_validity(self, name):
        mods = COMPOSITE_CONFIGURATIONS[name]
        config = SystemConfig.for_system(10, 2)
        topo = random_regular_topology(10, 5, seed=3)
        metrics, _ = run_broadcast(topo, config, cross_layer_builder(mods))
        assert set(metrics.deliveries_for((0, 0))) == set(topo.nodes)

    @pytest.mark.parametrize("name", sorted(COMPOSITE_CONFIGURATIONS))
    def test_asynchronous_network_delivery(self, name):
        mods = COMPOSITE_CONFIGURATIONS[name]
        config = SystemConfig.for_system(10, 2)
        topo = random_regular_topology(10, 5, seed=5)
        metrics, _ = run_broadcast(
            topo,
            config,
            cross_layer_builder(mods),
            delay_model=AsynchronousDelay(20.0, 20.0),
            seed=13,
        )
        assert set(metrics.deliveries_for((0, 0))) == set(topo.nodes)

    def test_tight_resilience_case(self):
        # N = 3f + 1 and connectivity exactly 2f + 1.
        config = SystemConfig.for_system(7, 2)
        topo = harary_topology(7, 5)
        assert topo.vertex_connectivity() == 5
        metrics, _ = run_broadcast(
            topo, config, cross_layer_builder(ModificationSet.all_enabled())
        )
        assert set(metrics.deliveries_for((0, 0))) == set(topo.nodes)

    def test_every_process_can_be_the_source(self):
        config = SystemConfig.for_system(7, 1)
        topo = harary_topology(7, 4)
        mods = ModificationSet.latency_and_bandwidth_optimized()
        for source in topo.nodes:
            metrics, _ = run_broadcast(
                topo, config, cross_layer_builder(mods), source=source
            )
            assert set(metrics.deliveries_for((source, 0))) == set(topo.nodes)


class TestNoDuplicationAndIntegrity:
    def test_each_process_delivers_exactly_once(self):
        config = SystemConfig.for_system(10, 2)
        topo = random_regular_topology(10, 5, seed=9)
        metrics, protocols = run_broadcast(
            topo, config, cross_layer_builder(ModificationSet.all_enabled())
        )
        for protocol in protocols.values():
            assert list(protocol.delivered) == [(0, 0)]

    def test_repeatable_broadcasts_are_isolated(self):
        config = SystemConfig.for_system(8, 1)
        topo = harary_topology(8, 4)
        mods = ModificationSet.all_enabled()
        protocols = {
            pid: CrossLayerBrachaDolev(
                pid, config, sorted(topo.neighbors(pid)), modifications=mods
            )
            for pid in topo.nodes
        }
        network = SimulatedNetwork(topo, protocols, seed=3)
        network.broadcast(0, b"temperature=20", 1)
        network.broadcast(0, b"temperature=21", 2)
        network.broadcast(3, b"pressure=5", 1)
        network.run()
        for protocol in protocols.values():
            assert protocol.delivered[(0, 1)] == b"temperature=20"
            assert protocol.delivered[(0, 2)] == b"temperature=21"
            assert protocol.delivered[(3, 1)] == b"pressure=5"
            assert len(protocol.delivered) == 3

    def test_same_payload_rebroadcast_with_new_bid_is_delivered_again(self):
        # Sensing applications re-broadcast identical payloads (Sec. 5).
        config = SystemConfig.for_system(8, 1)
        topo = harary_topology(8, 4)
        mods = ModificationSet.bdopt_with_mbd1()
        protocols = {
            pid: CrossLayerBrachaDolev(
                pid, config, sorted(topo.neighbors(pid)), modifications=mods
            )
            for pid in topo.nodes
        }
        network = SimulatedNetwork(topo, protocols, seed=3)
        network.broadcast(0, b"same-reading", 10)
        network.broadcast(0, b"same-reading", 11)
        network.run()
        for protocol in protocols.values():
            assert protocol.delivered[(0, 10)] == b"same-reading"
            assert protocol.delivered[(0, 11)] == b"same-reading"


class TestByzantineResilience:
    def _topology(self, seed=1):
        config = SystemConfig.for_system(10, 2)
        return config, random_regular_topology(10, 5, seed=seed)

    def test_mute_processes(self):
        config, topo = self._topology()
        byzantine = {
            pid: MuteProcess(pid, sorted(topo.neighbors(pid))) for pid in (4, 7)
        }
        metrics, _ = run_broadcast(
            topo,
            config,
            cross_layer_builder(ModificationSet.all_enabled()),
            byzantine=byzantine,
        )
        assert set(metrics.deliveries_for((0, 0))) >= set(topo.nodes) - {4, 7}

    def test_crashing_processes(self):
        config, topo = self._topology(seed=2)
        mods = ModificationSet.latency_and_bandwidth_optimized()
        byzantine = {}
        for pid in (4, 7):
            inner = CrossLayerBrachaDolev(
                pid, config, sorted(topo.neighbors(pid)), modifications=mods
            )
            byzantine[pid] = CrashingProcess(inner, crash_after=3)
        metrics, _ = run_broadcast(
            topo, config, cross_layer_builder(mods), byzantine=byzantine
        )
        assert set(metrics.deliveries_for((0, 0))) >= set(topo.nodes) - {4, 7}

    def test_message_dropping_relays(self):
        config, topo = self._topology(seed=3)
        mods = ModificationSet.latency_and_bandwidth_optimized()
        byzantine = {}
        for pid in (4, 7):
            inner = CrossLayerBrachaDolev(
                pid, config, sorted(topo.neighbors(pid)), modifications=mods
            )
            byzantine[pid] = MessageDroppingRelay(inner, drop_probability=0.7, seed=pid)
        metrics, _ = run_broadcast(
            topo, config, cross_layer_builder(mods), byzantine=byzantine
        )
        assert set(metrics.deliveries_for((0, 0))) >= set(topo.nodes) - {4, 7}

    def test_path_forging_relays_do_not_break_integrity(self):
        config, topo = self._topology(seed=4)
        mods = ModificationSet.all_enabled()
        byzantine = {}
        for pid in (4, 7):
            inner = CrossLayerBrachaDolev(
                pid, config, sorted(topo.neighbors(pid)), modifications=mods
            )
            byzantine[pid] = PathForgingRelay(inner, config, seed=pid)
        metrics, _ = run_broadcast(
            topo, config, cross_layer_builder(mods), byzantine=byzantine
        )
        delivered = metrics.deliveries_for((0, 0))
        correct = set(topo.nodes) - {4, 7}
        assert correct <= set(delivered)
        assert {delivered[pid] for pid in correct} == {b"test-payload"}

    def test_equivocating_source_agreement(self):
        config, topo = self._topology(seed=5)
        byzantine = {
            0: EquivocatingSource(0, sorted(topo.neighbors(0)), family="cross_layer")
        }
        metrics, _ = run_broadcast(
            topo,
            config,
            cross_layer_builder(ModificationSet.latency_and_bandwidth_optimized()),
            byzantine=byzantine,
            source=0,
        )
        correct = set(topo.nodes) - {0}
        delivered = metrics.deliveries_for((0, 0))
        values = {payload for pid, payload in delivered.items() if pid in correct}
        # BRB-Agreement: correct processes never deliver different values.
        assert len(values) <= 1

    def test_byzantine_injection_of_unknown_broadcast_is_not_delivered_alone(self):
        # A single Byzantine process claims a broadcast from a correct process
        # that never broadcast anything: no correct process delivers it
        # (delivery needs 2f+1 READY creators, impossible with one liar).
        config, topo = self._topology(seed=6)
        mods = ModificationSet.latency_and_bandwidth_optimized()
        liar = 4
        byzantine = {liar: EquivocatingSource(liar, sorted(topo.neighbors(liar)), family="cross_layer")}
        protocols = {}
        for pid in topo.nodes:
            if pid == liar:
                protocols[pid] = byzantine[liar]
            else:
                protocols[pid] = CrossLayerBrachaDolev(
                    pid, config, sorted(topo.neighbors(pid)), modifications=mods
                )
        network = SimulatedNetwork(topo, protocols, seed=1)
        network.start()
        # The Byzantine process "broadcasts" impersonating itself (allowed —
        # it is the claimed source), so delivery is legitimate; instead check
        # integrity for a *different* claimed source by crafting nothing.
        network.broadcast(liar, b"liar-value", 0)
        metrics = network.run()
        delivered = metrics.deliveries_for((liar, 0))
        values = set(delivered.values())
        # Either no correct process delivers, or they all agree on one value.
        assert len(values) <= 1
