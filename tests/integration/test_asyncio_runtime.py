"""Integration tests for the asyncio TCP runtime."""

import asyncio


from repro.core.config import SystemConfig
from repro.core.modifications import ModificationSet
from repro.brb.bracha import BrachaBroadcast
from repro.brb.optimized import CrossLayerBrachaDolev
from repro.network.asyncio_runtime import AsyncioCluster
from repro.topology.generators import complete_topology, harary_topology


def run(coroutine):
    return asyncio.run(coroutine)


class TestAsyncioRuntime:
    def test_cross_layer_broadcast_over_tcp(self):
        async def scenario():
            config = SystemConfig.for_system(5, 1)
            topo = harary_topology(5, 3)
            cluster = AsyncioCluster(
                topo,
                config,
                lambda pid, cfg, nb: CrossLayerBrachaDolev(
                    pid, cfg, nb, modifications=ModificationSet.all_enabled()
                ),
            )
            await cluster.start()
            try:
                await cluster.broadcast(0, b"over-the-wire", bid=1)
                assert await cluster.wait_for_all_deliveries(count=1, timeout=20)
                for pid in topo.nodes:
                    assert cluster.delivered_payloads(pid) == [b"over-the-wire"]
            finally:
                await cluster.stop()

        run(scenario())

    def test_bracha_broadcast_over_tcp(self):
        async def scenario():
            config = SystemConfig.for_system(4, 1)
            topo = complete_topology(4)
            cluster = AsyncioCluster(
                topo,
                config,
                lambda pid, cfg, nb: BrachaBroadcast(pid, cfg, nb),
            )
            await cluster.start()
            try:
                await cluster.broadcast(2, b"bracha-tcp", bid=0)
                assert await cluster.wait_for_all_deliveries(count=1, timeout=20)
                assert cluster.delivered_payloads(0) == [b"bracha-tcp"]
            finally:
                await cluster.stop()

        run(scenario())

    def test_concurrent_clusters_do_not_collide_on_ports(self):
        # Ephemeral allocation: two clusters in the same loop never race
        # for a fixed port range (pytest-xdist / parallel CI jobs).
        async def scenario():
            config = SystemConfig.for_system(4, 1)
            topo = complete_topology(4)
            clusters = [
                AsyncioCluster(
                    topo, config, lambda pid, cfg, nb: BrachaBroadcast(pid, cfg, nb)
                )
                for _ in range(2)
            ]
            for cluster in clusters:
                await cluster.start()
            try:
                ports = [
                    cluster.nodes[pid].port for cluster in clusters for pid in topo.nodes
                ]
                assert len(set(ports)) == len(ports)
                for index, cluster in enumerate(clusters):
                    await cluster.broadcast(0, b"cluster-%d" % index, bid=0)
                for index, cluster in enumerate(clusters):
                    assert await cluster.wait_for_all_deliveries(count=1, timeout=20)
                    assert cluster.delivered_payloads(3) == [b"cluster-%d" % index]
            finally:
                for cluster in clusters:
                    await cluster.stop()

        run(scenario())

    def test_two_sequential_broadcasts(self):
        async def scenario():
            config = SystemConfig.for_system(5, 1)
            topo = harary_topology(5, 3)
            cluster = AsyncioCluster(
                topo,
                config,
                lambda pid, cfg, nb: CrossLayerBrachaDolev(
                    pid, cfg, nb, modifications=ModificationSet.latency_and_bandwidth_optimized()
                ),
            )
            await cluster.start()
            try:
                await cluster.broadcast(0, b"first", bid=1)
                await cluster.broadcast(3, b"second", bid=1)
                assert await cluster.wait_for_all_deliveries(count=2, timeout=20)
                for pid in topo.nodes:
                    assert set(cluster.delivered_payloads(pid)) == {b"first", b"second"}
            finally:
                await cluster.stop()

        run(scenario())
