"""Integration tests for the extension substrates (routed Dolev, CPA, Bracha-CPA)."""


from repro.core.config import SystemConfig
from repro.brb.cpa import BrachaCPABroadcast, CPABroadcast, cpa_can_complete
from repro.brb.dolev_routed import RoutedDolevBroadcast
from repro.network.adversary import EquivocatingSource, MuteProcess
from repro.topology.generators import harary_topology, torus_topology

from tests.conftest import run_broadcast


class TestRoutedDolevNetwork:
    def _builder(self, topology):
        def build(pid, config, neighbors):
            return RoutedDolevBroadcast(pid, config, neighbors, topology)

        return build

    def test_all_processes_deliver(self):
        config = SystemConfig.for_system(8, 1)
        topo = harary_topology(8, 4)
        metrics, protocols = run_broadcast(topo, config, self._builder(topo))
        assert all(p.delivered.get((0, 0)) == b"test-payload" for p in protocols.values())

    def test_fewer_messages_than_flooding(self):
        from repro.brb.dolev import DolevBroadcast
        from repro.core.modifications import ModificationSet

        config = SystemConfig.for_system(8, 1)
        topo = harary_topology(8, 4)
        routed, _ = run_broadcast(topo, config, self._builder(topo))
        flooding, _ = run_broadcast(
            topo,
            config,
            lambda pid, cfg, nb: DolevBroadcast(
                pid, cfg, nb, modifications=ModificationSet.none()
            ),
        )
        assert routed.message_count < flooding.message_count

    def test_mute_relays_tolerated(self):
        config = SystemConfig.for_system(10, 2)
        topo = harary_topology(10, 5)
        byzantine = {
            pid: MuteProcess(pid, sorted(topo.neighbors(pid))) for pid in (3, 7)
        }
        metrics, protocols = run_broadcast(
            topo, config, self._builder(topo), byzantine=byzantine
        )
        for pid, protocol in protocols.items():
            if pid in (3, 7):
                continue
            assert protocol.delivered.get((0, 0)) == b"test-payload"


class TestCPANetwork:
    def test_cpa_delivers_on_completable_topology(self):
        topo = torus_topology(4, 4)
        config = SystemConfig.for_system(16, 1)
        assert cpa_can_complete(topo, source=0, t=1)
        metrics, protocols = run_broadcast(
            topo,
            config,
            lambda pid, cfg, nb: CPABroadcast(pid, cfg, nb, t=1),
        )
        assert all(p.delivered.get((0, 0)) == b"test-payload" for p in protocols.values())

    def test_cpa_tolerates_locally_bounded_mute_fault(self):
        topo = torus_topology(4, 4)
        config = SystemConfig.for_system(16, 1)
        # One mute process: every correct process still has at most t=1 faulty
        # neighbor, so certified propagation goes around it.
        byzantine = {5: MuteProcess(5, sorted(topo.neighbors(5)))}
        metrics, protocols = run_broadcast(
            topo,
            config,
            lambda pid, cfg, nb: CPABroadcast(pid, cfg, nb, t=1),
            byzantine=byzantine,
        )
        for pid, protocol in protocols.items():
            if pid == 5:
                continue
            assert protocol.delivered.get((0, 0)) == b"test-payload"

    def test_bracha_cpa_provides_brb(self):
        topo = torus_topology(4, 4)
        config = SystemConfig.for_system(16, 1)
        metrics, _ = run_broadcast(
            topo,
            config,
            lambda pid, cfg, nb: BrachaCPABroadcast(pid, cfg, nb, t=1),
        )
        delivered = metrics.deliveries_for((0, 0))
        assert set(delivered) == set(topo.nodes)
        assert set(delivered.values()) == {b"test-payload"}

    def test_bracha_cpa_agreement_under_equivocation(self):
        topo = torus_topology(4, 4)
        config = SystemConfig.for_system(16, 1)
        byzantine = {
            0: EquivocatingSource(0, sorted(topo.neighbors(0)), family="bracha_dolev")
        }
        metrics, _ = run_broadcast(
            topo,
            config,
            lambda pid, cfg, nb: BrachaCPABroadcast(pid, cfg, nb, t=1),
            byzantine=byzantine,
            source=0,
        )
        values = {
            payload
            for pid, payload in metrics.deliveries_for((0, 0)).items()
            if pid != 0
        }
        assert len(values) <= 1
