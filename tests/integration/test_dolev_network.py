"""Integration tests: Dolev reliable communication on partially connected graphs."""

import pytest

from repro.core.config import SystemConfig
from repro.core.modifications import ModificationSet
from repro.brb.dolev import DolevBroadcast
from repro.network.adversary import MuteProcess, PathForgingRelay
from repro.topology.generators import harary_topology, random_regular_topology, ring_topology

from tests.conftest import run_broadcast


def dolev_builder(mods):
    def build(pid, config, neighbors):
        return DolevBroadcast(pid, config, neighbors, modifications=mods)

    return build


class TestReliableCommunication:
    @pytest.mark.parametrize(
        "mods",
        [ModificationSet.none(), ModificationSet.dolev_optimized()],
        ids=["plain", "md1-5"],
    )
    def test_all_processes_rc_deliver(self, mods):
        config = SystemConfig.for_system(8, 1)
        topo = harary_topology(8, 3)
        metrics, protocols = run_broadcast(topo, config, dolev_builder(mods))
        assert all(p.delivered.get((0, 0)) == b"test-payload" for p in protocols.values())

    def test_optimizations_reduce_message_count(self):
        config = SystemConfig.for_system(8, 1)
        topo = harary_topology(8, 3)
        plain, _ = run_broadcast(topo, config, dolev_builder(ModificationSet.none()))
        optimized, _ = run_broadcast(
            topo, config, dolev_builder(ModificationSet.dolev_optimized())
        )
        assert optimized.message_count < plain.message_count
        assert optimized.total_bytes < plain.total_bytes

    def test_mbd10_superpath_filter_never_increases_traffic(self):
        config = SystemConfig.for_system(8, 1)
        topo = harary_topology(8, 3)
        base = ModificationSet.dolev_optimized()
        with_filter = base.with_enabled("mbd10_ignore_superpaths")
        reference, _ = run_broadcast(topo, config, dolev_builder(base))
        filtered, _ = run_broadcast(topo, config, dolev_builder(with_filter))
        assert filtered.message_count <= reference.message_count

    def test_delivery_on_exactly_2f_plus_1_connected_graph(self):
        # Tight case: f = 1 requires 3-connectivity; the Harary graph H(3, 8)
        # is exactly 3-connected.
        config = SystemConfig.for_system(8, 1)
        topo = harary_topology(8, 3)
        assert topo.vertex_connectivity() == 3
        metrics, protocols = run_broadcast(
            topo, config, dolev_builder(ModificationSet.dolev_optimized())
        )
        assert all((0, 0) in p.delivered for p in protocols.values())

    def test_under_connected_graph_does_not_deliver_everywhere(self):
        # A ring is only 2-connected: with f = 1 some processes cannot gather
        # f+1 = 2 disjoint paths once a relay stays mute.
        config = SystemConfig.for_system(8, 1)
        topo = ring_topology(8)
        byzantine = {4: MuteProcess(4, sorted(topo.neighbors(4)))}
        metrics, protocols = run_broadcast(
            topo, config, dolev_builder(ModificationSet.dolev_optimized()), byzantine=byzantine
        )
        undelivered = [
            pid for pid, p in protocols.items() if pid != 4 and (0, 0) not in getattr(p, "delivered", {})
        ]
        assert undelivered  # at least the node "behind" the mute relay misses out

    def test_mute_relays_tolerated_on_well_connected_graph(self):
        config = SystemConfig.for_system(10, 2)
        topo = random_regular_topology(10, 5, seed=4)
        mute = [3, 7]
        byzantine = {pid: MuteProcess(pid, sorted(topo.neighbors(pid))) for pid in mute}
        metrics, protocols = run_broadcast(
            topo, config, dolev_builder(ModificationSet.dolev_optimized()), byzantine=byzantine
        )
        for pid, protocol in protocols.items():
            if pid in mute:
                continue
            assert protocol.delivered.get((0, 0)) == b"test-payload"

    def test_path_forging_relays_cannot_forge_delivery_of_wrong_payload(self):
        config = SystemConfig.for_system(10, 2)
        topo = random_regular_topology(10, 5, seed=4)
        forgers = [3, 7]
        byzantine = {
            pid: PathForgingRelay(
                DolevBroadcast(
                    pid,
                    config,
                    sorted(topo.neighbors(pid)),
                    modifications=ModificationSet.dolev_optimized(),
                ),
                config,
                seed=pid,
            )
            for pid in forgers
        }
        metrics, protocols = run_broadcast(
            topo, config, dolev_builder(ModificationSet.dolev_optimized()), byzantine=byzantine
        )
        for pid, protocol in protocols.items():
            if pid in forgers:
                continue
            # RC-Integrity: only the genuine payload is ever delivered.
            assert protocol.delivered.get((0, 0)) in (None, b"test-payload")
            assert len(protocol.delivered) <= 1

    def test_repeated_broadcasts_have_distinct_ids(self):
        config = SystemConfig.for_system(8, 1)
        topo = harary_topology(8, 3)
        from repro.network.simulation.network import SimulatedNetwork

        protocols = {
            pid: DolevBroadcast(
                pid,
                config,
                sorted(topo.neighbors(pid)),
                modifications=ModificationSet.dolev_optimized(),
            )
            for pid in topo.nodes
        }
        network = SimulatedNetwork(topo, protocols)
        network.broadcast(0, b"round-1", 1)
        network.broadcast(0, b"round-2", 2)
        network.run()
        assert all(p.delivered[(0, 1)] == b"round-1" for p in protocols.values())
        assert all(p.delivered[(0, 2)] == b"round-2" for p in protocols.values())
