"""Integration tests for the experiment runner, sweeps and metric trends."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.modifications import ModificationSet
from repro.runner.configs import PROTOCOL_CONFIGURATIONS, modification_set_for, protocol_factory
from repro.runner.experiment import ExperimentConfig, run_experiment, run_repeated
from repro.runner.sweep import paired_variations, sweep


class TestRunner:
    def test_basic_run_delivers_everywhere(self):
        config = ExperimentConfig(n=10, k=5, f=2, payload_size=64)
        result = run_experiment(config)
        assert result.all_correct_delivered
        assert result.latency_ms is not None and result.latency_ms > 0
        assert result.total_bytes > 0
        assert result.total_kilobytes == pytest.approx(result.total_bytes / 1000.0)

    def test_deterministic_for_seed(self):
        config = ExperimentConfig(n=10, k=5, f=2, seed=42)
        a = run_experiment(config)
        b = run_experiment(config)
        assert a.total_bytes == b.total_bytes
        assert a.latency_ms == b.latency_ms

    def test_different_seeds_vary_topology(self):
        base = ExperimentConfig(n=12, k=5, f=2)
        results = run_repeated(base, runs=3)
        assert len(results) == 3
        assert len({r.total_bytes for r in results}) >= 2

    def test_byzantine_mute_processes(self):
        config = ExperimentConfig(n=10, k=5, f=2, byzantine=(("mute", 2),))
        result = run_experiment(config)
        assert len(result.correct_processes) == 8
        assert result.all_correct_delivered

    def test_too_many_byzantine_rejected(self):
        config = ExperimentConfig(n=10, k=5, f=2, byzantine=(("mute", 3),))
        with pytest.raises(ConfigurationError):
            run_experiment(config)

    def test_payload_size_respected(self):
        config = ExperimentConfig(n=7, k=4, f=1, payload_size=1024)
        assert len(config.payload()) == 1024
        assert len(ExperimentConfig(n=7, k=4, f=1, payload_size=0).payload()) == 0

    def test_asynchronous_setting(self):
        config = ExperimentConfig(n=8, k=5, f=1, synchronous=False, seed=5)
        result = run_experiment(config)
        assert result.all_correct_delivered

    def test_bracha_family_uses_complete_graph(self):
        config = ExperimentConfig(n=7, k=4, f=2, protocol="bracha")
        result = run_experiment(config)
        assert result.all_correct_delivered

    def test_state_size_metric_exposed(self):
        config = ExperimentConfig(n=8, k=5, f=1)
        result = run_experiment(config)
        assert result.peak_state_size > 0


class TestConfigurations:
    def test_named_configurations_cover_all_single_modifications(self):
        for index in range(2, 13):
            assert f"mbd{index}" in PROTOCOL_CONFIGURATIONS

    def test_modification_set_for_names(self):
        assert modification_set_for("BDopt") == ModificationSet.dolev_optimized()
        assert modification_set_for("mbd7") == ModificationSet.single_mbd(7)
        assert modification_set_for("lat & bdw") == (
            ModificationSet.latency_and_bandwidth_optimized()
        )
        assert modification_set_for("bd") == ModificationSet.none()
        assert modification_set_for("all") == ModificationSet.all_enabled()

    def test_modification_set_for_unknown_name(self):
        with pytest.raises(ValueError):
            modification_set_for("nonsense")

    def test_protocol_factory_unknown_family(self):
        with pytest.raises(ValueError):
            protocol_factory("unknown-family")


class TestTrends:
    """Coarse-grained checks that the headline effects of the paper hold."""

    def test_mbd1_reduces_network_consumption_by_more_than_90_percent(self):
        base = ExperimentConfig(n=12, k=7, f=2, payload_size=1024, seed=2)
        reference = run_experiment(base)
        candidate = run_experiment(
            ExperimentConfig(
                n=12, k=7, f=2, payload_size=1024, seed=2,
                modifications=ModificationSet.bdopt_with_mbd1(),
            )
        )
        reduction = 1 - candidate.total_bytes / reference.total_bytes
        assert reduction > 0.90

    def test_bandwidth_configuration_reduces_bytes_beyond_mbd1(self):
        base = ExperimentConfig(
            n=12, k=7, f=2, payload_size=1024, seed=3,
            modifications=ModificationSet.bdopt_with_mbd1(),
        )
        reference = run_experiment(base)
        candidate = run_experiment(
            ExperimentConfig(
                n=12, k=7, f=2, payload_size=1024, seed=3,
                modifications=ModificationSet.bandwidth_optimized(),
            )
        )
        assert candidate.total_bytes < reference.total_bytes

    def test_mbd11_reduces_messages(self):
        base = ExperimentConfig(
            n=12, k=7, f=2, payload_size=1024, seed=4,
            modifications=ModificationSet.bdopt_with_mbd1(),
        )
        reference = run_experiment(base)
        candidate = run_experiment(
            ExperimentConfig(
                n=12, k=7, f=2, payload_size=1024, seed=4,
                modifications=ModificationSet.single_mbd(11),
            )
        )
        assert candidate.message_count < reference.message_count

    def test_sweep_produces_points_for_every_grid_entry(self):
        base = ExperimentConfig(n=8, k=5, f=1, payload_size=16)
        points = sweep(base, grid=[(8, 5, 1), (10, 5, 2)], runs=2)
        assert [p.key for p in points] == [(8, 5, 1), (10, 5, 2)]
        assert all(p.mean_latency_ms is not None for p in points)
        assert all(p.mean_bytes > 0 for p in points)

    def test_paired_variations_report_byte_savings(self):
        reference = ExperimentConfig(
            n=10, k=5, f=2, payload_size=1024,
            modifications=ModificationSet.bdopt_with_mbd1(),
        )
        variations = paired_variations(
            reference,
            ModificationSet.single_mbd(7),
            grid=[(10, 5, 2)],
            runs=2,
        )
        assert len(variations) == 1
        assert variations[0].bytes_variation_percent < 5.0  # MBD.7 should not cost bytes
