"""Unit tests for execution backends and fault → runtime-action translation.

Everything here runs without opening a socket: the translation layer is
pure data, and the node-level runtime actions (crash, dormancy, drop
windows) are exercised directly against stub protocols.
"""

import asyncio

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.network.asyncio_runtime import AsyncioCluster, AsyncioNode
from repro.scenarios import (
    AsyncioBackend,
    CrashAt,
    DelayedStart,
    LinkDropWindow,
    ScenarioSpec,
    SimulationBackend,
    TopologySpec,
    get_backend,
)
from repro.scenarios.backends import DeferredStart, LinkDropFilter, NodeCrash
from repro.topology.generators import harary_topology


class StubProtocol:
    """Records every protocol call; sends nothing."""

    def __init__(self, process_id=0, neighbors=(1, 2)):
        self.process_id = process_id
        self.neighbors = tuple(neighbors)
        self.calls = []

    def on_start(self):
        self.calls.append(("on_start",))
        return []

    def broadcast(self, payload, bid=0):
        self.calls.append(("broadcast", payload, bid))
        return []

    def on_message(self, sender, message):
        self.calls.append(("on_message", sender, message))
        return []


class TestFaultTranslation:
    def test_crash_at_translates_scaled(self):
        backend = AsyncioBackend(time_scale=1e-3)
        actions = backend.plan_faults((CrashAt(pid=3, time_ms=120.0),))
        assert actions == [NodeCrash(pid=3, at_s=pytest.approx(0.12))]

    def test_crash_at_zero_is_immediate(self):
        backend = AsyncioBackend()
        (action,) = backend.plan_faults((CrashAt(pid=1, time_ms=0.0),))
        assert action.at_s == 0.0

    def test_link_drop_window_translates_both_bounds(self):
        backend = AsyncioBackend(time_scale=1e-3)
        actions = backend.plan_faults(
            (
                LinkDropWindow(u=0, v=1, start_ms=10.0, end_ms=30.0),
                LinkDropWindow(u=2, v=3, start_ms=0.0, end_ms=None),
            )
        )
        assert actions == [
            LinkDropFilter(u=0, v=1, start_s=pytest.approx(0.01), end_s=pytest.approx(0.03)),
            LinkDropFilter(u=2, v=3, start_s=0.0, end_s=None),
        ]

    def test_delayed_start_translates(self):
        backend = AsyncioBackend(time_scale=2e-3)
        (action,) = backend.plan_faults((DelayedStart(pid=4, time_ms=50.0),))
        assert action == DeferredStart(pid=4, wake_s=pytest.approx(0.1))

    def test_negative_delayed_start_rejected_like_the_simulator(self):
        # Backend parity: the simulator rejects negative start times, so
        # the translation layer must too — the same spec may not error
        # on one backend and run on the other.
        with pytest.raises(ConfigurationError):
            AsyncioBackend().plan_faults((DelayedStart(pid=1, time_ms=-5.0),))

    def test_time_scale_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AsyncioBackend(time_scale=0.0)

    def test_shared_bandwidth_rejected(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="harary", n=5, k=3),
            f=1,
            shared_bandwidth_bps=1e9,
            backend="asyncio",
        )
        with pytest.raises(ConfigurationError):
            AsyncioBackend().validate(spec)


class TestArmOnCluster:
    def _cluster(self):
        topology = harary_topology(5, 3)
        protocols = {
            pid: StubProtocol(pid, sorted(topology.neighbors(pid)))
            for pid in topology.nodes
        }
        config = SystemConfig.for_system(5, 1)
        return AsyncioCluster(topology, config, protocols)

    def test_crash_at_zero_applies_before_start(self):
        cluster = self._cluster()
        AsyncioBackend.arm(cluster, [NodeCrash(pid=2, at_s=0.0)])
        assert cluster.nodes[2].crashed
        assert not cluster.nodes[0].crashed

    def test_timed_crash_waits_for_the_epoch(self):
        cluster = self._cluster()
        AsyncioBackend.arm(cluster, [NodeCrash(pid=2, at_s=0.5)])
        assert not cluster.nodes[2].crashed
        assert cluster._pending_actions

    def test_link_drop_installed_on_both_endpoints(self):
        cluster = self._cluster()
        AsyncioBackend.arm(cluster, [LinkDropFilter(u=0, v=1, start_s=0.0, end_s=0.5)])
        assert cluster.nodes[0].link_dropped(1, elapsed_s=0.1)
        assert cluster.nodes[1].link_dropped(0, elapsed_s=0.1)
        assert not cluster.nodes[0].link_dropped(1, elapsed_s=0.6)
        # The window is per-link, not per-node.
        assert not cluster.nodes[0].link_dropped(3, elapsed_s=0.1)

    def test_link_drop_requires_an_edge(self):
        topology = harary_topology(6, 3)
        non_edge = next(
            (u, v)
            for u in topology.nodes
            for v in topology.nodes
            if u < v and not topology.has_edge(u, v)
        )
        protocols = {
            pid: StubProtocol(pid, sorted(topology.neighbors(pid)))
            for pid in topology.nodes
        }
        cluster = AsyncioCluster(topology, SystemConfig.for_system(6, 1), protocols)
        with pytest.raises(ConfigurationError):
            AsyncioBackend.arm(
                cluster, [LinkDropFilter(*non_edge, start_s=0.0, end_s=None)]
            )

    def test_delayed_start_marks_dormant(self):
        cluster = self._cluster()
        AsyncioBackend.arm(cluster, [DeferredStart(pid=3, wake_s=0.2)])
        assert cluster.nodes[3].dormant
        assert cluster._pending_actions


class TestNodeRuntimeActions:
    def test_crashed_node_ignores_broadcast_and_messages(self):
        protocol = StubProtocol()
        node = AsyncioNode(protocol)
        node.crash()

        async def drive():
            await node.broadcast(b"payload", 1)
            await node.handle_message(1, object())

        asyncio.run(drive())
        assert protocol.calls == []

    def test_dormant_node_buffers_and_replays_in_order(self):
        protocol = StubProtocol()
        node = AsyncioNode(protocol)
        node.delay_start()

        async def drive():
            await node.handle_message(1, "m1")
            await node.handle_message(2, "m2")
            await node.broadcast(b"late", 7)
            assert protocol.calls == []
            await node.wake()

        asyncio.run(drive())
        assert protocol.calls == [
            ("on_start",),
            ("on_message", 1, "m1"),
            ("on_message", 2, "m2"),
            ("broadcast", b"late", 7),
        ]

    def test_crash_wins_over_dormancy(self):
        protocol = StubProtocol()
        node = AsyncioNode(protocol)
        node.delay_start()

        async def drive():
            await node.handle_message(1, "m1")
            node.crash()
            await node.wake()

        asyncio.run(drive())
        assert protocol.calls == []

    def test_drop_window_arithmetic(self):
        node = AsyncioNode(StubProtocol())
        node.add_drop_window(1, 0.1, 0.3)
        node.add_drop_window(1, 0.8, None)
        assert not node.link_dropped(1, elapsed_s=0.05)
        assert node.link_dropped(1, elapsed_s=0.1)
        assert node.link_dropped(1, elapsed_s=0.2)
        assert not node.link_dropped(1, elapsed_s=0.3)
        assert node.link_dropped(1, elapsed_s=2.0)
        assert not node.link_dropped(2, elapsed_s=0.2)

    def test_ephemeral_node_has_no_port_before_start(self):
        from repro.core.errors import RuntimeAbort

        node = AsyncioNode(StubProtocol())
        with pytest.raises(RuntimeAbort):
            node.port

    def test_legacy_port_base_layout(self):
        node = AsyncioNode(StubProtocol(process_id=3), port_base=9600)
        assert node.port == 9603


class TestBackendRegistry:
    def test_get_backend_round_trip(self):
        assert isinstance(get_backend("simulation"), SimulationBackend)
        assert isinstance(get_backend("asyncio"), AsyncioBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            get_backend("grpc")

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(backend="grpc")

    def test_backend_is_part_of_the_cache_key(self):
        spec = ScenarioSpec(topology=TopologySpec(kind="harary", n=5, k=3), f=1)
        assert (
            spec.with_backend("asyncio").scenario_hash() != spec.scenario_hash()
        )

    def test_default_backend_hash_is_stable(self):
        # The "simulation" default is suppressed from the canonical form
        # so pre-backend hashes (pinned by the golden files) stay valid.
        spec = ScenarioSpec(topology=TopologySpec(kind="harary", n=5, k=3), f=1)
        assert spec.with_backend("simulation").scenario_hash() == spec.scenario_hash()
        assert (
            spec.with_backend("asyncio").with_backend("simulation").scenario_hash()
            == spec.scenario_hash()
        )
