"""Unit tests for execution backends and fault → runtime-action translation.

Everything here runs without opening a socket: the translation layer is
pure data, and the node-level runtime actions (crash, dormancy, drop
windows) are exercised directly against stub protocols.
"""

import asyncio

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.network.asyncio_runtime import AsyncioCluster, AsyncioNode
from repro.scenarios import (
    AsyncioBackend,
    CrashAt,
    DelayedStart,
    LinkDropWindow,
    ScenarioSpec,
    SimulationBackend,
    TopologySpec,
    get_backend,
)
from repro.scenarios import CrashWhen, DelaySpec, ObservationFilter, TurnByzantineWhen
from repro.scenarios.backends import (
    ConnectionBurst,
    ConnectionLoss,
    DeferredStart,
    LinkDropFilter,
    NodeCrash,
)
from repro.topology.generators import harary_topology


class StubProtocol:
    """Records every protocol call; sends nothing."""

    def __init__(self, process_id=0, neighbors=(1, 2)):
        self.process_id = process_id
        self.neighbors = tuple(neighbors)
        self.calls = []

    def on_start(self):
        self.calls.append(("on_start",))
        return []

    def broadcast(self, payload, bid=0):
        self.calls.append(("broadcast", payload, bid))
        return []

    def on_message(self, sender, message):
        self.calls.append(("on_message", sender, message))
        return []


class TestFaultTranslation:
    def test_crash_at_translates_scaled(self):
        backend = AsyncioBackend(time_scale=1e-3)
        actions = backend.plan_faults((CrashAt(pid=3, time_ms=120.0),))
        assert actions == [NodeCrash(pid=3, at_s=pytest.approx(0.12))]

    def test_crash_at_zero_is_immediate(self):
        backend = AsyncioBackend()
        (action,) = backend.plan_faults((CrashAt(pid=1, time_ms=0.0),))
        assert action.at_s == 0.0

    def test_link_drop_window_translates_both_bounds(self):
        backend = AsyncioBackend(time_scale=1e-3)
        actions = backend.plan_faults(
            (
                LinkDropWindow(u=0, v=1, start_ms=10.0, end_ms=30.0),
                LinkDropWindow(u=2, v=3, start_ms=0.0, end_ms=None),
            )
        )
        assert actions == [
            LinkDropFilter(u=0, v=1, start_s=pytest.approx(0.01), end_s=pytest.approx(0.03)),
            LinkDropFilter(u=2, v=3, start_s=0.0, end_s=None),
        ]

    def test_delayed_start_translates(self):
        backend = AsyncioBackend(time_scale=2e-3)
        (action,) = backend.plan_faults((DelayedStart(pid=4, time_ms=50.0),))
        assert action == DeferredStart(pid=4, wake_s=pytest.approx(0.1))

    def test_negative_delayed_start_rejected_like_the_simulator(self):
        # Backend parity: the simulator rejects negative start times, so
        # the translation layer must too — the same spec may not error
        # on one backend and run on the other.
        with pytest.raises(ConfigurationError):
            AsyncioBackend().plan_faults((DelayedStart(pid=1, time_ms=-5.0),))

    def test_time_scale_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AsyncioBackend(time_scale=0.0)

    def test_shared_bandwidth_rejected(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="harary", n=5, k=3),
            f=1,
            shared_bandwidth_bps=1e9,
            backend="asyncio",
        )
        with pytest.raises(ConfigurationError):
            AsyncioBackend().validate(spec)


class TestLossTranslation:
    """plan_loss is pure: connection filters from the spec's delay regime."""

    def _spec(self, **delay_kwargs):
        return ScenarioSpec(
            name="loss-plan",
            topology=TopologySpec(kind="complete", n=4),
            delay=DelaySpec(kind="fixed", mean_ms=5.0, **delay_kwargs),
            f=0,
            seed=9,
        )

    def test_lossless_spec_plans_nothing(self):
        spec = self._spec()
        backend = AsyncioBackend()
        losses, bursts = backend.plan_loss(spec, spec.topology.build(spec.seed))
        assert losses == [] and bursts == []

    def test_one_loss_filter_per_undirected_link(self):
        spec = self._spec(loss=0.2)
        backend = AsyncioBackend()
        topology = spec.topology.build(spec.seed)
        losses, bursts = backend.plan_loss(spec, topology)
        assert bursts == []
        assert len(losses) == topology.edge_count
        assert all(isinstance(loss, ConnectionLoss) for loss in losses)
        assert all(loss.probability == 0.2 for loss in losses)
        assert all(loss.u < loss.v for loss in losses)

    def test_loss_seeds_derive_from_the_scenario_hash(self):
        spec = self._spec(loss=0.2)
        backend = AsyncioBackend()
        topology = spec.topology.build(spec.seed)
        losses, _ = backend.plan_loss(spec, topology)
        # Deterministic: replanning yields identical seeds...
        again, _ = backend.plan_loss(spec, topology)
        assert losses == again
        # ... distinct per link ...
        assert len({loss.seed for loss in losses}) == len(losses)
        # ... and distinct per scenario.
        other, _ = backend.plan_loss(spec.with_seed(10), topology)
        assert {loss.seed for loss in losses}.isdisjoint(
            {loss.seed for loss in other}
        )

    def test_burst_windows_scale_through_time_scale(self):
        spec = self._spec(burst_period_ms=100.0, burst_len_ms=20.0)
        backend = AsyncioBackend(time_scale=2e-3)
        topology = spec.topology.build(spec.seed)
        losses, bursts = backend.plan_loss(spec, topology)
        assert losses == []
        assert len(bursts) == topology.edge_count
        assert all(isinstance(burst, ConnectionBurst) for burst in bursts)
        assert bursts[0].period_s == pytest.approx(0.2)
        assert bursts[0].burst_s == pytest.approx(0.04)


class TestNodeLossFilters:
    def test_loss_filter_is_seed_deterministic(self):
        decisions = []
        for _ in range(2):
            node = AsyncioNode(StubProtocol())
            node.add_loss_filter(1, 0.5, seed=1234)
            decisions.append([node.link_dropped(1, 0.0) for _ in range(64)])
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_loss_filter_probability_bounds(self):
        node = AsyncioNode(StubProtocol())
        with pytest.raises(ValueError):
            node.add_loss_filter(1, 1.5, seed=0)
        node.add_loss_filter(1, 0.0, seed=0)
        assert not any(node.link_dropped(1, 0.0) for _ in range(16))

    def test_periodic_drop_window_arithmetic(self):
        node = AsyncioNode(StubProtocol())
        node.add_periodic_drop_window(1, period_s=1.0, burst_s=0.25)
        assert node.link_dropped(1, 0.1)
        assert not node.link_dropped(1, 0.5)
        assert node.link_dropped(1, 2.2)  # bursts repeat every period
        with pytest.raises(ValueError):
            node.add_periodic_drop_window(1, period_s=0.0, burst_s=0.1)
        with pytest.raises(ValueError):
            node.add_periodic_drop_window(1, period_s=1.0, burst_s=2.0)

    def test_filters_only_affect_their_peer(self):
        node = AsyncioNode(StubProtocol())
        node.add_loss_filter(1, 1.0, seed=0)
        assert node.link_dropped(1, 0.0)
        assert not node.link_dropped(2, 0.0)


class TestArmAdaptiveOnCluster:
    """Adaptive triggers drive cluster-level actions (no sockets needed)."""

    def _cluster_and_spec(self, adaptive):
        topology = harary_topology(5, 3)
        spec = ScenarioSpec(
            name="adaptive-arm",
            topology=TopologySpec(kind="harary", n=5, k=3),
            f=1,
            seed=3,
            adaptive=adaptive,
        )
        cluster = AsyncioCluster(
            topology,
            SystemConfig.for_system(5, 1),
            {pid: StubProtocol(pid, topology.neighbors(pid)) for pid in topology.nodes},
        )
        return cluster, spec

    def test_trigger_crashes_the_node_after_enough_matches(self):
        from repro.core.events import Observation

        cluster, spec = self._cluster_and_spec(
            (CrashWhen(pid=0, after=ObservationFilter(kind="send"), count=2),)
        )
        state = AsyncioBackend().arm_adaptive(cluster, spec)
        observer = cluster.nodes[0].observer
        observer(Observation(kind="send", time_ms=0.0, pid=0, dest=1))
        assert not cluster.nodes[0].crashed
        observer(Observation(kind="send", time_ms=1.0, pid=0, dest=2))
        assert cluster.nodes[0].crashed
        assert state.crashed == {0}
        # The trigger fires exactly once.
        observer(Observation(kind="send", time_ms=2.0, pid=0, dest=3))
        assert state.crashed == {0}

    def test_trigger_swaps_the_live_protocol(self):
        from repro.core.events import Observation
        from repro.network.adversary import MessageDroppingRelay

        cluster, spec = self._cluster_and_spec(
            (
                TurnByzantineWhen(
                    pid=2,
                    after=ObservationFilter(kind="deliver", pid=2),
                    behaviour="drop",
                ),
            )
        )
        state = AsyncioBackend().arm_adaptive(cluster, spec)
        original = cluster.nodes[2].protocol
        cluster.nodes[2].observer(
            Observation(kind="deliver", time_ms=5.0, pid=2, source=0, bid=0)
        )
        swapped = cluster.nodes[2].protocol
        assert isinstance(swapped, MessageDroppingRelay)
        assert swapped.inner is original  # live state is kept, not rebuilt
        assert state.converted == {2: "drop"}

    def test_observations_from_other_nodes_do_not_fire(self):
        from repro.core.events import Observation

        cluster, spec = self._cluster_and_spec(
            (CrashWhen(pid=0, after=ObservationFilter(kind="send", pid=0)),)
        )
        AsyncioBackend().arm_adaptive(cluster, spec)
        cluster.nodes[1].observer(
            Observation(kind="send", time_ms=0.0, pid=1, dest=0)
        )
        assert not cluster.nodes[0].crashed


class TestArmOnCluster:
    def _cluster(self):
        topology = harary_topology(5, 3)
        protocols = {
            pid: StubProtocol(pid, sorted(topology.neighbors(pid)))
            for pid in topology.nodes
        }
        config = SystemConfig.for_system(5, 1)
        return AsyncioCluster(topology, config, protocols)

    def test_crash_at_zero_applies_before_start(self):
        cluster = self._cluster()
        AsyncioBackend.arm(cluster, [NodeCrash(pid=2, at_s=0.0)])
        assert cluster.nodes[2].crashed
        assert not cluster.nodes[0].crashed

    def test_timed_crash_waits_for_the_epoch(self):
        cluster = self._cluster()
        AsyncioBackend.arm(cluster, [NodeCrash(pid=2, at_s=0.5)])
        assert not cluster.nodes[2].crashed
        assert cluster._pending_actions

    def test_link_drop_installed_on_both_endpoints(self):
        cluster = self._cluster()
        AsyncioBackend.arm(cluster, [LinkDropFilter(u=0, v=1, start_s=0.0, end_s=0.5)])
        assert cluster.nodes[0].link_dropped(1, elapsed_s=0.1)
        assert cluster.nodes[1].link_dropped(0, elapsed_s=0.1)
        assert not cluster.nodes[0].link_dropped(1, elapsed_s=0.6)
        # The window is per-link, not per-node.
        assert not cluster.nodes[0].link_dropped(3, elapsed_s=0.1)

    def test_link_drop_requires_an_edge(self):
        topology = harary_topology(6, 3)
        non_edge = next(
            (u, v)
            for u in topology.nodes
            for v in topology.nodes
            if u < v and not topology.has_edge(u, v)
        )
        protocols = {
            pid: StubProtocol(pid, sorted(topology.neighbors(pid)))
            for pid in topology.nodes
        }
        cluster = AsyncioCluster(topology, SystemConfig.for_system(6, 1), protocols)
        with pytest.raises(ConfigurationError):
            AsyncioBackend.arm(
                cluster, [LinkDropFilter(*non_edge, start_s=0.0, end_s=None)]
            )

    def test_delayed_start_marks_dormant(self):
        cluster = self._cluster()
        AsyncioBackend.arm(cluster, [DeferredStart(pid=3, wake_s=0.2)])
        assert cluster.nodes[3].dormant
        assert cluster._pending_actions


class TestNodeRuntimeActions:
    def test_crashed_node_ignores_broadcast_and_messages(self):
        protocol = StubProtocol()
        node = AsyncioNode(protocol)
        node.crash()

        async def drive():
            await node.broadcast(b"payload", 1)
            await node.handle_message(1, object())

        asyncio.run(drive())
        assert protocol.calls == []

    def test_dormant_node_buffers_and_replays_in_order(self):
        protocol = StubProtocol()
        node = AsyncioNode(protocol)
        node.delay_start()

        async def drive():
            await node.handle_message(1, "m1")
            await node.handle_message(2, "m2")
            await node.broadcast(b"late", 7)
            assert protocol.calls == []
            await node.wake()

        asyncio.run(drive())
        assert protocol.calls == [
            ("on_start",),
            ("on_message", 1, "m1"),
            ("on_message", 2, "m2"),
            ("broadcast", b"late", 7),
        ]

    def test_crash_wins_over_dormancy(self):
        protocol = StubProtocol()
        node = AsyncioNode(protocol)
        node.delay_start()

        async def drive():
            await node.handle_message(1, "m1")
            node.crash()
            await node.wake()

        asyncio.run(drive())
        assert protocol.calls == []

    def test_drop_window_arithmetic(self):
        node = AsyncioNode(StubProtocol())
        node.add_drop_window(1, 0.1, 0.3)
        node.add_drop_window(1, 0.8, None)
        assert not node.link_dropped(1, elapsed_s=0.05)
        assert node.link_dropped(1, elapsed_s=0.1)
        assert node.link_dropped(1, elapsed_s=0.2)
        assert not node.link_dropped(1, elapsed_s=0.3)
        assert node.link_dropped(1, elapsed_s=2.0)
        assert not node.link_dropped(2, elapsed_s=0.2)

    def test_ephemeral_node_has_no_port_before_start(self):
        from repro.core.errors import RuntimeAbort

        node = AsyncioNode(StubProtocol())
        with pytest.raises(RuntimeAbort):
            node.port

    def test_legacy_port_base_layout(self):
        node = AsyncioNode(StubProtocol(process_id=3), port_base=9600)
        assert node.port == 9603


class TestBackendRegistry:
    def test_get_backend_round_trip(self):
        assert isinstance(get_backend("simulation"), SimulationBackend)
        assert isinstance(get_backend("asyncio"), AsyncioBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            get_backend("grpc")

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(backend="grpc")

    def test_backend_is_part_of_the_cache_key(self):
        spec = ScenarioSpec(topology=TopologySpec(kind="harary", n=5, k=3), f=1)
        assert (
            spec.with_backend("asyncio").scenario_hash() != spec.scenario_hash()
        )

    def test_default_backend_hash_is_stable(self):
        # The "simulation" default is suppressed from the canonical form
        # so pre-backend hashes (pinned by the golden files) stay valid.
        spec = ScenarioSpec(topology=TopologySpec(kind="harary", n=5, k=3), f=1)
        assert spec.with_backend("simulation").scenario_hash() == spec.scenario_hash()
        assert (
            spec.with_backend("asyncio").with_backend("simulation").scenario_hash()
            == spec.scenario_hash()
        )
