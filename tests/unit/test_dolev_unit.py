"""Unit tests for the Dolev disseminator and the MD.1–5 optimizations."""


from repro.core.config import SystemConfig
from repro.core.events import RCDeliver
from repro.core.messages import BrachaMessage, DolevMessage, MessageType
from repro.core.modifications import ModificationSet
from repro.brb.dolev import (
    DolevBroadcast,
    DolevDisseminator,
    OptimizedDolevBroadcast,
    content_origin,
)


def content(payload=b"m", source=0, bid=0, creator=None, mtype=MessageType.SEND):
    return BrachaMessage(mtype=mtype, source=source, bid=bid, payload=payload, creator=creator)


class TestContentOrigin:
    def test_send_origin_is_source(self):
        assert content_origin(content(source=4)) == 4

    def test_echo_origin_is_creator(self):
        assert content_origin(content(creator=7, mtype=MessageType.ECHO)) == 7

    def test_raw_bytes_have_no_origin(self):
        assert content_origin(b"raw") is None


class TestPlainDisseminator:
    def test_originate_delivers_locally_and_floods(self):
        d = DolevDisseminator(0, [1, 2, 3], required_paths=2)
        out, delivered = d.originate(content(source=0))
        assert delivered == [content(source=0)]
        assert {s.dest for s in out} == {1, 2, 3}
        assert all(s.message.path == () for s in out)

    def test_originate_twice_is_noop(self):
        d = DolevDisseminator(0, [1], required_paths=1)
        d.originate(content(source=0))
        out, delivered = d.originate(content(source=0))
        assert out == [] and delivered == []

    def test_relay_appends_sender_and_avoids_path_members(self):
        d = DolevDisseminator(5, [1, 2, 3], required_paths=2)
        message = DolevMessage(content=content(source=0), path=(1,))
        out, delivered = d.on_message(2, message)
        assert delivered == []
        # Relays go to neighbors not in path ∪ {sender} ∪ {origin}.
        assert {s.dest for s in out} == {3}
        assert all(s.message.path == (1, 2) for s in out)

    def test_delivery_requires_disjoint_paths(self):
        d = DolevDisseminator(5, [1, 2, 3, 4], required_paths=2)
        c = content(source=0)
        _, delivered = d.on_message(1, DolevMessage(content=c, path=(6,)))
        assert delivered == []
        _, delivered = d.on_message(1, DolevMessage(content=c, path=(7,)))
        assert delivered == []  # same last hop, paths not disjoint
        _, delivered = d.on_message(2, DolevMessage(content=c, path=(8,)))
        assert delivered == [c]
        assert d.has_delivered(c)

    def test_plain_does_not_deliver_directly_from_source(self):
        d = DolevDisseminator(5, [0, 1, 2], required_paths=2, modifications=ModificationSet.none())
        c = content(source=0)
        _, delivered = d.on_message(0, DolevMessage(content=c, path=()))
        assert delivered == []  # only one path so far

    def test_direct_path_plus_one_disjoint_path_delivers(self):
        d = DolevDisseminator(5, [0, 1, 2], required_paths=2, modifications=ModificationSet.none())
        c = content(source=0)
        d.on_message(0, DolevMessage(content=c, path=()))
        _, delivered = d.on_message(1, DolevMessage(content=c, path=(3,)))
        assert delivered == [c]


class TestOptimizedDisseminator:
    def _disseminator(self, **kwargs):
        return DolevDisseminator(
            5,
            [0, 1, 2, 3],
            required_paths=2,
            modifications=ModificationSet.dolev_optimized(),
            **kwargs,
        )

    def test_md1_direct_delivery(self):
        d = self._disseminator()
        c = content(source=0)
        _, delivered = d.on_message(0, DolevMessage(content=c, path=()))
        assert delivered == [c]

    def test_md2_relays_empty_path_after_delivery(self):
        d = self._disseminator()
        c = content(source=0)
        out, _ = d.on_message(0, DolevMessage(content=c, path=()))
        assert out and all(s.message.path == () for s in out)

    def test_md3_skips_neighbors_that_delivered(self):
        d = self._disseminator()
        c = content(source=0)
        # Neighbor 1 announces delivery (empty path); it is not the origin.
        d.on_message(1, DolevMessage(content=c, path=()))
        out, _ = d.on_message(2, DolevMessage(content=c, path=(6,)))
        assert 1 not in {s.dest for s in out}

    def test_md4_ignores_paths_through_delivered_neighbors(self):
        d = self._disseminator()
        c = content(source=0)
        d.on_message(1, DolevMessage(content=c, path=()))  # neighbor 1 delivered
        out, delivered = d.on_message(2, DolevMessage(content=c, path=(1, 6)))
        assert out == [] and delivered == []

    def test_md5_stops_relaying_after_delivery(self):
        d = self._disseminator()
        c = content(source=0)
        d.on_message(0, DolevMessage(content=c, path=()))  # delivered + empty path sent
        out, delivered = d.on_message(2, DolevMessage(content=c, path=(6,)))
        assert out == [] and delivered == []

    def test_forged_path_with_absurd_ids_dropped(self):
        d = self._disseminator()
        c = content(source=0)
        out, delivered = d.on_message(1, DolevMessage(content=c, path=(2 ** 30,)))
        assert out == [] and delivered == []

    def test_extra_exclusions_hook(self):
        d = DolevDisseminator(
            5,
            [0, 1, 2, 3],
            required_paths=2,
            modifications=ModificationSet.dolev_optimized(),
            extra_exclusions=lambda c: {3},
        )
        out, _ = d.on_message(0, DolevMessage(content=content(source=0), path=()))
        assert 3 not in {s.dest for s in out}

    def test_neighbors_that_delivered_accessor(self):
        d = self._disseminator()
        c = content(source=0)
        d.on_message(1, DolevMessage(content=c, path=()))
        assert d.neighbors_that_delivered(c) == frozenset({1})
        assert d.neighbors_that_delivered(content(payload=b"other")) == frozenset()


class TestDolevBroadcastProtocol:
    def test_broadcast_delivers_locally(self):
        config = SystemConfig.for_system(5, 1)
        protocol = DolevBroadcast(0, config, [1, 2, 3])
        commands = protocol.broadcast(b"payload", bid=2)
        deliveries = [c for c in commands if isinstance(c, RCDeliver)]
        assert len(deliveries) == 1
        assert deliveries[0].payload == b"payload"
        assert protocol.delivered[(0, 2)] == b"payload"

    def test_optimized_subclass_enables_md(self):
        config = SystemConfig.for_system(5, 1)
        protocol = OptimizedDolevBroadcast(0, config, [1, 2])
        assert protocol.modifications.md1_deliver_from_source
        assert protocol.modifications.md5_stop_after_delivery

    def test_non_dolev_message_ignored(self):
        config = SystemConfig.for_system(5, 1)
        protocol = DolevBroadcast(1, config, [0, 2])
        assert protocol.on_message(0, b"garbage") == []
        assert protocol.on_message(0, DolevMessage(content=b"raw", path=())) == []

    def test_duplicate_delivery_suppressed(self):
        config = SystemConfig.for_system(5, 0)
        protocol = DolevBroadcast(
            1, config, [0, 2], modifications=ModificationSet.dolev_optimized()
        )
        c = content(source=0)
        first = protocol.on_message(0, DolevMessage(content=c, path=()))
        assert any(isinstance(cmd, RCDeliver) for cmd in first)
        second = protocol.on_message(2, DolevMessage(content=c, path=(0,)))
        assert not any(isinstance(cmd, RCDeliver) for cmd in second)
