"""Unit tests for multi-broadcast workloads.

Covers the declarative layer (generators, validation, normalization and
hashing of :class:`WorkloadSpec`), the engine layer (per-broadcast
outcomes, throughput aggregates, the Byzantine-wins crash precedence in
``freeze_result``) and the backend plumbing (simulation scheduling via
``broadcast_at``, the asyncio backend's pure workload planner, wire
serialization).  The multi-broadcast simulation runs here are small and
fast on purpose: they are the tier-1 workload smoke tests.
"""

import pytest

from repro.core.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.scenarios import (
    AsyncioBackend,
    BroadcastSpec,
    CrashAt,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    expand_grid,
    loads_result,
    loads_spec,
    dumps_result,
    dumps_spec,
    run_scenario,
    verdict_of,
)
from repro.scenarios.engine import freeze_result


def harary_spec(**kwargs):
    defaults = dict(
        name="workload-test",
        topology=TopologySpec(kind="harary", n=6, k=3),
        f=1,
        seed=5,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestWorkloadSpec:
    def test_repeated_generator(self):
        workload = WorkloadSpec.repeated(3, 4, interval_ms=25.0, start_ms=10.0)
        assert [b.source for b in workload.broadcasts] == [3, 3, 3, 3]
        assert [b.bid for b in workload.broadcasts] == [0, 1, 2, 3]
        assert [b.start_time_ms for b in workload.broadcasts] == [10.0, 35.0, 60.0, 85.0]
        assert [b.payload_seed for b in workload.broadcasts] == [0, 1, 2, 3]

    def test_round_robin_generator(self):
        workload = WorkloadSpec.round_robin([1, 4], 5, interval_ms=20.0)
        assert [b.source for b in workload.broadcasts] == [1, 4, 1, 4, 1]
        # Per-source identifiers increase monotonically.
        assert [b.bid for b in workload.broadcasts] == [0, 0, 1, 1, 2]
        assert [b.start_time_ms for b in workload.broadcasts] == [
            0.0,
            20.0,
            40.0,
            60.0,
            80.0,
        ]

    def test_invalid_workloads_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(broadcasts=())
        with pytest.raises(ConfigurationError):
            WorkloadSpec(broadcasts=(BroadcastSpec(0, 0), BroadcastSpec(0, 0)))
        with pytest.raises(ConfigurationError):
            BroadcastSpec(start_time_ms=-1.0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec.repeated(0, 0, interval_ms=10.0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec.repeated(0, 3, interval_ms=-1.0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec.round_robin([], 3)
        with pytest.raises(ConfigurationError):
            WorkloadSpec.round_robin([1, 1], 3)

    def test_schedule_is_sorted_by_start_source_bid(self):
        workload = WorkloadSpec(
            broadcasts=(
                BroadcastSpec(source=2, bid=0, start_time_ms=50.0),
                BroadcastSpec(source=0, bid=1, start_time_ms=0.0),
                BroadcastSpec(source=0, bid=0, start_time_ms=50.0),
            )
        )
        assert [b.key for b in workload.schedule()] == [(0, 1), (0, 0), (2, 0)]

    def test_trivial_workload_normalizes_to_legacy_spec(self):
        legacy = harary_spec(source=2, bid=7)
        workload_form = harary_spec(workload=WorkloadSpec.single(2, 7))
        assert workload_form.workload is None
        assert workload_form.source == 2 and workload_form.bid == 7
        assert workload_form == legacy
        assert workload_form.scenario_hash() == legacy.scenario_hash()

    def test_non_trivial_workload_changes_the_hash(self):
        legacy = harary_spec()
        repeated = harary_spec(workload=WorkloadSpec.repeated(0, 3, interval_ms=40.0))
        delayed = harary_spec(
            workload=WorkloadSpec(broadcasts=(BroadcastSpec(start_time_ms=10.0),))
        )
        seeded = harary_spec(
            workload=WorkloadSpec(broadcasts=(BroadcastSpec(payload_seed=9),))
        )
        hashes = {
            legacy.scenario_hash(),
            repeated.scenario_hash(),
            delayed.scenario_hash(),
            seeded.scenario_hash(),
        }
        assert len(hashes) == 4

    def test_workload_is_a_grid_axis(self):
        base = harary_spec()
        cells = expand_grid(
            base,
            {
                "workload": [None, WorkloadSpec.repeated(0, 3, interval_ms=40.0)],
                "seed": [5, 6],
            },
        )
        assert len(cells) == 4
        assert len({cell.scenario_hash() for cell in cells}) == 4

    def test_payload_for_is_deterministic_and_sized(self):
        spec = harary_spec(payload_size=33)
        classic = BroadcastSpec(payload_seed=0)
        seeded = BroadcastSpec(bid=1, payload_seed=4)
        assert spec.payload_for(classic) == spec.payload()
        assert len(spec.payload_for(seeded)) == 33
        assert spec.payload_for(seeded) == spec.payload_for(seeded)
        assert spec.payload_for(seeded) != spec.payload_for(classic)

    def test_broadcasts_defaults_to_source_bid(self):
        spec = harary_spec(source=3, bid=2)
        assert spec.broadcasts() == (BroadcastSpec(source=3, bid=2),)

    def test_workload_source_must_be_a_process(self):
        spec = harary_spec(
            workload=WorkloadSpec(broadcasts=(BroadcastSpec(source=77, bid=1),))
        )
        with pytest.raises(ConfigurationError):
            run_scenario(spec)


class TestCausalChain:
    def test_chain_links_name_their_successor(self):
        workload = WorkloadSpec.causal_chain((0, 2, 4), interval_ms=40.0)
        assert [b.source for b in workload.broadcasts] == [0, 2, 4]
        assert [b.successor for b in workload.broadcasts] == [2, 4, None]
        assert [b.start_time_ms for b in workload.broadcasts] == [0.0, 40.0, 80.0]
        assert [b.payload_seed for b in workload.broadcasts] == [0, 1, 2]

    def test_repeat_visits_take_the_next_per_source_bid(self):
        workload = WorkloadSpec.causal_chain((0, 2, 0, 2), interval_ms=10.0)
        assert [b.key for b in workload.broadcasts] == [
            (0, 0),
            (2, 0),
            (0, 1),
            (2, 1),
        ]

    def test_invalid_chains_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec.causal_chain((0,))
        with pytest.raises(ConfigurationError):
            WorkloadSpec.causal_chain((0, 1), interval_ms=-1.0)
        with pytest.raises(ConfigurationError):
            BroadcastSpec(successor=-1)

    def test_single_broadcast_with_successor_is_not_trivial(self):
        # A successor makes the broadcast causally meaningful, so the
        # spec must keep its workload instead of normalizing to legacy.
        workload = WorkloadSpec(broadcasts=(BroadcastSpec(successor=3),))
        spec = harary_spec(workload=workload)
        assert spec.workload is not None

    def test_successor_default_keeps_legacy_hashes(self):
        # Hash suppression: a workload written before the successor
        # field existed hashes identically to one using the default.
        plain = harary_spec(workload=WorkloadSpec.repeated(0, 3, interval_ms=40.0))
        assert all(b.successor is None for b in plain.workload.broadcasts)
        chained = harary_spec(
            workload=WorkloadSpec.causal_chain((0, 1, 2), interval_ms=40.0)
        )
        assert plain.scenario_hash() != chained.scenario_hash()

    def test_chain_is_a_grid_axis_and_round_trips_the_wire(self):
        spec = harary_spec(
            workload=WorkloadSpec.causal_chain((0, 1), interval_ms=30.0)
        )
        assert loads_spec(dumps_spec(spec)) == spec
        cells = expand_grid(
            harary_spec(),
            {"workload": [None, spec.workload], "protocol": ["cross_layer", "rco_cross_layer"]},
        )
        assert len({cell.scenario_hash() for cell in cells}) == 4


class TestMultiBroadcastEngine:
    def test_repeated_workload_delivers_every_broadcast(self):
        """Tier-1 workload smoke test (simulation backend, fast)."""
        spec = harary_spec(workload=WorkloadSpec.repeated(0, 4, interval_ms=40.0))
        result = run_scenario(spec)
        assert result.broadcast_count == 4
        assert result.delivered_broadcast_count == 4
        assert result.all_correct_delivered
        assert result.agreement_holds and result.validity_holds
        assert [outcome.key for outcome in result.outcomes] == [
            (0, 0),
            (0, 1),
            (0, 2),
            (0, 3),
        ]
        assert all(outcome.latency_ms is not None for outcome in result.outcomes)
        assert result.throughput_dps is not None and result.throughput_dps > 0
        distribution = result.latency_distribution()
        assert distribution["count"] == 4
        assert distribution["min_ms"] <= distribution["mean_ms"] <= distribution["max_ms"]
        assert "workload" in result.summary()

    def test_round_robin_sources_each_deliver(self):
        spec = harary_spec(workload=WorkloadSpec.round_robin([0, 1, 2], 6, 25.0))
        result = run_scenario(spec)
        assert result.delivered_broadcast_count == 6
        assert {outcome.source for outcome in result.outcomes} == {0, 1, 2}
        # Distinct payload seeds produce distinct payloads per broadcast.
        assert len({outcome.payload_hex for outcome in result.outcomes}) == 6

    def test_single_broadcast_workload_equals_legacy_result(self):
        legacy = harary_spec()
        workload_form = harary_spec(workload=WorkloadSpec.single())
        assert run_scenario(workload_form) == run_scenario(legacy)

    def test_delayed_broadcast_starts_at_its_time(self):
        spec = harary_spec(
            workload=WorkloadSpec(
                broadcasts=(BroadcastSpec(source=0, bid=0, start_time_ms=120.0),)
            )
        )
        result = run_scenario(spec)
        (outcome,) = result.outcomes
        assert outcome.all_correct_delivered
        # Deliveries happen after the broadcast started; latency is
        # measured from the start time, not from scenario time 0.
        assert all(entry[0] >= 120.0 for entry in outcome.delivery_trace)
        assert outcome.latency_ms == pytest.approx(
            max(entry[0] for entry in outcome.delivery_trace) - 120.0
        )

    def test_source_crashed_before_late_broadcast_never_sends(self):
        spec = harary_spec(
            faults=(CrashAt(pid=0, time_ms=10.0),),
            workload=WorkloadSpec(
                broadcasts=(
                    BroadcastSpec(source=0, bid=0, start_time_ms=100.0),
                    BroadcastSpec(source=1, bid=0, start_time_ms=0.0),
                )
            ),
        )
        result = run_scenario(spec)
        by_key = {outcome.key: outcome for outcome in result.outcomes}
        assert by_key[(0, 0)].delivered_processes == ()
        assert not by_key[(0, 0)].all_correct_delivered
        assert by_key[(1, 0)].all_correct_delivered
        assert result.delivered_broadcast_count == 1

    def test_verdict_carries_per_broadcast_projections(self):
        spec = harary_spec(workload=WorkloadSpec.repeated(0, 3, interval_ms=30.0))
        verdict = verdict_of(run_scenario(spec))
        assert len(verdict.broadcasts) == 3
        assert all(b.all_correct_delivered for b in verdict.broadcasts)
        assert [(b.source, b.bid) for b in verdict.broadcasts] == [
            (0, 0),
            (0, 1),
            (0, 2),
        ]

    def test_workload_spec_and_result_round_trip_the_wire(self):
        spec = harary_spec(workload=WorkloadSpec.round_robin([0, 1], 4, 20.0))
        assert loads_spec(dumps_spec(spec)) == spec
        result = run_scenario(spec)
        restored = loads_result(dumps_result(result))
        assert restored == result
        assert restored.outcomes == result.outcomes


class TestFreezeResultPrecedence:
    def _freeze(self, spec, byzantine):
        topology = spec.topology.build(spec.seed)
        return freeze_result(
            spec,
            topology=topology,
            byzantine=byzantine,
            metrics=MetricsCollector().snapshot(),
            dropped_messages=0,
        )

    def test_byzantine_wins_over_crash(self):
        """Regression: a CrashAt on a Byzantine pid must not list it twice."""
        spec = harary_spec(faults=(CrashAt(pid=2, time_ms=50.0),))
        result = self._freeze(spec, byzantine={2: "mute"})
        assert result.byzantine == ((2, "mute"),)
        assert result.crashed == ()
        assert 2 not in result.correct_processes

    def test_disjoint_byzantine_and_crashed_both_reported(self):
        spec = harary_spec(faults=(CrashAt(pid=3, time_ms=0.0),))
        result = self._freeze(spec, byzantine={1: "forge"})
        assert result.byzantine == ((1, "forge"),)
        assert result.crashed == (3,)
        assert set(result.correct_processes).isdisjoint({1, 3})

    def test_all_processes_faulty_has_undefined_latency(self):
        """With no correct process the latency is None, not 0.0."""
        spec = ScenarioSpec(
            name="all-faulty",
            topology=TopologySpec(kind="complete", n=3),
            f=0,
            faults=tuple(CrashAt(pid=pid, time_ms=0.0) for pid in range(3)),
        )
        result = run_scenario(spec)
        assert result.correct_processes == ()
        assert result.latency_ms is None
        (outcome,) = result.outcomes
        assert outcome.latency_ms is None


class TestStartTimeFactor:
    def test_latency_is_measured_in_the_timestamp_domain(self):
        """Asyncio timestamps are wall-clock ms while start times are
        simulated ms; the factor maps the start into the wall domain
        (here time_scale=1e-4, so 100 simulated ms = 10 wall ms)."""
        from repro.scenarios.engine import freeze_broadcast_outcome

        collector = MetricsCollector()
        collector.record_delivery(15.0, 1, 0, 0, b"x")
        collector.record_delivery(12.0, 2, 0, 0, b"x")
        outcome = freeze_broadcast_outcome(
            BroadcastSpec(source=0, bid=0, start_time_ms=100.0),
            payload=b"x",
            metrics=collector.snapshot(),
            byzantine={},
            correct=(1, 2),
            start_time_factor=1e-4 * 1000.0,
        )
        assert outcome.latency_ms == pytest.approx(5.0)
        # The nominal start time stays in simulated ms for reporting.
        assert outcome.start_time_ms == 100.0


class TestAsyncioWorkloadPlanner:
    def test_plan_workload_scales_start_times(self):
        backend = AsyncioBackend(time_scale=2e-3)
        spec = harary_spec(workload=WorkloadSpec.repeated(0, 3, interval_ms=50.0))
        plan = backend.plan_workload(spec)
        assert [s.at_s for s in plan] == [0.0, 0.1, 0.2]
        assert [s.broadcast.bid for s in plan] == [0, 1, 2]
        assert [s.payload for s in plan] == [
            spec.payload_for(b) for b in spec.broadcasts()
        ]

    def test_plan_workload_defaults_to_the_single_broadcast(self):
        backend = AsyncioBackend()
        spec = harary_spec(source=2, bid=5)
        (scheduled,) = backend.plan_workload(spec)
        assert scheduled.broadcast.key == (2, 5)
        assert scheduled.at_s == 0.0
        assert scheduled.payload == spec.payload()
