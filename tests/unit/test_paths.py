"""Unit tests for the path store and the incremental disjoint-path verifier."""

import pytest

from repro.paths.disjoint import DisjointPathVerifier
from repro.paths.oracle import graph_disjoint_paths, max_disjoint_selection
from repro.paths.pathset import PathStore, bits_to_nodes, path_to_bits
from repro.topology.generators import harary_topology


class TestBitCodec:
    def test_round_trip(self):
        assert bits_to_nodes(path_to_bits([5, 1, 9])) == (1, 5, 9)

    def test_empty(self):
        assert path_to_bits([]) == 0
        assert bits_to_nodes(0) == ()


class TestPathStore:
    def test_add_and_contains(self):
        store = PathStore()
        assert store.add([1, 2])
        assert [1, 2] in store
        assert len(store) == 1

    def test_duplicate_rejected(self):
        store = PathStore()
        store.add([1, 2])
        assert not store.add([2, 1])
        assert store.rejected_superpaths == 1

    def test_superpath_rejected(self):
        store = PathStore()
        store.add([1, 2])
        assert not store.add([1, 2, 3])
        assert len(store) == 1

    def test_subpath_evicts_superpaths(self):
        store = PathStore()
        store.add([1, 2, 3])
        store.add([1, 4])
        assert store.add([1])
        # {1} dominates both previously stored paths, which are evicted.
        assert len(store) == 1
        assert store.node_sets() == ((1,),)

    def test_is_dominated(self):
        store = PathStore()
        store.add([3])
        assert store.is_dominated([3, 4])
        assert not store.is_dominated([4])

    def test_clear(self):
        store = PathStore()
        store.add([1])
        store.clear()
        assert len(store) == 0

    def test_offered_counter(self):
        store = PathStore()
        store.add([1])
        store.add([1, 2])
        assert store.offered == 2


class TestDisjointPathVerifier:
    def test_requires_positive_requirement(self):
        with pytest.raises(ValueError):
            DisjointPathVerifier(0)

    def test_single_path_satisfies_requirement_one(self):
        verifier = DisjointPathVerifier(1)
        result = verifier.add_path([4, 5])
        assert result.newly_satisfied
        assert verifier.satisfied

    def test_direct_path_counts(self):
        verifier = DisjointPathVerifier(2)
        verifier.add_path([1, 2])
        result = verifier.add_path([])
        assert result.newly_satisfied
        assert verifier.has_direct_path

    def test_two_disjoint_paths(self):
        verifier = DisjointPathVerifier(2)
        assert not verifier.add_path([1, 2]).newly_satisfied
        assert verifier.add_path([3, 4]).newly_satisfied

    def test_overlapping_paths_do_not_satisfy(self):
        verifier = DisjointPathVerifier(2)
        verifier.add_path([1, 2])
        result = verifier.add_path([2, 3])
        assert not result.newly_satisfied
        assert verifier.best_count == 1

    def test_three_way_combination(self):
        verifier = DisjointPathVerifier(3)
        verifier.add_path([1])
        verifier.add_path([2])
        assert verifier.add_path([3]).newly_satisfied

    def test_combination_found_out_of_order(self):
        # {1,2}, {2,3}, {1,3} pairwise intersect; adding {4} then {5} helps.
        verifier = DisjointPathVerifier(3)
        for path in ([1, 2], [2, 3], [1, 3], [4]):
            verifier.add_path(path)
        assert verifier.best_count == 2
        # One of the pairwise-intersecting paths plus {4} plus {5} = 3 paths.
        assert verifier.add_path([5]).newly_satisfied
        assert verifier.best_count >= 3
        assert verifier.satisfied

    def test_duplicate_and_superset_paths_ignored(self):
        verifier = DisjointPathVerifier(2)
        verifier.add_path([1, 2])
        assert not verifier.add_path([1, 2]).stored
        assert not verifier.add_path([1, 2, 3]).stored

    def test_adds_after_satisfaction_are_noops(self):
        verifier = DisjointPathVerifier(1)
        verifier.add_path([1])
        result = verifier.add_path([2])
        assert not result.stored
        assert not result.newly_satisfied

    def test_discard_paths_keeps_satisfaction(self):
        verifier = DisjointPathVerifier(2)
        verifier.add_path([1])
        verifier.add_path([2])
        verifier.discard_paths()
        assert verifier.satisfied
        assert verifier.stored_combination_count == 0

    def test_matches_oracle_on_tricky_set(self):
        paths = [[1, 2], [3, 4], [1, 3], [2, 4], [5]]
        verifier = DisjointPathVerifier(3)
        for path in paths:
            verifier.add_path(path)
        assert verifier.best_count == max_disjoint_selection(paths)

    def test_state_size_estimate_grows(self):
        verifier = DisjointPathVerifier(4)
        baseline = verifier.state_size_estimate()
        verifier.add_path([1, 2])
        verifier.add_path([3])
        assert verifier.state_size_estimate() > baseline

    def test_combination_cap_keeps_soundness(self):
        verifier = DisjointPathVerifier(3, max_combinations=2)
        verifier.add_path([1, 2])
        verifier.add_path([2, 3])
        verifier.add_path([4])
        # The cap may delay detection but never produces false positives.
        assert verifier.best_count <= max_disjoint_selection([[1, 2], [2, 3], [4]])


class TestOracles:
    def test_max_disjoint_selection_simple(self):
        assert max_disjoint_selection([[1], [2], [3]]) == 3
        assert max_disjoint_selection([[1, 2], [2, 3]]) == 1
        assert max_disjoint_selection([]) == 0

    def test_max_disjoint_selection_with_direct(self):
        assert max_disjoint_selection([[], [1], [1, 2]]) == 2

    def test_graph_disjoint_paths_matches_connectivity(self):
        topo = harary_topology(8, 4)
        paths = graph_disjoint_paths(topo, 0, 4)
        assert len(paths) >= 4
        # Paths are internally vertex-disjoint.
        interiors = [set(p[1:-1]) for p in paths]
        for i, a in enumerate(interiors):
            for b in interiors[i + 1 :]:
                assert not (a & b)
