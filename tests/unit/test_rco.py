"""White-box unit tests of the causal-order broadcast wrapper.

These tests drive :class:`CausalOrderBroadcast` directly against a stub
inner protocol (no network), checking the envelope codec, the vector
clock stamping rule and the pending-set delivery rule, then run the
wrapper end to end through the scenario engine.
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.events import BRBDeliver, SendTo
from repro.core.protocol import BroadcastProtocol
from repro.rco import (
    RCO_PROTOCOLS,
    CausalOrderBroadcast,
    decode_rco_envelope,
    encode_rco_envelope,
)
from repro.runner.configs import protocol_factory, protocol_family
from repro.scenarios import ScenarioSpec, TopologySpec, WorkloadSpec, run_scenario
from repro.scenarios.oracle import check_result

N = 4


class StubInner(BroadcastProtocol):
    """Inner BRB stand-in: broadcasts are recorded, deliveries injected.

    ``on_message`` treats the message itself as a ``(source, bid,
    payload)`` delivery instruction, so a test can hand the wrapper any
    BRB-delivery sequence it likes.
    """

    def __init__(self, process_id, config, neighbors):
        super().__init__(process_id, config, neighbors)
        self.broadcasts = []

    def broadcast(self, payload, bid=0):
        self.broadcasts.append((bid, payload))
        return [SendTo(dest=self.neighbors[0], message=(bid, payload))]

    def on_message(self, sender, message):
        source, bid, payload = message
        if self.has_delivered(source, bid):
            return []
        return [self._record_delivery(source, bid, payload)]


def make_rco(pid=0, n=N, f=1, neighbors=None):
    config = SystemConfig.for_system(n, f)
    neighbors = list(neighbors or (p for p in range(n) if p != pid))
    inner = StubInner(pid, config, neighbors)
    return CausalOrderBroadcast(pid, config, neighbors, inner=inner)


def inject(rco, source, bid, clock, payload=b"m"):
    """Feed one enveloped BRB delivery through the wrapper."""
    envelope = encode_rco_envelope(clock, payload)
    return rco.on_message(1, (source, bid, envelope))


def delivered_keys(commands):
    return [(c.source, c.bid) for c in commands if isinstance(c, BRBDeliver)]


class TestEnvelopeCodec:
    def test_roundtrip(self):
        clock = (0, 3, 1, 2)
        decoded = decode_rco_envelope(encode_rco_envelope(clock, b"payload"), N)
        assert decoded == (clock, b"payload")

    def test_empty_payload_roundtrips(self):
        assert decode_rco_envelope(encode_rco_envelope((0,) * N, b""), N) == (
            (0,) * N,
            b"",
        )

    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"RCO",
            b"XXX1\x00\x00\x00\x04" + b"\x00" * 16,
            b"RCO1\x00\x00\x00\x04" + b"\x00" * 15,  # truncated clock
            encode_rco_envelope((0, 0, 0), b"m"),  # clock length != n
        ],
    )
    def test_malformed_is_rejected(self, data):
        assert decode_rco_envelope(data, N) is None


class TestClockStamping:
    def test_own_entry_counts_sends_not_deliveries(self):
        rco = make_rco(pid=0)
        rco.broadcast(b"first", bid=0)
        rco.broadcast(b"second", bid=1)
        stamps = [
            decode_rco_envelope(payload, N)[0]
            for _, payload in rco.inner.broadcasts
        ]
        # Neither broadcast has been BRB-delivered back yet, so the own
        # entry must advance by send count alone.
        assert stamps == [(0, 0, 0, 0), (1, 0, 0, 0)]

    def test_other_entries_count_rco_deliveries(self):
        rco = make_rco(pid=0)
        inject(rco, source=2, bid=0, clock=(0, 0, 0, 0))
        rco.broadcast(b"reply", bid=0)
        (_, payload) = rco.inner.broadcasts[-1]
        stamp, _ = decode_rco_envelope(payload, N)
        assert stamp == (0, 0, 1, 0)


class TestPendingSetRule:
    def test_out_of_order_delivery_is_held_back(self):
        rco = make_rco(pid=0)
        # Second message from source 2 arrives first: W[2]=1 > V[2]=0.
        held = inject(rco, 2, 1, (0, 0, 1, 0), b"late")
        assert delivered_keys(held) == []
        assert (2, 1) in rco.pending
        # Its predecessor unblocks both, in causal order.
        released = inject(rco, 2, 0, (0, 0, 0, 0), b"early")
        assert delivered_keys(released) == [(2, 0), (2, 1)]
        assert rco.pending == {}
        assert rco.delivered[(2, 0)] == b"early"
        assert rco.delivered[(2, 1)] == b"late"

    def test_cross_source_dependency_is_respected(self):
        rco = make_rco(pid=0)
        # Source 3's message depends on having delivered source 1's.
        held = inject(rco, 3, 0, (0, 1, 0, 0))
        assert delivered_keys(held) == []
        released = inject(rco, 1, 0, (0, 0, 0, 0))
        assert delivered_keys(released) == [(1, 0), (3, 0)]

    def test_independent_messages_release_in_key_order(self):
        rco = make_rco(pid=0)
        assert delivered_keys(inject(rco, 3, 0, (0, 0, 0, 0))) == [(3, 0)]
        rco2 = make_rco(pid=0)
        # Both deliverable at once: drain ties break on (source, bid).
        rco2.pending[(3, 0)] = ((0, 0, 0, 0), b"m")
        rco2.pending[(1, 0)] = ((0, 0, 0, 0), b"m")
        assert delivered_keys(rco2._drain()) == [(1, 0), (3, 0)]

    def test_malformed_envelope_is_discarded(self):
        rco = make_rco(pid=0)
        commands = rco.on_message(1, (2, 0, b"not an envelope"))
        assert delivered_keys(commands) == []
        assert rco.pending == {}
        assert rco.delivered == {}

    def test_delivered_payload_is_the_application_payload(self):
        rco = make_rco(pid=0)
        (command,) = inject(rco, 1, 0, (0, 0, 0, 0), b"app bytes")
        assert isinstance(command, BRBDeliver)
        assert command.payload == b"app bytes"

    def test_non_deliver_commands_pass_through(self):
        rco = make_rco(pid=0)
        commands = rco.broadcast(b"m", bid=0)
        assert any(isinstance(c, SendTo) for c in commands)


class TestConstruction:
    def test_sparse_process_ids_are_rejected(self):
        config = SystemConfig.from_processes((0, 2, 4, 6), f=1)
        inner = StubInner(0, config, [2, 4, 6])
        with pytest.raises(ConfigurationError, match="dense process ids"):
            CausalOrderBroadcast(0, config, [2, 4, 6], inner=inner)

    def test_inner_process_id_must_match(self):
        config = SystemConfig.for_system(N, 1)
        inner = StubInner(1, config, [0, 2, 3])
        with pytest.raises(ConfigurationError, match="belongs to process"):
            CausalOrderBroadcast(0, config, [1, 2, 3], inner=inner)


class TestRunnerWiring:
    def test_rco_names_resolve_to_inner_family(self):
        for name, inner in RCO_PROTOCOLS.items():
            assert protocol_family(name) == protocol_family(inner)

    def test_factory_builds_the_wrapper(self):
        build = protocol_factory("rco_cross_layer", None)
        config = SystemConfig.for_system(N, 1)
        protocol = build(0, config, [1, 2, 3])
        assert isinstance(protocol, CausalOrderBroadcast)
        assert protocol.inner.process_id == 0

    def test_scenario_run_is_oracle_green(self):
        spec = ScenarioSpec(
            name="rco-unit",
            topology=TopologySpec(kind="harary", n=6, k=3),
            protocol="rco_cross_layer",
            f=1,
            seed=3,
            workload=WorkloadSpec.causal_chain((0, 2, 4), interval_ms=200.0),
        )
        result = run_scenario(spec)
        assert check_result(result) == []
        assert all(outcome.all_correct_delivered for outcome in result.outcomes)
