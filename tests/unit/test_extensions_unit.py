"""Unit tests for the extension substrates: routed Dolev and CPA."""

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import TopologyError
from repro.core.events import RCDeliver, sends
from repro.core.messages import BrachaMessage, DolevMessage, MessageType
from repro.brb.cpa import CPABroadcast, cpa_can_complete
from repro.brb.dolev_routed import RoutedDolevBroadcast, RoutedMessage, disjoint_routes
from repro.topology.generators import (
    complete_topology,
    harary_topology,
    line_topology,
    ring_topology,
    torus_topology,
)


class TestDisjointRoutes:
    def test_routes_are_vertex_disjoint(self):
        topo = harary_topology(8, 4)
        routes = disjoint_routes(topo, 0, 4, 4)
        assert len(routes) == 4
        interiors = [set(route[:-1]) for route in routes]
        for i, a in enumerate(interiors):
            for b in interiors[i + 1 :]:
                assert not (a & b)
        assert all(route[-1] == 4 for route in routes)

    def test_direct_edge_is_a_route(self):
        topo = complete_topology(4)
        routes = disjoint_routes(topo, 0, 1, 3)
        assert (1,) in routes

    def test_insufficient_connectivity_rejected(self):
        topo = ring_topology(6)
        with pytest.raises(TopologyError):
            disjoint_routes(topo, 0, 3, 3)


class TestRoutedDolevUnit:
    def _protocol(self, pid, topo, f=1):
        config = SystemConfig.for_system(topo.n, f)
        return RoutedDolevBroadcast(pid, config, sorted(topo.neighbors(pid)), topo)

    def test_neighbors_must_match_topology(self):
        topo = harary_topology(8, 4)
        config = SystemConfig.for_system(8, 1)
        with pytest.raises(TopologyError):
            RoutedDolevBroadcast(0, config, [1, 2], topo)

    def test_broadcast_sends_routes_to_every_destination(self):
        topo = harary_topology(8, 4)
        protocol = self._protocol(0, topo)
        commands = sends(protocol.broadcast(b"m"))
        # 2f+1 = 3 routes per destination, 7 destinations.
        assert len(commands) == 21
        assert all(isinstance(c.message, RoutedMessage) for c in commands)
        assert all(c.dest in protocol.neighbors for c in commands)

    def test_intermediate_hop_forwards_along_route(self):
        topo = harary_topology(8, 4)
        protocol = self._protocol(1, topo)
        content = BrachaMessage(MessageType.SEND, source=0, bid=0, payload=b"m")
        message = RoutedMessage(content=content, route=(1, 2, 3))
        out = sends(protocol.on_message(0, message))
        assert len(out) == 1
        assert out[0].dest == 2
        assert out[0].message.route == (2, 3)
        assert out[0].message.traversed == (1,)

    def test_misrouted_message_ignored(self):
        topo = harary_topology(8, 4)
        protocol = self._protocol(1, topo)
        content = BrachaMessage(MessageType.SEND, source=0, bid=0, payload=b"m")
        assert protocol.on_message(0, RoutedMessage(content=content, route=(5, 2))) == []
        assert protocol.on_message(0, "garbage") == []

    def test_route_that_leaves_topology_is_dropped(self):
        topo = ring_topology(6)
        config = SystemConfig.for_system(6, 0)
        protocol = RoutedDolevBroadcast(1, config, sorted(topo.neighbors(1)), topo)
        content = BrachaMessage(MessageType.SEND, source=0, bid=0, payload=b"m")
        # Next hop 4 is not a neighbor of 1 on the ring.
        message = RoutedMessage(content=content, route=(1, 4))
        assert protocol.on_message(0, message) == []

    def test_destination_delivers_after_f_plus_one_disjoint_routes(self):
        topo = harary_topology(8, 4)
        protocol = self._protocol(4, topo, f=1)
        content = BrachaMessage(MessageType.SEND, source=0, bid=0, payload=b"m")
        first = protocol.on_message(2, RoutedMessage(content=content, route=(4,), traversed=(2,)))
        assert not any(isinstance(c, RCDeliver) for c in first)
        second = protocol.on_message(3, RoutedMessage(content=content, route=(4,), traversed=(3,)))
        assert any(isinstance(c, RCDeliver) for c in second)
        assert protocol.delivered[(0, 0)] == b"m"

    def test_routed_message_wire_size(self):
        content = BrachaMessage(MessageType.SEND, source=0, bid=0, payload=b"abcd")
        message = RoutedMessage(content=content, route=(1, 2), traversed=(3,))
        expected = content.wire_size() + (2 + 8) + (2 + 4)
        assert message.wire_size() == expected


class TestCPAUnit:
    def test_can_complete_on_torus_with_t1(self):
        topo = torus_topology(4, 4)
        assert cpa_can_complete(topo, source=0, t=1)

    def test_cannot_complete_on_line(self):
        topo = line_topology(6)
        assert not cpa_can_complete(topo, source=0, t=1)

    def test_negative_t_rejected(self):
        config = SystemConfig.for_system(5, 1)
        with pytest.raises(ValueError):
            CPABroadcast(0, config, [1, 2], t=-1)

    def test_direct_reception_from_source_delivers(self):
        config = SystemConfig.for_system(6, 1)
        topo = torus_topology(3, 3)
        protocol = CPABroadcast(1, SystemConfig.for_system(9, 1), sorted(topo.neighbors(1)), t=1)
        content = BrachaMessage(MessageType.SEND, source=0, bid=0, payload=b"m")
        commands = protocol.on_message(0, DolevMessage(content=content, path=()))
        assert any(isinstance(c, RCDeliver) for c in commands)
        # The content is relayed exactly once to every neighbor.
        assert {c.dest for c in sends(commands)} == set(protocol.neighbors)

    def test_indirect_reception_needs_t_plus_one_witnesses(self):
        topo = torus_topology(3, 3)
        protocol = CPABroadcast(4, SystemConfig.for_system(9, 1), sorted(topo.neighbors(4)), t=1)
        content = BrachaMessage(MessageType.SEND, source=0, bid=0, payload=b"m")
        message = DolevMessage(content=content, path=())
        neighbors = sorted(protocol.neighbors)
        first = protocol.on_message(neighbors[0], message)
        assert first == []
        second = protocol.on_message(neighbors[1], message)
        assert any(isinstance(c, RCDeliver) for c in second)

    def test_conflicting_contents_need_separate_certification(self):
        topo = torus_topology(3, 3)
        protocol = CPABroadcast(4, SystemConfig.for_system(9, 1), sorted(topo.neighbors(4)), t=1)
        good = DolevMessage(content=BrachaMessage(MessageType.SEND, 0, 0, b"good"), path=())
        evil = DolevMessage(content=BrachaMessage(MessageType.SEND, 0, 0, b"evil"), path=())
        neighbors = sorted(protocol.neighbors)
        assert protocol.on_message(neighbors[0], good) == []
        assert protocol.on_message(neighbors[1], evil) == []
        # One witness per value: neither is certified yet.
        assert (0, 0) not in protocol.delivered
