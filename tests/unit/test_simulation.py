"""Unit tests for the discrete-event scheduler, delay models and network."""

import random

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError, RuntimeAbort
from repro.core.events import SendTo
from repro.core.messages import BrachaMessage, MessageType
from repro.brb.bracha import BrachaBroadcast
from repro.network.simulation.delays import (
    DROP,
    AsynchronousDelay,
    BandwidthAwareDelay,
    BurstyLossWindow,
    FixedDelay,
    LossyDelay,
    UniformDelay,
)
from repro.metrics.collector import MetricsCollector
from repro.network.simulation.network import SimulatedNetwork
from repro.network.simulation.scheduler import EventScheduler
from repro.topology.generators import complete_topology, line_topology


class TestScheduler:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(30, lambda: order.append("c"))
        scheduler.schedule(10, lambda: order.append("a"))
        scheduler.schedule(20, lambda: order.append("b"))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(5, lambda: order.append(1))
        scheduler.schedule(5, lambda: order.append(2))
        scheduler.run()
        assert order == [1, 2]

    def test_clock_advances_to_last_event(self):
        scheduler = EventScheduler()
        scheduler.schedule(42.5, lambda: None)
        assert scheduler.run() == pytest.approx(42.5)
        assert scheduler.now == pytest.approx(42.5)

    def test_nested_scheduling(self):
        scheduler = EventScheduler()
        seen = []

        def outer():
            seen.append(scheduler.now)
            scheduler.schedule(5, lambda: seen.append(scheduler.now))

        scheduler.schedule(10, outer)
        scheduler.run()
        assert seen == [10, 15]

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule(-1, lambda: None)

    def test_nan_delay_rejected(self):
        # ``NaN < 0`` is False, so a NaN used to slip past the negativity
        # check and corrupt the heap ordering.
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule(float("nan"), lambda: None)
        assert scheduler.pending == 0

    def test_nan_schedule_at_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule_at(float("nan"), lambda: None)
        assert scheduler.pending == 0

    def test_heap_ordering_survives_rejected_nan(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(20, lambda: order.append("b"))
        with pytest.raises(ValueError):
            scheduler.schedule(float("nan"), lambda: order.append("nan"))
        scheduler.schedule(10, lambda: order.append("a"))
        scheduler.run()
        assert order == ["a", "b"]

    def test_schedule_at_in_the_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(10, lambda: None)
        scheduler.run()
        with pytest.raises(ValueError):
            scheduler.schedule_at(5, lambda: None)

    def test_max_time_stops_early(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(10, lambda: seen.append("early"))
        scheduler.schedule(100, lambda: seen.append("late"))
        scheduler.run(max_time=50)
        assert seen == ["early"]
        assert scheduler.pending == 1

    def test_max_events_aborts(self):
        scheduler = EventScheduler()

        def rearm():
            scheduler.schedule(1, rearm)

        scheduler.schedule(1, rearm)
        with pytest.raises(RuntimeAbort):
            scheduler.run(max_events=100)

    def test_max_events_budget_is_per_call(self):
        # The budget covers the events of one ``run`` call; a resumed run
        # gets a fresh budget rather than inheriting the lifetime count.
        scheduler = EventScheduler()
        seen = []
        for index, letter in enumerate("abcdef"):
            scheduler.schedule(index + 1, seen.append, letter)

        with pytest.raises(RuntimeAbort):
            scheduler.run(max_events=2)
        # Events a and b ran; c was consumed by the abort (counted and
        # removed, callback skipped) like any event that raises mid-run.
        assert seen == ["a", "b"]
        assert scheduler.executed_events == 3
        assert scheduler.pending == 3

        # Three events remain: a lifetime-cumulative budget of 5 would
        # abort again (3 already counted + 3 more), a per-call budget
        # lets the resumed run drain them.
        assert scheduler.run(max_events=5) == pytest.approx(6)
        assert seen == ["a", "b", "d", "e", "f"]
        assert scheduler.executed_events == 6
        assert scheduler.pending == 0


class TestDelayModels:
    def test_fixed_delay(self):
        model = FixedDelay(50.0)
        rng = random.Random(0)
        assert model.sample(rng, 0, 1, 100) == 50.0
        assert "50" in model.describe()

    def test_asynchronous_delay_positive_and_varied(self):
        model = AsynchronousDelay(50.0, 50.0)
        rng = random.Random(1)
        samples = [model.sample(rng, 0, 1, 100) for _ in range(200)]
        assert all(s >= model.min_ms for s in samples)
        assert max(samples) > min(samples)

    def test_uniform_delay_bounds(self):
        model = UniformDelay(10.0, 20.0)
        rng = random.Random(2)
        samples = [model.sample(rng, 0, 1, 100) for _ in range(100)]
        assert all(10.0 <= s <= 20.0 for s in samples)

    def test_bandwidth_aware_delay_adds_serialization(self):
        model = BandwidthAwareDelay(base=FixedDelay(10.0), rate_bps=8_000)
        rng = random.Random(3)
        # 1000 bytes at 8 kb/s = 1 second = 1000 ms on top of the base 10 ms.
        assert model.sample(rng, 0, 1, 1000) == pytest.approx(1010.0)


class TestSimulatedNetwork:
    def _bracha_network(self, n=4, f=1, **kwargs):
        config = SystemConfig.for_system(n, f)
        topo = complete_topology(n)
        protocols = {
            pid: BrachaBroadcast(pid, config, sorted(topo.neighbors(pid)))
            for pid in topo.nodes
        }
        return SimulatedNetwork(topo, protocols, **kwargs), config

    def test_missing_protocol_rejected(self):
        config = SystemConfig.for_system(4, 1)
        topo = complete_topology(4)
        protocols = {0: BrachaBroadcast(0, config, [1, 2, 3])}
        with pytest.raises(ConfigurationError):
            SimulatedNetwork(topo, protocols)

    def test_unknown_process_rejected(self):
        config = SystemConfig.for_system(4, 1)
        topo = complete_topology(4)
        protocols = {
            pid: BrachaBroadcast(pid, config, sorted(topo.neighbors(pid)))
            for pid in topo.nodes
        }
        protocols[9] = protocols[0]
        with pytest.raises(ConfigurationError):
            SimulatedNetwork(topo, protocols)

    def test_broadcast_delivers_to_everyone(self):
        network, _ = self._bracha_network()
        network.broadcast(0, b"value", 0)
        metrics = network.run()
        assert len(metrics.deliveries_for((0, 0))) == 4

    def test_collector_subclass_sees_every_send(self):
        # The hot path special-cases the stock MetricsCollector; a
        # subclass overriding ``record_send`` must still be called for
        # every message put on a link.
        class CountingCollector(MetricsCollector):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def record_send(self, time, sender, dest, message):
                self.calls += 1
                return super().record_send(time, sender, dest, message)

        collector = CountingCollector()
        network, _ = self._bracha_network(collector=collector)
        network.broadcast(0, b"value", 0)
        metrics = network.run()
        assert metrics.message_count > 0
        assert collector.calls == metrics.message_count

    def test_latency_is_three_link_delays_for_bracha(self):
        network, _ = self._bracha_network(delay_model=FixedDelay(50.0))
        network.broadcast(0, b"value", 0)
        metrics = network.run()
        latency = metrics.delivery_latency((0, 0), [0, 1, 2, 3])
        assert latency == pytest.approx(150.0)

    def test_send_to_non_neighbor_raises(self):
        config = SystemConfig.for_system(3, 0)
        topo = line_topology(3)

        class Rogue:
            process_id = 0
            neighbors = (1,)

            def on_start(self):
                return []

            def broadcast(self, payload, bid=0):
                message = BrachaMessage(MessageType.SEND, 0, bid, payload)
                return [SendTo(dest=2, message=message)]

            def on_message(self, sender, message):
                return []

        protocols = {
            0: Rogue(),
            1: BrachaBroadcast(1, SystemConfig.for_system(3, 0), [0, 2]),
            2: BrachaBroadcast(2, SystemConfig.for_system(3, 0), [0, 1]),
        }
        network = SimulatedNetwork(topo, protocols)
        with pytest.raises(RuntimeAbort):
            network.broadcast(0, b"x", 0)

    def test_crashed_process_stops_participating(self):
        network, _ = self._bracha_network(n=4, f=1)
        network.crash(3)
        network.broadcast(0, b"value", 0)
        metrics = network.run()
        delivered = metrics.deliveries_for((0, 0))
        assert 3 not in delivered
        assert set(delivered) == {0, 1, 2}

    def test_deterministic_for_seed(self):
        results = []
        for _ in range(2):
            network, _ = self._bracha_network(
                delay_model=AsynchronousDelay(20.0, 10.0), seed=7
            )
            network.broadcast(0, b"value", 0)
            metrics = network.run()
            results.append((metrics.total_bytes, metrics.end_time))
        assert results[0] == results[1]

    def test_on_deliver_callback(self):
        observed = []
        config = SystemConfig.for_system(4, 1)
        topo = complete_topology(4)
        protocols = {
            pid: BrachaBroadcast(pid, config, sorted(topo.neighbors(pid)))
            for pid in topo.nodes
        }
        network = SimulatedNetwork(
            topo, protocols, on_deliver=lambda pid, event, t: observed.append((pid, event.payload))
        )
        network.broadcast(1, b"cb", 0)
        network.run()
        assert len(observed) == 4
        assert all(payload == b"cb" for _, payload in observed)

    def test_shared_bandwidth_increases_latency(self):
        fast, _ = self._bracha_network(delay_model=FixedDelay(10.0))
        fast.broadcast(0, b"x" * 512, 0)
        fast_latency = fast.run().delivery_latency((0, 0), [0, 1, 2, 3])

        slow, _ = self._bracha_network(
            delay_model=FixedDelay(10.0), shared_bandwidth_bps=100_000
        )
        slow.broadcast(0, b"x" * 512, 0)
        slow_latency = slow.run().delivery_latency((0, 0), [0, 1, 2, 3])
        assert slow_latency > fast_latency

    def test_invalid_shared_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            self._bracha_network(shared_bandwidth_bps=0)


class TestLossyDelayModels:
    def test_drop_sentinel_is_a_pickle_stable_singleton(self):
        import pickle

        assert pickle.loads(pickle.dumps(DROP)) is DROP
        assert repr(DROP) == "DROP"

    def test_lossy_delay_drops_deterministically_per_seed(self):
        model = LossyDelay(base=FixedDelay(10.0), loss_probability=0.5)
        outcomes = [
            [
                model.sample_event(random.Random(7), 0, 1, 100, 0.0)
                for _ in range(1)
            ][0]
            for _ in range(4)
        ]
        # A fresh RNG with the same seed always makes the same decision.
        assert len({o is DROP for o in outcomes}) == 1
        stream = random.Random(7)
        draws = [model.sample_event(stream, 0, 1, 100, 0.0) for _ in range(64)]
        assert any(d is DROP for d in draws)
        assert any(d == 10.0 for d in draws)

    def test_lossless_models_never_drop(self):
        rng = random.Random(1)
        for model in (FixedDelay(5.0), UniformDelay(1.0, 2.0)):
            assert not model.lossy
            for _ in range(16):
                assert model.sample_event(rng, 0, 1, 10, 0.0) is not DROP

    def test_bursty_window_drops_only_inside_bursts(self):
        model = BurstyLossWindow(
            base=FixedDelay(5.0), period_ms=100.0, burst_ms=20.0
        )
        rng = random.Random(0)
        assert model.sample_event(rng, 0, 1, 10, 10.0) is DROP
        assert model.sample_event(rng, 0, 1, 10, 50.0) == 5.0
        assert model.sample_event(rng, 0, 1, 10, 110.0) is DROP  # next period
        assert model.in_burst(210.0) and not model.in_burst(250.0)

    def test_invalid_loss_parameters_rejected(self):
        with pytest.raises(ValueError):
            LossyDelay(base=FixedDelay(), loss_probability=1.5)
        with pytest.raises(ValueError):
            BurstyLossWindow(base=FixedDelay(), period_ms=0.0)
        with pytest.raises(ValueError):
            BurstyLossWindow(base=FixedDelay(), period_ms=10.0, burst_ms=20.0)

    def test_network_counts_lossy_drops(self):
        config = SystemConfig.for_system(4, 1)
        topo = complete_topology(4)
        protocols = {
            pid: BrachaBroadcast(pid, config, sorted(topo.neighbors(pid)))
            for pid in topo.nodes
        }
        network = SimulatedNetwork(
            topo,
            protocols,
            delay_model=LossyDelay(base=FixedDelay(10.0), loss_probability=0.3),
            seed=5,
        )
        network.broadcast(0, b"value", 0)
        network.run()
        assert network.dropped_messages > 0


class TestNetworkObserver:
    def _network(self, **kwargs):
        config = SystemConfig.for_system(4, 1)
        topo = complete_topology(4)
        protocols = {
            pid: BrachaBroadcast(pid, config, sorted(topo.neighbors(pid)))
            for pid in topo.nodes
        }
        return SimulatedNetwork(topo, protocols, **kwargs)

    def test_observer_sees_sends_and_deliveries(self):
        network = self._network()
        seen = []
        network.observer = seen.append
        network.broadcast(0, b"value", 0)
        network.run()
        kinds = {obs.kind for obs in seen}
        assert kinds == {"send", "deliver"}
        sends = [obs for obs in seen if obs.kind == "send"]
        assert all(obs.mtype in ("SEND", "ECHO", "READY") for obs in sends)
        delivers = [obs for obs in seen if obs.kind == "deliver"]
        assert {obs.pid for obs in delivers} == {0, 1, 2, 3}
        assert all(obs.source == 0 and obs.bid == 0 for obs in delivers)

    def test_no_observations_constructed_without_observer(self, monkeypatch):
        # The hot path only builds Observation objects when an observer
        # is attached; an unobserved run must construct none at all.
        import repro.network.simulation.network as netmod

        constructed = []

        class CountingObservation(netmod.Observation):
            def __init__(self, *args, **kwargs):
                constructed.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(netmod, "Observation", CountingObservation)

        unobserved = self._network()
        unobserved.broadcast(0, b"value", 0)
        unobserved.run()
        assert constructed == []

        # Sanity-check the instrument: the same workload with an
        # observer attached does construct observations.
        observed = self._network()
        seen = []
        observed.observer = seen.append
        observed.broadcast(0, b"value", 0)
        observed.run()
        assert len(constructed) == len(seen) > 0

    def test_observer_crash_suppresses_the_rest_of_the_batch(self):
        # Crash process 0 the moment its first send is observed: the
        # remaining sends of the same command batch must not happen.
        network = self._network()

        def crash_source(observation):
            if observation.kind == "send" and observation.pid == 0:
                network.crash(0)

        network.observer = crash_source
        network.broadcast(0, b"value", 0)
        metrics = network.run()
        assert metrics.messages_by_process.get(0, 0) == 1

    def test_replace_protocol_swaps_future_handling(self):
        network = self._network()
        from repro.network.adversary import MuteProcess

        network.replace_protocol(2, MuteProcess(2, (0, 1, 3)))
        network.broadcast(0, b"value", 0)
        metrics = network.run()
        assert metrics.messages_by_process.get(2, 0) == 0
        assert 2 not in metrics.deliveries_for((0, 0))

    def test_replace_unknown_process_rejected(self):
        network = self._network()
        with pytest.raises(ConfigurationError):
            network.replace_protocol(9, object())
