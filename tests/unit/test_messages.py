"""Unit tests for the message wire formats and Table 3 size accounting."""


from repro.core.messages import (
    BrachaMessage,
    CrossLayerMessage,
    DolevMessage,
    MessageType,
)
from repro.core.sizes import PAPER_FIELD_SIZES, FieldSizes


class TestFieldSizes:
    def test_paper_defaults_match_table_3(self):
        sizes = PAPER_FIELD_SIZES
        assert sizes.mtype == 1
        assert sizes.source == 4
        assert sizes.bid == 4
        assert sizes.local_payload_id == 4
        assert sizes.payload_size == 4
        assert sizes.creator_id == 4
        assert sizes.embedded_creator_id == 4
        assert sizes.path_length == 2
        assert sizes.path_entry == 4

    def test_path_cost(self):
        assert PAPER_FIELD_SIZES.path_cost(0) == 2
        assert PAPER_FIELD_SIZES.path_cost(3) == 2 + 12

    def test_custom_sizes(self):
        sizes = FieldSizes(path_entry=2, path_length=1)
        assert sizes.path_cost(4) == 1 + 8


class TestBrachaMessage:
    def test_wire_size_without_creator(self):
        message = BrachaMessage(MessageType.SEND, source=1, bid=2, payload=b"abcd")
        # mtype + source + bid + payloadSize + payload
        assert message.wire_size() == 1 + 4 + 4 + 4 + 4

    def test_wire_size_with_creator(self):
        message = BrachaMessage(
            MessageType.ECHO, source=1, bid=2, payload=b"abcd", creator=3
        )
        assert message.wire_size() == 1 + 4 + 4 + 4 + 4 + 4

    def test_broadcast_id(self):
        message = BrachaMessage(MessageType.READY, source=7, bid=9, payload=b"")
        assert message.broadcast_id == (7, 9)

    def test_with_creator_returns_new_message(self):
        message = BrachaMessage(MessageType.ECHO, source=1, bid=0, payload=b"x")
        tagged = message.with_creator(5)
        assert tagged.creator == 5
        assert message.creator is None

    def test_messages_are_hashable_and_comparable(self):
        a = BrachaMessage(MessageType.ECHO, 1, 0, b"x", creator=2)
        b = BrachaMessage(MessageType.ECHO, 1, 0, b"x", creator=2)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestDolevMessage:
    def test_wire_size_with_raw_content(self):
        message = DolevMessage(content=b"12345678", path=(1, 2))
        expected = (1 + 4 + 4 + 4 + 8) + (2 + 2 * 4)
        assert message.wire_size() == expected

    def test_wire_size_with_bracha_content(self):
        inner = BrachaMessage(MessageType.ECHO, 1, 0, b"abc", creator=4)
        message = DolevMessage(content=inner, path=(5,))
        assert message.wire_size() == inner.wire_size() + 2 + 4

    def test_extended_appends_relay(self):
        message = DolevMessage(content=b"x", path=(1,))
        assert message.extended(2).path == (1, 2)

    def test_with_empty_path(self):
        message = DolevMessage(content=b"x", path=(1, 2, 3))
        assert message.with_empty_path().path == ()
        empty = DolevMessage(content=b"x", path=())
        assert empty.with_empty_path() is empty


class TestCrossLayerMessage:
    def test_minimal_message_costs_only_mtype(self):
        message = CrossLayerMessage(mtype=MessageType.READY)
        assert message.wire_size() == 1

    def test_full_message_size(self):
        message = CrossLayerMessage(
            mtype=MessageType.READY_ECHO,
            source=1,
            bid=2,
            creator=3,
            embedded_creator=4,
            payload=b"abcdefgh",
            local_payload_id=9,
            path=(5, 6),
        )
        expected = 1 + 4 + 4 + 4 + 4 + (4 + 8) + 4 + (2 + 8)
        assert message.wire_size() == expected

    def test_empty_path_still_costs_length_prefix(self):
        with_path = CrossLayerMessage(mtype=MessageType.ECHO, path=())
        without_path = CrossLayerMessage(mtype=MessageType.ECHO, path=None)
        assert with_path.wire_size() == without_path.wire_size() + 2

    def test_payload_omission_saves_payload_bytes(self):
        payload = bytes(1024)
        with_payload = CrossLayerMessage(
            mtype=MessageType.ECHO, source=0, bid=0, payload=payload, path=()
        )
        without_payload = CrossLayerMessage(
            mtype=MessageType.ECHO, source=0, bid=0, local_payload_id=1, path=()
        )
        assert with_payload.wire_size() - without_payload.wire_size() == 1024 + 4 - 4

    def test_effective_path(self):
        assert CrossLayerMessage(mtype=MessageType.ECHO).effective_path == ()
        assert CrossLayerMessage(mtype=MessageType.ECHO, path=(1,)).effective_path == (1,)

    def test_has_payload(self):
        assert CrossLayerMessage(mtype=MessageType.SEND, payload=b"").has_payload
        assert not CrossLayerMessage(mtype=MessageType.SEND).has_payload

    def test_with_fields(self):
        message = CrossLayerMessage(mtype=MessageType.ECHO, source=1)
        updated = message.with_fields(source=None, creator=5)
        assert updated.source is None
        assert updated.creator == 5
        assert message.source == 1

    def test_merged_types_flagged(self):
        assert MessageType.ECHO_ECHO.is_merged
        assert MessageType.READY_ECHO.is_merged
        assert not MessageType.ECHO.is_merged
        assert not MessageType.SEND.is_merged
