"""Unit tests for the metrics collector and the report helpers."""

import pytest

from repro.core.messages import BrachaMessage, CrossLayerMessage, DolevMessage, MessageType
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import (
    boxplot_stats,
    mean,
    median,
    relative_variation_percent,
    summarize_variations,
    variation_range,
)


class TestCollector:
    def test_record_send_accumulates_bytes_and_counts(self):
        collector = MetricsCollector()
        message = BrachaMessage(MessageType.SEND, 0, 0, b"abcd")
        size = collector.record_send(10.0, 0, 1, message)
        assert size == message.wire_size()
        collector.record_send(20.0, 0, 2, message)
        assert collector.message_count == 2
        assert collector.total_bytes == 2 * message.wire_size()
        assert collector.messages_by_process[0] == 2

    def test_type_breakdown_for_bracha_and_dolev(self):
        collector = MetricsCollector()
        echo = BrachaMessage(MessageType.ECHO, 0, 0, b"x", creator=1)
        collector.record_send(0, 0, 1, echo)
        collector.record_send(0, 0, 1, DolevMessage(content=echo, path=(2,)))
        collector.record_send(0, 0, 1, DolevMessage(content=b"raw", path=()))
        collector.record_send(0, 0, 1, CrossLayerMessage(mtype=MessageType.READY_ECHO))
        snapshot = collector.snapshot()
        assert snapshot.messages_by_type["ECHO"] == 1
        assert snapshot.messages_by_type["DOLEV[ECHO]"] == 1
        assert snapshot.messages_by_type["DOLEV[RAW]"] == 1
        assert snapshot.messages_by_type["READY_ECHO"] == 1

    def test_first_delivery_wins(self):
        collector = MetricsCollector()
        collector.record_delivery(5.0, 1, 0, 0, b"a")
        collector.record_delivery(9.0, 1, 0, 0, b"b")
        snapshot = collector.snapshot()
        assert snapshot.delivery_times[(1, (0, 0))] == 5.0
        assert snapshot.delivered_payloads[(1, (0, 0))] == b"a"

    def test_delivery_latency_requires_all_processes(self):
        collector = MetricsCollector()
        collector.record_delivery(5.0, 0, 0, 0, b"a")
        collector.record_delivery(12.0, 1, 0, 0, b"a")
        snapshot = collector.snapshot()
        assert snapshot.delivery_latency((0, 0), [0, 1]) == 12.0
        assert snapshot.delivery_latency((0, 0), [0, 1, 2]) is None

    def test_delivery_latency_of_no_processes_is_undefined(self):
        """Regression: an empty process set (everyone Byzantine or
        crashed) must report None — an undefined measurement — rather
        than a fabricated 0.0 ms latency."""
        collector = MetricsCollector()
        collector.record_delivery(5.0, 0, 0, 0, b"a")
        snapshot = collector.snapshot()
        assert snapshot.delivery_latency((0, 0), []) is None
        assert snapshot.delivery_latency((0, 0), [], start_time=3.0) is None

    def test_deliveries_for_and_delivering_processes(self):
        collector = MetricsCollector()
        collector.record_delivery(1.0, 3, 0, 7, b"v")
        collector.record_delivery(2.0, 1, 0, 7, b"v")
        collector.record_delivery(2.0, 1, 0, 8, b"w")
        snapshot = collector.snapshot()
        assert snapshot.deliveries_for((0, 7)) == {3: b"v", 1: b"v"}
        assert snapshot.delivering_processes((0, 7)) == (1, 3)

    def test_state_sizes(self):
        collector = MetricsCollector()
        collector.record_state_size(0, 10)
        collector.record_state_size(1, 25)
        snapshot = collector.snapshot()
        assert snapshot.peak_state_size == 25
        assert snapshot.total_state_size == 35

    def test_end_time_tracks_latest_event(self):
        collector = MetricsCollector()
        collector.record_send(10.0, 0, 1, BrachaMessage(MessageType.SEND, 0, 0, b""))
        collector.record_time(99.0)
        assert collector.snapshot().end_time == 99.0

    def test_message_without_wire_size_counts_zero_bytes(self):
        collector = MetricsCollector()
        collector.record_send(0.0, 0, 1, object())
        assert collector.total_bytes == 0
        assert collector.message_count == 1


class TestReport:
    def test_relative_variation_percent(self):
        assert relative_variation_percent(50.0, 100.0) == -50.0
        assert relative_variation_percent(150.0, 100.0) == 50.0

    def test_relative_variation_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            relative_variation_percent(1.0, 0.0)

    def test_relative_variation_propagates_missing_measurements(self):
        # ``mean_or_none`` yields None when every run in a slice failed;
        # the variation is then unknown, not a TypeError.
        assert relative_variation_percent(None, 100.0) is None
        assert relative_variation_percent(50.0, None) is None
        assert relative_variation_percent(None, None) is None

    def test_boxplot_stats(self):
        stats = boxplot_stats(list(range(101)))
        assert stats.median == 50.0
        assert stats.q1 == 25.0
        assert stats.q3 == 75.0
        assert stats.low == pytest.approx(2.5)
        assert stats.high == pytest.approx(97.5)
        assert stats.count == 101
        assert stats.format().startswith("[")

    def test_boxplot_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            boxplot_stats([])

    def test_variation_range(self):
        assert variation_range([-5.0, 2.0, -7.0]) == (-7.0, 2.0)
        with pytest.raises(ValueError):
            variation_range([])

    def test_summarize_variations(self):
        measured = {"a": [50.0, 80.0], "b": [10.0]}
        reference = {"a": [100.0, 100.0], "b": [10.0]}
        summary = summarize_variations(measured, reference)
        assert summary["a"] == (-50.0, -20.0)
        assert summary["b"] == (0.0, 0.0)

    def test_summarize_variations_skips_missing_references(self):
        assert summarize_variations({"a": [1.0]}, {}) == {}

    def test_mean_and_median(self):
        assert mean([1, 2, 3]) == 2.0
        assert median([1, 2, 3, 100]) == 2.5
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            median([])
