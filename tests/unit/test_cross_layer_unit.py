"""White-box unit tests of the cross-layer protocol's message construction.

These tests drive a single protocol instance directly (no network) and
inspect the wire messages it produces, to check the field-level effects of
MBD.1, MBD.2, MBD.3/4, MBD.5, MBD.11 and MBD.12.
"""

from repro.core.config import SystemConfig
from repro.core.events import sends
from repro.core.messages import CrossLayerMessage, MessageType
from repro.core.modifications import ModificationSet
from repro.brb.optimized import CrossLayerBrachaDolev


def make_protocol(pid=0, n=7, f=1, neighbors=(1, 2, 3), mods=None):
    config = SystemConfig.for_system(n, f)
    return CrossLayerBrachaDolev(
        pid,
        config,
        list(neighbors),
        modifications=mods if mods is not None else ModificationSet.dolev_optimized(),
    )


def echo_from(creator, payload=b"m", source=0, bid=0, path=()):
    return CrossLayerMessage(
        mtype=MessageType.ECHO,
        source=source,
        bid=bid,
        creator=creator,
        payload=payload,
        path=path,
    )


def ready_from(creator, payload=b"m", source=0, bid=0, path=()):
    return CrossLayerMessage(
        mtype=MessageType.READY,
        source=source,
        bid=bid,
        creator=creator,
        payload=payload,
        path=path,
    )


class TestBroadcastWireFormat:
    def test_bdopt_send_carries_payload_and_path(self):
        protocol = make_protocol()
        commands = protocol.broadcast(b"payload", bid=4)
        send_messages = [c.message for c in sends(commands) if c.message.mtype == MessageType.SEND]
        assert len(send_messages) == 3
        for message in send_messages:
            assert message.payload == b"payload"
            assert message.bid == 4
            assert message.path == ()

    def test_source_also_sends_its_own_echo(self):
        protocol = make_protocol()
        commands = protocol.broadcast(b"payload")
        echo_messages = [c.message for c in sends(commands) if c.message.mtype == MessageType.ECHO]
        assert len(echo_messages) == 3

    def test_mbd2_send_has_no_path_field(self):
        mods = ModificationSet.dolev_optimized().with_enabled("mbd2_single_hop_send")
        protocol = make_protocol(mods=mods)
        commands = protocol.broadcast(b"payload")
        send_messages = [c.message for c in sends(commands) if c.message.mtype == MessageType.SEND]
        assert send_messages and all(m.path is None for m in send_messages)

    def test_mbd12_limits_fanout_to_two_f_plus_one(self):
        mods = ModificationSet.dolev_optimized().with_enabled("mbd12_reduced_fanout")
        protocol = make_protocol(n=10, f=1, neighbors=(1, 2, 3, 4, 5, 6), mods=mods)
        commands = protocol.broadcast(b"payload")
        send_dests = {c.dest for c in sends(commands) if c.message.mtype == MessageType.SEND}
        assert len(send_dests) == 3  # 2f + 1

    def test_mbd11_non_generator_does_not_echo(self):
        mods = ModificationSet.dolev_optimized().with_enabled("mbd11_role_restriction")
        config = SystemConfig.for_system(10, 1)
        # Pick a process that is not an echo generator for source 0.
        non_generator = next(
            p for p in config.processes if p not in config.echo_generators(0) and p != 0
        )
        protocol = CrossLayerBrachaDolev(
            non_generator, config, [p for p in range(10) if p != non_generator][:5],
            modifications=mods,
        )
        send = CrossLayerMessage(
            mtype=MessageType.SEND, source=0, bid=0, payload=b"m", path=()
        )
        commands = protocol.on_message(0, send) if 0 in protocol.neighbors else []
        echoes = [c for c in sends(commands) if c.message.mtype == MessageType.ECHO]
        assert echoes == []


class TestMBD1LocalIds:
    def test_payload_sent_once_per_neighbor(self):
        mods = ModificationSet.bdopt_with_mbd1()
        protocol = make_protocol(pid=5, n=7, f=1, neighbors=(1, 2, 3), mods=mods)
        # Receive the SEND directly from the source... process 5 is not a
        # neighbor of 0 here, so feed an ECHO carrying the payload instead.
        first = protocol.on_message(1, echo_from(1, path=()))
        second = protocol.on_message(2, echo_from(2, path=()))
        outgoing = [c.message for c in sends(first) + sends(second)]
        with_payload = [m for m in outgoing if m.payload is not None]
        without_payload = [m for m in outgoing if m.payload is None]
        # Each neighbor receives the payload at most once.
        dests_with_payload = [c.dest for c in sends(first) + sends(second) if c.message.payload is not None]
        assert len(dests_with_payload) == len(set(dests_with_payload))
        # Later messages rely on the local payload id.
        assert all(m.local_payload_id is not None for m in without_payload)
        assert all(m.local_payload_id is not None for m in with_payload)

    def test_message_with_unknown_local_id_is_queued(self):
        mods = ModificationSet.bdopt_with_mbd1()
        protocol = make_protocol(pid=5, n=7, f=1, neighbors=(1, 2, 3), mods=mods)
        orphan = CrossLayerMessage(
            mtype=MessageType.ECHO, creator=1, local_payload_id=9, path=()
        )
        assert protocol.on_message(1, orphan) == []
        # Once neighbor 1 reveals the mapping, the queued echo is processed too.
        reveal = CrossLayerMessage(
            mtype=MessageType.ECHO,
            source=0,
            bid=0,
            creator=2,
            payload=b"m",
            local_payload_id=9,
            path=(2,),
        )
        commands = protocol.on_message(1, reveal)
        assert commands  # both the revealed echo and the queued echo are handled

    def test_without_mbd1_every_message_carries_payload(self):
        protocol = make_protocol(mods=ModificationSet.dolev_optimized())
        commands = protocol.on_message(1, echo_from(1, path=()))
        assert all(c.message.payload is not None for c in sends(commands))


class TestMBD5OptionalFields:
    def test_newly_created_echo_omits_creator(self):
        mods = ModificationSet.dolev_optimized().with_enabled("mbd5_optional_fields")
        protocol = make_protocol(pid=2, n=7, f=1, neighbors=(0, 1, 3), mods=mods)
        send = CrossLayerMessage(
            mtype=MessageType.SEND, source=0, bid=0, payload=b"m", path=()
        )
        commands = protocol.on_message(0, send)
        own_echoes = [
            c.message
            for c in sends(commands)
            if c.message.mtype == MessageType.ECHO and c.message.path == ()
        ]
        assert own_echoes and all(m.creator is None for m in own_echoes)

    def test_relayed_echo_keeps_creator(self):
        mods = ModificationSet.dolev_optimized().with_enabled("mbd5_optional_fields")
        protocol = make_protocol(pid=2, n=7, f=2, neighbors=(0, 1, 3), mods=mods)
        commands = protocol.on_message(1, echo_from(4, path=(5,)))
        relayed = [c.message for c in sends(commands) if c.message.mtype == MessageType.ECHO]
        assert relayed and all(m.creator == 4 for m in relayed)

    def test_creator_defaults_to_sender_on_reception(self):
        # A message without a creator field is attributed to the link sender.
        protocol = make_protocol(pid=2, n=4, f=1, neighbors=(0, 1, 3))
        anonymous_echo = CrossLayerMessage(
            mtype=MessageType.ECHO, source=0, bid=0, payload=b"m", path=()
        )
        protocol.on_message(1, anonymous_echo)
        slot = protocol._slots[(0, 0)]
        record = slot.payloads[b"m"]
        assert 1 in record.echo_creators


class TestMergedMessages:
    def test_ready_echo_created_when_delivery_triggers_ready(self):
        mods = ModificationSet.dolev_optimized().with_enabled(
            "mbd3_echo_echo", "mbd4_ready_echo"
        )
        # n=4, f=1 -> echo quorum 3.  The process first echoes the source's
        # SEND, then receives two foreign echoes; the third echo completes
        # the quorum, so its (empty-path) relay and the newly created READY
        # are merged into one READY_ECHO message.
        protocol = make_protocol(pid=3, n=4, f=1, neighbors=(0, 1, 2), mods=mods)
        send = CrossLayerMessage(
            mtype=MessageType.SEND, source=0, bid=0, payload=b"m", path=()
        )
        protocol.on_message(0, send)
        protocol.on_message(1, echo_from(1, path=()))
        commands = protocol.on_message(2, echo_from(2, path=()))
        merged = [c.message for c in sends(commands) if c.message.mtype == MessageType.READY_ECHO]
        assert merged
        assert all(m.creator == 3 and m.embedded_creator == 2 for m in merged)

    def test_amplification_cascade_produces_merged_messages(self):
        mods = ModificationSet.dolev_optimized().with_enabled(
            "mbd3_echo_echo", "mbd4_ready_echo"
        )
        # Without the SEND, the f+1-th echo triggers echo amplification which
        # immediately cascades into a READY; the relayed echo is merged with
        # one of the created messages (MBD.3 or MBD.4).
        protocol = make_protocol(pid=3, n=4, f=1, neighbors=(0, 1, 2), mods=mods)
        protocol.on_message(0, echo_from(0, path=()))
        commands = protocol.on_message(1, echo_from(1, path=()))
        assert any(c.message.mtype.is_merged for c in sends(commands))

    def test_merged_message_decomposition_counts_both_contents(self):
        protocol = make_protocol(pid=3, n=7, f=1, neighbors=(0, 1, 2))
        merged = CrossLayerMessage(
            mtype=MessageType.READY_ECHO,
            source=0,
            bid=0,
            creator=4,
            embedded_creator=5,
            payload=b"m",
            path=(6,),
        )
        protocol.on_message(1, merged)
        record = protocol._slots[(0, 0)].payloads[b"m"]
        assert (MessageType.READY, 4) in record.contents
        assert (MessageType.ECHO, 5) in record.contents

    def test_echo_echo_decomposition(self):
        protocol = make_protocol(pid=3, n=7, f=1, neighbors=(0, 1, 2))
        merged = CrossLayerMessage(
            mtype=MessageType.ECHO_ECHO,
            source=0,
            bid=0,
            creator=4,
            embedded_creator=5,
            payload=b"m",
            path=(),
        )
        protocol.on_message(1, merged)
        record = protocol._slots[(0, 0)].payloads[b"m"]
        assert (MessageType.ECHO, 4) in record.contents
        assert (MessageType.ECHO, 5) in record.contents

    def test_no_merging_when_disabled(self):
        protocol = make_protocol(pid=3, n=4, f=1, neighbors=(0, 1, 2))
        protocol.on_message(0, echo_from(0, path=()))
        protocol.on_message(1, echo_from(1, path=()))
        commands = protocol.on_message(2, echo_from(2, path=()))
        assert all(
            not c.message.mtype.is_merged for c in sends(commands)
        )


class TestRobustness:
    def test_garbage_message_ignored(self):
        protocol = make_protocol()
        assert protocol.on_message(1, "garbage") == []
        assert protocol.on_message(1, CrossLayerMessage(mtype=MessageType.ECHO)) == []

    def test_unknown_source_ignored(self):
        protocol = make_protocol()
        message = CrossLayerMessage(
            mtype=MessageType.SEND, source=99, bid=0, payload=b"m", path=()
        )
        assert protocol.on_message(1, message) == []

    def test_forged_path_with_unknown_ids_ignored(self):
        protocol = make_protocol(pid=2, n=7, f=1, neighbors=(0, 1, 3))
        message = echo_from(4, path=(77,))
        assert sends(protocol.on_message(1, message)) == ()

    def test_duplicate_broadcast_is_idempotent(self):
        protocol = make_protocol()
        first = protocol.broadcast(b"m", bid=1)
        second = protocol.broadcast(b"m", bid=1)
        assert first and second == []

    def test_state_size_estimate_grows_with_traffic(self):
        protocol = make_protocol(pid=2, n=7, f=2, neighbors=(0, 1, 3))
        baseline = protocol.state_size_estimate()
        protocol.on_message(1, echo_from(4, path=(5,)))
        protocol.on_message(3, echo_from(4, path=(6,)))
        assert protocol.state_size_estimate() > baseline
