"""Unit tests for the timed fault events (crash / link-drop / delayed
start / membership churn)."""

import pytest

from repro.core.errors import ConfigurationError, SpecError
from repro.scenarios import (
    CrashAt,
    CrashWhen,
    CutLinkWhen,
    DelayedStart,
    DelaySpec,
    JoinAt,
    LeaveAt,
    LinkDropWindow,
    ObservationFilter,
    RewireLinkAt,
    ScenarioSpec,
    TopologySpec,
    TurnByzantineWhen,
    run_scenario,
)


def ring_spec(n=6, **kwargs):
    """An f=0 ring scenario: every delivery relies on simple flooding."""
    defaults = dict(
        topology=TopologySpec(kind="ring", n=n),
        delay=DelaySpec(kind="fixed", mean_ms=10.0),
        f=0,
        seed=1,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestCrashAt:
    def test_crash_at_time_zero_never_participates(self):
        # The crashed process must not deliver, relay, or even run
        # on_start — its traffic is entirely absent from the run.
        result = run_scenario(ring_spec(faults=(CrashAt(pid=3, time_ms=0.0),)))
        assert result.crashed == (3,)
        assert 3 not in result.delivered_processes
        assert 3 not in result.correct_processes
        assert result.metrics.messages_by_process.get(3, 0) == 0
        # The ring minus one node is a line: still connected, so the
        # remaining processes all deliver.
        assert result.all_correct_delivered

    def test_crash_at_zero_matches_a_never_started_process(self):
        crashed = run_scenario(ring_spec(faults=(CrashAt(pid=3, time_ms=0.0),)))
        assert crashed.latency_ms is not None

    def test_mid_run_crash_silences_later_traffic(self):
        healthy = run_scenario(ring_spec(n=8))
        crashed = run_scenario(ring_spec(n=8, faults=(CrashAt(pid=1, time_ms=15.0),)))
        # Process 1 (a neighbor of the source) forwarded for 15 ms and
        # then went silent: it sent something, but less than when healthy.
        sent_healthy = healthy.metrics.messages_by_process.get(1, 0)
        sent_crashed = crashed.metrics.messages_by_process.get(1, 0)
        assert 0 < sent_crashed < sent_healthy
        assert 1 not in crashed.correct_processes

    def test_crash_unknown_process_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario(ring_spec(faults=(CrashAt(pid=99, time_ms=0.0),)))


class TestLinkDropWindow:
    def test_window_that_never_reopens_blocks_the_link_forever(self):
        # Cutting {0, 1} on a ring leaves only the long way around: the
        # broadcast still delivers, but messages were lost on the dead
        # link for the whole run.
        result = run_scenario(
            ring_spec(faults=(LinkDropWindow(u=0, v=1, start_ms=0.0, end_ms=None),))
        )
        assert result.dropped_messages > 0
        assert result.all_correct_delivered
        healthy = run_scenario(ring_spec())
        assert result.latency_ms > healthy.latency_ms

    def test_two_permanent_cuts_partition_the_ring(self):
        # Dropping both links adjacent to process 1 isolates it for good.
        result = run_scenario(
            ring_spec(
                faults=(
                    LinkDropWindow(u=0, v=1, start_ms=0.0, end_ms=None),
                    LinkDropWindow(u=1, v=2, start_ms=0.0, end_ms=None),
                )
            )
        )
        assert 1 not in result.delivered_processes
        assert result.latency_ms is None  # a correct process missed the broadcast

    def test_window_end_is_exclusive_and_reopens(self):
        # The window closes before the first transmission finishes its
        # 10 ms hop chain: messages sent at or after end_ms go through.
        blocked_forever = run_scenario(
            ring_spec(faults=(LinkDropWindow(u=0, v=1, start_ms=0.0, end_ms=None),))
        )
        reopens = run_scenario(
            ring_spec(faults=(LinkDropWindow(u=0, v=1, start_ms=0.0, end_ms=5.0),))
        )
        # After reopening, the relayed copies (sent at t >= 10 ms) use the
        # link again, so fewer messages are lost than with the dead link.
        assert reopens.dropped_messages < blocked_forever.dropped_messages

    def test_drop_window_on_missing_link_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario(ring_spec(faults=(LinkDropWindow(u=0, v=3, start_ms=0.0),)))

    def test_backwards_window_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario(
                ring_spec(faults=(LinkDropWindow(u=0, v=1, start_ms=10.0, end_ms=5.0),))
            )


class TestDelayedStart:
    def test_dormant_node_buffers_and_delivers_after_waking(self):
        result = run_scenario(ring_spec(faults=(DelayedStart(pid=3, time_ms=200.0),)))
        assert result.all_correct_delivered
        late = [time for time, pid, _, _, _ in result.delivery_trace if pid == 3]
        assert late and late[0] >= 200.0

    def test_delayed_source_broadcasts_after_waking(self):
        result = run_scenario(ring_spec(faults=(DelayedStart(pid=0, time_ms=100.0),)))
        assert result.all_correct_delivered
        # Nothing can happen before the source wakes up.
        first_delivery = min(time for time, _, _, _, _ in result.delivery_trace)
        assert first_delivery >= 100.0
        healthy = run_scenario(ring_spec())
        assert result.latency_ms == pytest.approx(healthy.latency_ms + 100.0)

    def test_delayed_node_crashing_before_waking_never_acts(self):
        result = run_scenario(
            ring_spec(
                faults=(DelayedStart(pid=3, time_ms=200.0), CrashAt(pid=3, time_ms=50.0))
            )
        )
        assert 3 not in result.delivered_processes
        assert result.metrics.messages_by_process.get(3, 0) == 0

    def test_delay_unknown_process_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario(ring_spec(faults=(DelayedStart(pid=77, time_ms=10.0),)))

    def test_negative_start_time_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario(ring_spec(faults=(DelayedStart(pid=3, time_ms=-1.0),)))


class TestConstructionTimeValidation:
    """Malformed fault events fail where they are written (SpecError).

    Regression: a ``LinkDropWindow`` with ``end < start`` or negative
    times used to pass construction silently and only blow up (or worse,
    silently never match) deep inside a run.
    """

    def test_backwards_window_rejected_at_construction(self):
        with pytest.raises(SpecError, match="ends before it starts"):
            LinkDropWindow(u=0, v=1, start_ms=10.0, end_ms=5.0)

    def test_negative_window_start_rejected(self):
        with pytest.raises(SpecError, match="non-negative"):
            LinkDropWindow(u=0, v=1, start_ms=-1.0)

    def test_negative_window_end_rejected(self):
        with pytest.raises(SpecError, match="non-negative"):
            LinkDropWindow(u=0, v=1, start_ms=0.0, end_ms=-5.0)

    def test_empty_window_is_allowed(self):
        # A zero-length window [t, t) is legal (drops nothing) — only a
        # genuinely backwards window is a spec bug.
        window = LinkDropWindow(u=0, v=1, start_ms=10.0, end_ms=10.0)
        assert window.end_ms == window.start_ms

    def test_negative_crash_time_rejected(self):
        with pytest.raises(SpecError, match="non-negative"):
            CrashAt(pid=1, time_ms=-0.5)

    def test_negative_delayed_start_rejected_at_construction(self):
        with pytest.raises(SpecError, match="non-negative"):
            DelayedStart(pid=1, time_ms=-1.0)

    def test_spec_error_is_a_configuration_error(self):
        # Callers catching the broader class keep working.
        assert issubclass(SpecError, ConfigurationError)

    def test_negative_join_time_rejected(self):
        with pytest.raises(SpecError, match="non-negative"):
            JoinAt(pid=1, time_ms=-1.0)

    def test_negative_leave_time_rejected(self):
        with pytest.raises(SpecError, match="non-negative"):
            LeaveAt(pid=1, time_ms=-1.0)

    def test_negative_rewire_time_rejected(self):
        with pytest.raises(SpecError, match="non-negative"):
            RewireLinkAt(pid=1, old_peer=0, new_peer=3, time_ms=-1.0)

    def test_rewire_self_loop_rejected(self):
        with pytest.raises(SpecError, match="differ from pid"):
            RewireLinkAt(pid=1, old_peer=1, new_peer=3)
        with pytest.raises(SpecError, match="differ from pid"):
            RewireLinkAt(pid=1, old_peer=0, new_peer=1)

    def test_rewire_to_the_same_peer_rejected(self):
        with pytest.raises(SpecError, match="must differ"):
            RewireLinkAt(pid=1, old_peer=0, new_peer=0)


class TestMembershipChurn:
    """Simulator semantics of the JoinAt / LeaveAt / RewireLinkAt faults."""

    def test_late_joiner_misses_early_traffic_but_keeps_its_links(self):
        # Unlike DelayedStart (which buffers), a late joiner drops the
        # traffic sent before the join fires — it never saw the early
        # broadcast, so it must not deliver it.
        result = run_scenario(ring_spec(faults=(JoinAt(pid=3, time_ms=500.0),)))
        assert 3 not in result.delivered_processes
        assert result.dropped_messages > 0
        # The other processes route around via the intact ring links.
        others = set(result.correct_processes) - {3}
        assert others <= set(result.delivered_processes)

    def test_joiner_at_time_zero_participates_fully(self):
        result = run_scenario(ring_spec(faults=(JoinAt(pid=3, time_ms=0.0),)))
        healthy = run_scenario(ring_spec())
        assert result.all_correct_delivered
        assert result.latency_ms == healthy.latency_ms

    def test_late_joining_source_broadcasts_after_joining(self):
        result = run_scenario(ring_spec(faults=(JoinAt(pid=0, time_ms=100.0),)))
        assert result.all_correct_delivered
        first_delivery = min(time for time, _, _, _, _ in result.delivery_trace)
        assert first_delivery >= 100.0

    def test_leaver_counts_as_crashed_and_its_links_die(self):
        result = run_scenario(ring_spec(faults=(LeaveAt(pid=3, time_ms=5.0),)))
        assert 3 in result.crashed
        assert 3 not in result.correct_processes
        # In-flight copies toward the departed node are lost on the torn
        # down links, not delivered to a dead inbox.
        assert 3 not in result.delivered_processes
        assert result.all_correct_delivered  # ring minus a node is a line

    def test_immediate_leave_never_participates(self):
        result = run_scenario(ring_spec(faults=(LeaveAt(pid=3, time_ms=0.0),)))
        assert result.metrics.messages_by_process.get(3, 0) == 0

    def test_rewire_shifts_traffic_without_raising(self):
        # 1 swaps its ring link {1, 2} for the chord {1, 4} mid-run: the
        # protocols keep their static neighbor view, so copies sent on
        # the severed edge are dropped (never a RuntimeAbort) and the
        # broadcast still completes over the remaining ring.
        result = run_scenario(
            ring_spec(
                n=6,
                faults=(RewireLinkAt(pid=1, old_peer=2, new_peer=4, time_ms=5.0),),
            )
        )
        assert result.dropped_messages > 0
        assert result.all_correct_delivered

    def test_rewiring_a_missing_link_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario(
                ring_spec(
                    faults=(RewireLinkAt(pid=0, old_peer=3, new_peer=1, time_ms=5.0),)
                )
            )

    def test_churn_on_unknown_process_rejected(self):
        for fault in (
            JoinAt(pid=99, time_ms=0.0),
            LeaveAt(pid=99, time_ms=0.0),
            RewireLinkAt(pid=99, old_peer=0, new_peer=1, time_ms=0.0),
        ):
            with pytest.raises(ConfigurationError):
                run_scenario(ring_spec(faults=(fault,)))


class TestAdaptiveFaultValidation:
    def test_unknown_observation_kind_rejected(self):
        with pytest.raises(SpecError, match="observation kind"):
            ObservationFilter(kind="receive")

    def test_zero_trigger_count_rejected(self):
        with pytest.raises(SpecError, match="count"):
            CrashWhen(pid=0, after=ObservationFilter(kind="send"), count=0)

    def test_equivocate_conversion_rejected(self):
        with pytest.raises(SpecError, match="equivocation"):
            TurnByzantineWhen(pid=1, behaviour="equivocate")

    def test_extended_behaviours_are_valid_conversion_targets(self):
        for behaviour in (
            "alter_sender",
            "send_empty",
            "limited_broadcast",
            "truncate_path",
        ):
            fault = TurnByzantineWhen(pid=1, behaviour=behaviour)
            assert fault.behaviour == behaviour

    def test_non_positive_cut_duration_rejected(self):
        with pytest.raises(SpecError, match="duration"):
            CutLinkWhen(u=0, v=1, duration_ms=0.0)

    def test_conversions_count_against_the_fault_budget(self):
        with pytest.raises(ConfigurationError, match="f=0"):
            ScenarioSpec(
                topology=TopologySpec(kind="ring", n=6),
                f=0,
                adaptive=(TurnByzantineWhen(pid=2),),
            )

    def test_adaptive_crashes_do_not_consume_the_budget(self):
        # A crash is a benign fault, not a Byzantine corruption.
        spec = ScenarioSpec(
            topology=TopologySpec(kind="ring", n=6),
            f=0,
            adaptive=(CrashWhen(pid=2, after=ObservationFilter(kind="send")),),
        )
        assert spec.is_adaptive

    def test_unknown_adaptive_fault_type_rejected(self):
        with pytest.raises(ConfigurationError, match="adaptive"):
            ScenarioSpec(
                topology=TopologySpec(kind="ring", n=6),
                adaptive=(CrashAt(pid=1),),  # a timed fault is not adaptive
            )

    def test_adaptive_target_pids_validated_before_the_run(self):
        # Both backends share validate_topology, so an invalid target is
        # rejected up front — never discovered (or silently swallowed)
        # when the trigger fires mid-run.
        with pytest.raises(ConfigurationError, match="unknown process 99"):
            run_scenario(
                ring_spec(
                    adaptive=(
                        CrashWhen(pid=99, after=ObservationFilter(kind="send")),
                    )
                )
            )

    def test_adaptive_cut_links_validated_before_the_run(self):
        with pytest.raises(ConfigurationError, match="missing link"):
            run_scenario(
                ring_spec(adaptive=(CutLinkWhen(u=0, v=3),))  # no chord in a ring
            )

    def test_adaptive_conversion_target_validated_before_the_run(self):
        with pytest.raises(ConfigurationError, match="unknown process 42"):
            run_scenario(
                ring_spec(f=1, adaptive=(TurnByzantineWhen(pid=42),))
            )


class TestAdaptiveDuringDormantReplay:
    def test_conversion_mid_replay_reaches_the_replacement(self):
        # Regression: ``_wake`` used to resolve the protocol instance
        # once before replaying the dormant buffer, so a conversion
        # triggered by the replay itself kept feeding the pre-conversion
        # instance.  Here pid 3 sleeps until the whole broadcast has been
        # buffered for it; its first replayed send fires a mute
        # conversion, and the rest of the buffer must reach the mute
        # replacement — pid 3 sends one command batch, not a response
        # per buffered message.
        spec = ScenarioSpec(
            topology=TopologySpec(kind="complete", n=5),
            delay=DelaySpec(kind="fixed", mean_ms=10.0),
            f=1,
            seed=1,
            faults=(DelayedStart(pid=3, time_ms=200.0),),
            adaptive=(
                TurnByzantineWhen(
                    pid=3,
                    after=ObservationFilter(kind="send", pid=3),
                    behaviour="mute",
                ),
            ),
        )
        result = run_scenario(spec)
        assert (3, "mute") in result.byzantine
        assert result.all_correct_delivered

        sends = result.metrics.messages_by_process
        quietest_correct = min(
            count for pid, count in sends.items() if pid != 3
        )
        # One batch is far below a full participation: with the old
        # stale-instance replay pid 3 matched the correct processes.
        assert sends.get(3, 0) * 2 < quietest_correct
