"""Unit tests for the binary message codec."""

import pytest

from repro.core.encoding import decode_message, encode_message
from repro.core.errors import EncodingError
from repro.core.messages import (
    BrachaMessage,
    CrossLayerMessage,
    DolevMessage,
    MessageType,
)


class TestRoundTrips:
    def test_bracha_send_roundtrip(self):
        message = BrachaMessage(MessageType.SEND, source=3, bid=8, payload=b"hello")
        assert decode_message(encode_message(message)) == message

    def test_bracha_echo_with_creator_roundtrip(self):
        message = BrachaMessage(MessageType.ECHO, 3, 8, b"hello", creator=5)
        assert decode_message(encode_message(message)) == message

    def test_dolev_raw_roundtrip(self):
        message = DolevMessage(content=b"\x00\x01\x02", path=(4, 5, 6))
        assert decode_message(encode_message(message)) == message

    def test_dolev_with_bracha_content_roundtrip(self):
        inner = BrachaMessage(MessageType.READY, 1, 2, b"xyz", creator=9)
        message = DolevMessage(content=inner, path=())
        assert decode_message(encode_message(message)) == message

    def test_cross_layer_minimal_roundtrip(self):
        message = CrossLayerMessage(mtype=MessageType.READY)
        assert decode_message(encode_message(message)) == message

    def test_cross_layer_full_roundtrip(self):
        message = CrossLayerMessage(
            mtype=MessageType.READY_ECHO,
            source=1,
            bid=2,
            creator=3,
            embedded_creator=4,
            payload=b"payload-data",
            local_payload_id=77,
            path=(9, 8, 7),
        )
        assert decode_message(encode_message(message)) == message

    def test_cross_layer_empty_payload_roundtrip(self):
        message = CrossLayerMessage(mtype=MessageType.SEND, bid=0, payload=b"")
        decoded = decode_message(encode_message(message))
        assert decoded.payload == b""
        assert decoded == message

    def test_cross_layer_empty_path_distinct_from_absent(self):
        with_path = CrossLayerMessage(mtype=MessageType.ECHO, path=())
        without_path = CrossLayerMessage(mtype=MessageType.ECHO, path=None)
        assert decode_message(encode_message(with_path)).path == ()
        assert decode_message(encode_message(without_path)).path is None

    def test_large_payload_roundtrip(self):
        message = CrossLayerMessage(
            mtype=MessageType.SEND, source=0, bid=1, payload=bytes(range(256)) * 8
        )
        assert decode_message(encode_message(message)) == message


class TestErrors:
    def test_empty_buffer_rejected(self):
        with pytest.raises(EncodingError):
            decode_message(b"")

    def test_unknown_kind_rejected(self):
        with pytest.raises(EncodingError):
            decode_message(bytes([250, 0, 0]))

    def test_truncated_message_rejected(self):
        encoded = encode_message(
            BrachaMessage(MessageType.SEND, source=3, bid=8, payload=b"hello")
        )
        with pytest.raises(EncodingError):
            decode_message(encoded[:-3])

    def test_trailing_garbage_rejected(self):
        encoded = encode_message(CrossLayerMessage(mtype=MessageType.READY))
        with pytest.raises(EncodingError):
            decode_message(encoded + b"\x00")

    def test_unencodable_object_rejected(self):
        with pytest.raises(EncodingError):
            encode_message("not a message")

    def test_negative_ids_rejected(self):
        message = CrossLayerMessage(mtype=MessageType.ECHO, source=-1)
        with pytest.raises(EncodingError):
            encode_message(message)
