"""Unit tests for :mod:`repro.core.config`."""

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError


class TestConstruction:
    def test_for_system_builds_contiguous_ids(self):
        config = SystemConfig.for_system(5, 1)
        assert config.processes == (0, 1, 2, 3, 4)
        assert config.n == 5
        assert config.f == 1

    def test_from_processes_sorts_and_deduplicates(self):
        config = SystemConfig.from_processes([3, 1, 2, 1], f=0)
        assert config.processes == (1, 2, 3)
        assert config.n == 3

    def test_empty_process_set_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig.from_processes([], f=0)

    def test_negative_f_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig.for_system(4, -1)

    def test_negative_process_id_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig.from_processes([-1, 0, 1], f=0)

    def test_is_process(self):
        config = SystemConfig.from_processes([0, 2, 4], f=0)
        assert config.is_process(2)
        assert not config.is_process(1)
        assert not config.is_process(5)


class TestQuorums:
    def test_echo_quorum_matches_bracha_formula(self):
        # ⌈(N + f + 1) / 2⌉
        assert SystemConfig.for_system(10, 3).echo_quorum == 7
        assert SystemConfig.for_system(7, 2).echo_quorum == 5
        assert SystemConfig.for_system(4, 1).echo_quorum == 3

    def test_ready_amplification_is_f_plus_one(self):
        assert SystemConfig.for_system(10, 3).ready_amplification_threshold == 4

    def test_echo_amplification_is_f_plus_one(self):
        assert SystemConfig.for_system(10, 3).echo_amplification_threshold == 4

    def test_delivery_quorum_is_two_f_plus_one(self):
        assert SystemConfig.for_system(10, 3).delivery_quorum == 7
        assert SystemConfig.for_system(4, 1).delivery_quorum == 3

    def test_disjoint_paths_required_is_f_plus_one(self):
        assert SystemConfig.for_system(10, 3).disjoint_paths_required == 4

    def test_min_connectivity_is_two_f_plus_one(self):
        assert SystemConfig.for_system(10, 3).min_connectivity == 7

    def test_f_zero_degenerates_gracefully(self):
        config = SystemConfig.for_system(3, 0)
        assert config.delivery_quorum == 1
        assert config.disjoint_paths_required == 1
        assert config.echo_quorum == 2


class TestResilience:
    def test_resilience_bound_accepts_f_below_n_third(self):
        assert SystemConfig.for_system(4, 1).satisfies_bracha_resilience()
        assert SystemConfig.for_system(10, 3).satisfies_bracha_resilience()

    def test_resilience_bound_rejects_n_equal_three_f(self):
        assert not SystemConfig.for_system(9, 3).satisfies_bracha_resilience()

    def test_require_resilience_raises(self):
        with pytest.raises(ConfigurationError):
            SystemConfig.for_system(6, 2).require_bracha_resilience()

    def test_require_resilience_passes(self):
        SystemConfig.for_system(7, 2).require_bracha_resilience()


class TestRoleAssignment:
    """MBD.11 role selection (Sec. 6.5)."""

    def test_echo_generators_count(self):
        config = SystemConfig.for_system(10, 2)
        roles = config.echo_generators(source=0)
        assert len(roles) == min(config.echo_quorum + config.f, config.n)

    def test_ready_generators_count_is_three_f_plus_one(self):
        config = SystemConfig.for_system(10, 2)
        assert len(config.ready_generators(source=0)) == 3 * config.f + 1

    def test_roles_rotate_with_source(self):
        config = SystemConfig.for_system(10, 2)
        assert config.ready_generators(0) != config.ready_generators(5)

    def test_roles_start_after_source(self):
        config = SystemConfig.for_system(10, 2)
        roles = config.ready_generators(3)
        assert 4 in roles  # the first process after the source is selected

    def test_tight_case_selects_everyone(self):
        # With N = 3f + 1 all processes participate in every phase.
        config = SystemConfig.for_system(7, 2)
        assert config.ready_generators(0) == frozenset(config.processes)
        assert config.echo_generators(0) == frozenset(config.processes)

    def test_unknown_source_still_returns_total_assignment(self):
        config = SystemConfig.for_system(10, 2)
        roles = config.echo_generators(source=99)
        assert len(roles) == min(config.echo_quorum + config.f, config.n)

    def test_generators_are_valid_processes(self):
        config = SystemConfig.for_system(13, 3)
        for source in config.processes:
            assert config.echo_generators(source) <= set(config.processes)
            assert config.ready_generators(source) <= set(config.processes)
