"""Unit tests for the modification toggle sets."""

import pytest

from repro.core.modifications import MBD_FIELD_NAMES, MD_FIELD_NAMES, ModificationSet


class TestPresets:
    def test_none_has_everything_disabled(self):
        mods = ModificationSet.none()
        assert mods.enabled_names() == ()
        assert mods.describe() == "unmodified"

    def test_dolev_optimized_enables_exactly_md1_to_5(self):
        mods = ModificationSet.dolev_optimized()
        assert set(mods.enabled_names()) == set(MD_FIELD_NAMES.values())

    def test_bdopt_alias(self):
        assert ModificationSet.bdopt() == ModificationSet.dolev_optimized()

    def test_bdopt_with_mbd1(self):
        mods = ModificationSet.bdopt_with_mbd1()
        assert mods.mbd1_local_payload_ids
        assert mods.md1_deliver_from_source
        assert not mods.mbd2_single_hop_send

    def test_all_enabled(self):
        mods = ModificationSet.all_enabled()
        assert len(mods.enabled_names()) == len(MD_FIELD_NAMES) + len(MBD_FIELD_NAMES)

    def test_latency_preset_contents(self):
        mods = ModificationSet.latency_optimized()
        assert set(mods.enabled_mbd_indices()) == {1, 2, 7, 8, 9}

    def test_bandwidth_preset_contents(self):
        mods = ModificationSet.bandwidth_optimized()
        assert set(mods.enabled_mbd_indices()) == {1, 7, 8, 9, 11}

    def test_latency_and_bandwidth_preset_is_intersection(self):
        lat = set(ModificationSet.latency_optimized().enabled_mbd_indices())
        bdw = set(ModificationSet.bandwidth_optimized().enabled_mbd_indices())
        both = set(ModificationSet.latency_and_bandwidth_optimized().enabled_mbd_indices())
        assert both == (lat & bdw)

    def test_single_mbd_includes_mbd1_reference(self):
        mods = ModificationSet.single_mbd(7)
        assert set(mods.enabled_mbd_indices()) == {1, 7}

    def test_single_mbd_1_does_not_duplicate(self):
        mods = ModificationSet.single_mbd(1)
        assert set(mods.enabled_mbd_indices()) == {1}

    def test_single_mbd_without_mbd1(self):
        mods = ModificationSet.single_mbd(11, with_mbd1=False)
        assert set(mods.enabled_mbd_indices()) == {11}

    def test_single_mbd_rejects_unknown_index(self):
        with pytest.raises(ValueError):
            ModificationSet.single_mbd(13)


class TestManipulation:
    def test_with_enabled_returns_copy(self):
        base = ModificationSet.none()
        enabled = base.with_enabled("mbd7_ignore_echo_after_delivery")
        assert enabled.mbd7_ignore_echo_after_delivery
        assert not base.mbd7_ignore_echo_after_delivery

    def test_with_enabled_unknown_name(self):
        with pytest.raises(ValueError):
            ModificationSet.none().with_enabled("mbd13_not_a_thing")

    def test_with_disabled(self):
        mods = ModificationSet.all_enabled().with_disabled("mbd11_role_restriction")
        assert not mods.mbd11_role_restriction
        assert mods.mbd12_reduced_fanout

    def test_with_disabled_unknown_name(self):
        with pytest.raises(ValueError):
            ModificationSet.none().with_disabled("whatever")

    def test_from_names(self):
        mods = ModificationSet.from_names(["md1_deliver_from_source", "mbd10_ignore_superpaths"])
        assert mods.md1_deliver_from_source
        assert mods.mbd10_ignore_superpaths
        assert len(mods.enabled_names()) == 2

    def test_as_dict_round_trips(self):
        mods = ModificationSet.latency_optimized()
        rebuilt = ModificationSet(**mods.as_dict())
        assert rebuilt == mods

    def test_describe_mentions_md_and_mbd(self):
        description = ModificationSet.bdopt_with_mbd1().describe()
        assert "MD.1/2/3/4/5" in description
        assert "MBD.1" in description

    def test_enabled_mbd_indices_sorted(self):
        mods = ModificationSet.none().with_enabled(
            "mbd9_skip_delivered_neighbors", "mbd2_single_hop_send"
        )
        assert mods.enabled_mbd_indices() == (2, 9)

    def test_immutability(self):
        mods = ModificationSet.none()
        with pytest.raises(Exception):
            mods.mbd1_local_payload_ids = True
