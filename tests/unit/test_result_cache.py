"""Unit tests of the shared scenario-hash result cache.

The load path must be impossible to poison: any entry that is not
*exactly* a current-version record, produced by the requesting cell's
backend, holding a result whose spec equals the requesting spec,
degrades to a re-run.  The cross-backend collision case is a regression
test: the pre-refactor executor verified the cached spec but trusted the
record about which backend executed it, so a crafted (or misplaced)
entry could satisfy a simulation cell with output labeled as another
backend's.
"""

import pickle

import pytest

from repro.runner.cache import CACHE_VERSION, ResultCache, partition_cached
from repro.runner.parallel import SweepExecutor
from repro.scenarios import ScenarioSpec, TopologySpec, run_scenario


@pytest.fixture()
def spec():
    return ScenarioSpec(
        name="cache-test",
        topology=TopologySpec(kind="complete", n=4),
        f=0,
        seed=23,
    )


@pytest.fixture()
def result(spec):
    return run_scenario(spec)


def test_store_load_round_trip(tmp_path, spec, result):
    cache = ResultCache(tmp_path)
    assert cache.load(spec) is None
    cache.store(result)
    assert cache.load(spec) == result


def test_disabled_cache_is_a_no_op(spec, result):
    cache = ResultCache(None)
    assert not cache.enabled
    cache.store(result)
    assert cache.load(spec) is None
    assert cache.path_for(spec) is None


def test_corrupt_entry_degrades_to_miss(tmp_path, spec, result):
    cache = ResultCache(tmp_path)
    cache.store(result)
    cache.path_for(spec).write_bytes(b"not a pickle")
    assert cache.load(spec) is None


def test_stale_version_degrades_to_miss(tmp_path, spec, result):
    cache = ResultCache(tmp_path)
    path = cache.path_for(spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    # A pre-v3 record has a two-element layout without the backend tag.
    path.write_bytes(pickle.dumps((2, result)))
    assert cache.load(spec) is None


def test_v3_record_misses_cleanly(tmp_path, spec, result):
    """Regression: a v3 record (pre-workload schema) must be skipped.

    The stored result predates the ``outcomes`` field, so the loader
    must reject it on the version tag alone — touching attributes of the
    stale-layout instance could raise — and degrade to a clean re-run.
    """
    cache = ResultCache(tmp_path)
    path = cache.path_for(spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Emulate the v3 layout: same 3-tuple shape, older version tag, and
    # a result instance whose __dict__ lacks the workload-era fields.
    stale = object.__new__(type(result))
    state = dict(result.__dict__)
    state.pop("outcomes", None)
    stale.__dict__.update(state)
    path.write_bytes(pickle.dumps((3, spec.backend, stale)))
    assert cache.load(spec) is None

    # The slot is repaired by an honest re-run.
    cache.store(result)
    assert cache.load(spec) == result


def test_v4_record_misses_cleanly(tmp_path, spec, result):
    """Regression: a v4 record (pre-loss/adaptive schema) must be skipped.

    The stored record's spec predates ``DelaySpec``'s loss fields and
    ``ScenarioSpec.adaptive``, so comparing it against a current-build
    spec would be meaningless (and touching missing attributes could
    raise); the loader must reject it on the version tag alone and
    degrade to a clean re-run, mirroring the v3 test above.
    """
    cache = ResultCache(tmp_path)
    path = cache.path_for(spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Emulate the v4 layout: same 3-tuple shape, older version tag, and
    # spec instances whose __dict__ lacks the loss/adaptive-era fields.
    stale_delay = object.__new__(type(spec.delay))
    delay_state = dict(spec.delay.__dict__)
    for missing in ("loss", "burst_period_ms", "burst_len_ms"):
        delay_state.pop(missing, None)
    stale_delay.__dict__.update(delay_state)

    stale_spec = object.__new__(type(spec))
    spec_state = dict(spec.__dict__)
    spec_state.pop("adaptive", None)
    spec_state["delay"] = stale_delay
    stale_spec.__dict__.update(spec_state)

    stale = object.__new__(type(result))
    stale.__dict__.update({**result.__dict__, "spec": stale_spec})
    path.write_bytes(pickle.dumps((4, spec.backend, stale)))
    assert cache.load(spec) is None

    # The slot is repaired by an honest re-run.
    cache.store(result)
    assert cache.load(spec) == result


def test_hash_collision_spec_mismatch_degrades_to_miss(tmp_path, spec, result):
    cache = ResultCache(tmp_path)
    cache.store(result)
    other = spec.with_seed(spec.seed + 1)
    # Simulate a hash collision: the other spec's slot holds this
    # result.  Loading must notice the spec mismatch and re-run.
    cache.path_for(spec).rename(cache.path_for(other))
    assert cache.load(other) is None


def test_cross_backend_collision_is_rejected(tmp_path, spec, result):
    """Regression: a record executed by another backend must not hit.

    The record claims ``asyncio`` execution while the stored result's
    spec still matches the requesting simulation cell — exactly the
    crafted collision the old spec-only check accepted.
    """
    cache = ResultCache(tmp_path)
    path = cache.path_for(spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps((CACHE_VERSION, "asyncio", result)))
    assert spec.backend == "simulation"
    assert cache.load(spec) is None

    # The executor consequently re-runs the cell instead of trusting it.
    executor = SweepExecutor(workers=1, cache_dir=tmp_path)
    (rerun,) = executor.run([spec])
    assert executor.cache_hits == 0
    assert rerun == result
    # ... and the re-run repaired the slot with an honest record.
    assert cache.load(spec) == result
    assert executor.run([spec]) == [rerun]
    assert executor.cache_hits == 1


def test_partition_cached_splits_hits_and_pending(tmp_path, spec, result):
    cache = ResultCache(tmp_path)
    cache.store(result)
    other = spec.with_seed(spec.seed + 1)
    results, pending, hits = partition_cached([other, spec, other], cache)
    assert results == [None, result, None]
    assert pending == [0, 2]
    assert hits == 1
