"""Unit tests of the sweep wire stack: framing, envelopes, payloads.

Covers the three layers the distributed executor composes:

* :mod:`repro.network.asyncio_runtime.framing` — length-prefixed frames
  (round-trip, truncation, oversized prefixes);
* :mod:`repro.scenarios.serialize` — spec/result payloads (round-trip,
  garbage, wrong-type rejection);
* :mod:`repro.runner.wire` — tagged envelopes (round-trip of every
  message kind, garbage/short/bad-magic frames, and the version-tag
  rejection an incompatible worker triggers).
"""

import asyncio
import pickle

import pytest

from repro.network.asyncio_runtime.framing import (
    MAX_FRAME_BYTES,
    FrameError,
    LENGTH,
    encode_frame,
    read_frame,
)
from repro.runner import wire
from repro.scenarios import ScenarioSpec, TopologySpec, run_scenario
from repro.scenarios.serialize import (
    SerializationError,
    dumps_result,
    dumps_spec,
    loads_result,
    loads_spec,
)


@pytest.fixture(scope="module")
def spec():
    return ScenarioSpec(
        name="wire-test",
        topology=TopologySpec(kind="complete", n=4),
        f=0,
        seed=11,
    )


@pytest.fixture(scope="module")
def result(spec):
    return run_scenario(spec)


def read_all_frames(data: bytes):
    """Decode every frame of ``data`` through the real reader coroutine."""

    async def drain():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = []
        while True:
            try:
                frames.append(await read_frame(reader))
            except asyncio.IncompleteReadError:
                return frames

    return asyncio.run(drain())


def read_one_frame(data: bytes) -> bytes:
    async def one():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(one())


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_frames_round_trip_back_to_back(self):
        payloads = [b"", b"x", b"hello" * 100]
        stream = b"".join(encode_frame(p) for p in payloads)
        assert read_all_frames(stream) == payloads

    def test_truncated_frame_raises_incomplete_read(self):
        frame = encode_frame(b"truncate-me")
        with pytest.raises(asyncio.IncompleteReadError):
            read_one_frame(frame[:-3])

    def test_truncated_header_raises_incomplete_read(self):
        with pytest.raises(asyncio.IncompleteReadError):
            read_one_frame(LENGTH.pack(10)[:2])

    def test_oversized_prefix_is_rejected_not_allocated(self):
        header = LENGTH.pack(MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError):
            read_one_frame(header)

    def test_oversized_payload_is_rejected_at_encode_time(self):
        class HugeBytes(bytes):
            def __len__(self):
                return MAX_FRAME_BYTES + 1

        with pytest.raises(FrameError):
            encode_frame(HugeBytes())


# ----------------------------------------------------------------------
# Spec / result payload serialization
# ----------------------------------------------------------------------
class TestSerialize:
    def test_spec_round_trip(self, spec):
        assert loads_spec(dumps_spec(spec)) == spec

    def test_result_round_trip(self, result):
        restored = loads_result(dumps_result(result))
        assert restored == result
        assert restored.spec == result.spec
        assert restored.metrics.total_bytes == result.metrics.total_bytes

    def test_garbage_payload_raises_serialization_error(self):
        with pytest.raises(SerializationError):
            loads_spec(b"this is not a pickle")
        with pytest.raises(SerializationError):
            loads_result(b"\x80\x04 truncated")

    def test_wrong_type_is_rejected(self, spec, result):
        with pytest.raises(SerializationError):
            loads_result(dumps_spec(spec))
        with pytest.raises(SerializationError):
            loads_spec(dumps_result(result))
        with pytest.raises(SerializationError):
            loads_spec(pickle.dumps({"not": "a spec"}))

    def test_dumps_validates_input_type(self, spec):
        with pytest.raises(SerializationError):
            dumps_spec("not a spec")
        with pytest.raises(SerializationError):
            dumps_result(spec)


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
class TestEnvelope:
    def test_control_messages_round_trip(self):
        for frame, kind in [
            (wire.encode_hello(), wire.HELLO),
            (wire.encode_welcome(), wire.WELCOME),
            (wire.encode_shutdown(), wire.SHUTDOWN),
        ]:
            decoded_kind, body = wire.decode_envelope(frame)
            assert decoded_kind == kind
            assert body == b""

    def test_task_round_trip(self, spec):
        kind, body = wire.decode_envelope(wire.encode_task(7, spec))
        assert kind == wire.TASK
        assert wire.decode_task(body) == (7, spec)

    def test_result_round_trip(self, result):
        kind, body = wire.decode_envelope(wire.encode_result(3, result))
        assert kind == wire.RESULT
        index, restored = wire.decode_result(body)
        assert index == 3
        assert restored == result

    def test_error_and_heartbeat_round_trip(self):
        kind, body = wire.decode_envelope(wire.encode_error(9, "boom ✗"))
        assert kind == wire.ERROR
        assert wire.decode_error(body) == (9, "boom ✗")
        kind, body = wire.decode_envelope(wire.encode_heartbeat(4))
        assert kind == wire.HEARTBEAT
        assert wire.decode_heartbeat(body) == 4

    def test_reject_round_trip(self):
        kind, body = wire.decode_envelope(wire.encode_reject("bad version"))
        assert kind == wire.REJECT
        assert wire.decode_reject(body) == "bad version"

    def test_garbage_frame_raises_wire_error(self):
        with pytest.raises(wire.WireError):
            wire.decode_envelope(b"GARBAGEGARBAGE")

    def test_short_frame_raises_wire_error(self):
        with pytest.raises(wire.WireError):
            wire.decode_envelope(wire.WIRE_MAGIC)  # header cut off

    def test_unknown_kind_raises_wire_error(self):
        frame = wire.WIRE_MAGIC + bytes((wire.WIRE_VERSION, 0xEE))
        with pytest.raises(wire.WireError):
            wire.decode_envelope(frame)
        with pytest.raises(wire.WireError):
            wire.encode_envelope(0xEE)

    def test_version_tag_rejects_incompatible_peer(self):
        frame = wire.WIRE_MAGIC + bytes((wire.WIRE_VERSION + 1, wire.HELLO))
        with pytest.raises(wire.WireVersionError) as excinfo:
            wire.decode_envelope(frame)
        assert excinfo.value.version == wire.WIRE_VERSION + 1
        # The version error is a WireError, so handshake code can treat
        # "broken peer" uniformly while still telling the reason apart.
        assert isinstance(excinfo.value, wire.WireError)

    def test_task_with_garbage_body_raises_wire_error(self):
        _, body = wire.decode_envelope(
            wire.encode_envelope(wire.TASK, b"\x00\x00\x00\x01not-a-pickle")
        )
        with pytest.raises(wire.WireError):
            wire.decode_task(body)

    def test_body_without_index_raises_wire_error(self):
        with pytest.raises(wire.WireError):
            wire.decode_task(b"\x01")
        with pytest.raises(wire.WireError):
            wire.decode_heartbeat(b"")

    def test_transposed_kinds_are_rejected(self, spec, result):
        # A TASK body fed to the result decoder must fail loudly, not
        # hand back a spec where a result is expected.
        _, task_body = wire.decode_envelope(wire.encode_task(1, spec))
        with pytest.raises(wire.WireError):
            wire.decode_result(task_body)
        _, result_body = wire.decode_envelope(wire.encode_result(1, result))
        with pytest.raises(wire.WireError):
            wire.decode_task(result_body)
