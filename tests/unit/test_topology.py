"""Unit tests for topology generation and analysis."""

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import TopologyError
from repro.topology.analysis import (
    all_pairs_min_disjoint_paths,
    disjoint_path_count,
    meets_connectivity_requirement,
    require_connectivity,
    vertex_connectivity,
)
from repro.topology.generators import (
    Topology,
    complete_topology,
    harary_topology,
    line_topology,
    random_regular_topology,
    ring_topology,
    torus_topology,
)


class TestTopologyType:
    def test_from_edges(self):
        topo = Topology.from_edges([0, 1, 2], [(0, 1), (1, 2)])
        assert topo.n == 3
        assert topo.edge_count == 2
        assert topo.neighbors(1) == frozenset({0, 2})
        assert topo.has_edge(0, 1)
        assert not topo.has_edge(0, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Topology.from_edges([0, 1], [(0, 0)])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(TopologyError):
            Topology.from_edges([0, 1], [(0, 2)])

    def test_unknown_node_lookup_rejected(self):
        topo = ring_topology(4)
        with pytest.raises(TopologyError):
            topo.neighbors(99)

    def test_degrees(self):
        topo = ring_topology(5)
        assert topo.degree(0) == 2
        assert topo.min_degree() == 2

    def test_to_networkx_round_trip(self):
        topo = torus_topology(3, 3)
        again = Topology.from_networkx(topo.to_networkx())
        assert again.adjacency == topo.adjacency

    def test_iteration_yields_sorted_nodes(self):
        topo = Topology.from_edges([5, 3, 1], [(1, 3), (3, 5)])
        assert list(topo) == [1, 3, 5]


class TestGenerators:
    def test_complete_topology(self):
        topo = complete_topology(6)
        assert topo.is_fully_connected()
        assert topo.vertex_connectivity() == 5

    def test_ring_is_two_connected(self):
        assert ring_topology(8).vertex_connectivity() == 2

    def test_line_is_one_connected(self):
        assert line_topology(5).vertex_connectivity() == 1

    def test_torus_is_four_connected(self):
        assert torus_topology(3, 4).vertex_connectivity() == 4

    def test_harary_even_degree(self):
        topo = harary_topology(10, 4)
        assert topo.min_degree() == 4
        assert topo.vertex_connectivity() == 4

    def test_harary_odd_degree(self):
        topo = harary_topology(10, 5)
        assert topo.vertex_connectivity() == 5

    def test_harary_odd_degree_odd_nodes(self):
        topo = harary_topology(9, 5)
        assert topo.vertex_connectivity() == 5

    def test_harary_rejects_k_ge_n(self):
        with pytest.raises(TopologyError):
            harary_topology(4, 4)

    def test_random_regular_degree_and_connectivity(self):
        topo = random_regular_topology(16, 5, seed=3)
        assert all(topo.degree(p) == 5 for p in topo.nodes)
        assert topo.vertex_connectivity() >= 5

    def test_random_regular_with_lower_connectivity_target(self):
        topo = random_regular_topology(12, 6, seed=1, min_connectivity=5)
        assert topo.vertex_connectivity() >= 5

    def test_random_regular_deterministic_for_seed(self):
        a = random_regular_topology(14, 4, seed=9)
        b = random_regular_topology(14, 4, seed=9)
        assert a.adjacency == b.adjacency

    def test_random_regular_odd_product_rejected(self):
        with pytest.raises(TopologyError):
            random_regular_topology(9, 3, seed=1)

    def test_random_regular_degree_ge_n_rejected(self):
        with pytest.raises(TopologyError):
            random_regular_topology(5, 5, seed=1)

    def test_random_regular_impossible_connectivity_rejected(self):
        with pytest.raises(TopologyError):
            random_regular_topology(10, 3, seed=1, min_connectivity=4)


class TestAnalysis:
    def test_vertex_connectivity_wrapper(self):
        assert vertex_connectivity(ring_topology(6)) == 2

    def test_meets_connectivity_requirement(self):
        config = SystemConfig.for_system(10, 2)  # needs 5-connectivity
        assert meets_connectivity_requirement(harary_topology(10, 5), config)
        assert not meets_connectivity_requirement(harary_topology(10, 4), config)

    def test_meets_requirement_with_f_zero_needs_connected_graph(self):
        config = SystemConfig.for_system(5, 0)
        assert meets_connectivity_requirement(line_topology(5), config)

    def test_require_connectivity_raises(self):
        config = SystemConfig.for_system(10, 2)
        with pytest.raises(TopologyError):
            require_connectivity(ring_topology(10), config)

    def test_disjoint_path_count_adjacent_nodes(self):
        topo = complete_topology(5)
        assert disjoint_path_count(topo, 0, 1) == 4

    def test_disjoint_path_count_ring(self):
        assert disjoint_path_count(ring_topology(6), 0, 3) == 2

    def test_disjoint_path_count_same_node_rejected(self):
        with pytest.raises(TopologyError):
            disjoint_path_count(ring_topology(5), 2, 2)

    def test_all_pairs_minimum_matches_connectivity(self):
        # Menger: the minimum over pairs of vertex-disjoint path counts
        # equals the graph's vertex connectivity.
        topo = harary_topology(8, 3)
        minimum, witnesses = all_pairs_min_disjoint_paths(topo)
        assert minimum == topo.vertex_connectivity()
        assert witnesses
