"""Unit tests for the churn support layer around the fault events.

The simulator semantics live in ``test_fault_events.py``; this file
covers everything the churn faults plug into: the hash-suppression
contract of the extended :class:`AdversarySpec`, the JSON corpus codec
(churn events and bytes payloads), the connectivity-under-churn
analysis helper, and the fuzz sampler / shrinker integration.
"""

from itertools import islice

import pytest

from repro.core.errors import TopologyError
from repro.fuzz.sample import stream_fuzz_specs
from repro.scenarios import (
    AdversarySpec,
    DelaySpec,
    JoinAt,
    LeaveAt,
    RewireLinkAt,
    ScenarioSpec,
    SpecJSONError,
    TopologySpec,
    loads_spec_json,
    dumps_spec_json,
    spec_from_jsonable,
    spec_to_jsonable,
)
from repro.scenarios.reduce import reduction_candidates
from repro.scenarios.spec import _canonical
from repro.topology.analysis import connectivity_under_churn
from repro.topology.generators import harary_topology, ring_topology


def ring_spec(n=6, **kwargs):
    defaults = dict(
        topology=TopologySpec(kind="ring", n=n),
        delay=DelaySpec(kind="fixed", mean_ms=10.0),
        f=0,
        seed=1,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestHashSuppression:
    def test_default_conflicting_payload_is_suppressed(self):
        # The field was appended after the hash freeze: at its default it
        # must be absent from the canonical form, so every pre-existing
        # scenario hash (goldens, cache slots, corpus keys) is unchanged.
        canonical = _canonical(AdversarySpec(behaviour="equivocate"))
        assert "conflicting_payload" not in canonical

    def test_pinned_conflicting_payload_changes_the_hash(self):
        base = ring_spec(f=1, adversaries=(AdversarySpec(behaviour="equivocate"),))
        pinned = ring_spec(
            f=1,
            adversaries=(
                AdversarySpec(behaviour="equivocate", conflicting_payload=b"evil"),
            ),
        )
        assert base.scenario_hash() != pinned.scenario_hash()

    def test_non_equivocate_payload_rejected(self):
        with pytest.raises(Exception):
            AdversarySpec(behaviour="mute", conflicting_payload=b"evil")


class TestChurnSpecJSON:
    def test_churn_faults_round_trip(self):
        spec = ring_spec(
            faults=(
                JoinAt(pid=3, time_ms=20.0),
                LeaveAt(pid=4, time_ms=40.0),
                RewireLinkAt(pid=1, old_peer=2, new_peer=4, time_ms=10.0),
            )
        )
        assert loads_spec_json(dumps_spec_json(spec)) == spec

    def test_bytes_payload_round_trips(self):
        spec = ring_spec(
            f=1,
            adversaries=(
                AdversarySpec(
                    behaviour="equivocate", conflicting_payload=b"\x00\xffevil"
                ),
            ),
        )
        restored = loads_spec_json(dumps_spec_json(spec))
        assert restored == spec
        assert restored.adversaries[0].conflicting_payload == b"\x00\xffevil"

    def test_bytes_marker_is_hex_encoded(self):
        jsonable = spec_to_jsonable(
            AdversarySpec(behaviour="equivocate", conflicting_payload=b"\x01\x02")
        )
        assert jsonable["conflicting_payload"] == {"__bytes__": "0102"}

    def test_malformed_bytes_marker_rejected(self):
        with pytest.raises(SpecJSONError):
            spec_from_jsonable({"__bytes__": "not-hex"})


class TestConnectivityUnderChurn:
    def test_no_churn_reports_the_static_connectivity(self):
        report = connectivity_under_churn(ring_topology(6), (), f=0)
        assert report.required == 1
        assert len(report.snapshots) == 1
        assert report.snapshots[0].connectivity == 2
        assert report.held

    def test_leave_below_the_bound_is_flagged(self):
        # Harary H(3, 7) is exactly 3-connected = 2f+1 for f=1; one
        # departure drops a vertex and the bound no longer holds.
        topology = harary_topology(7, 3)
        report = connectivity_under_churn(
            topology, (LeaveAt(pid=4, time_ms=10.0),), f=1
        )
        assert report.required == 3
        assert report.snapshots[0].meets_bound
        assert not report.snapshots[-1].meets_bound
        assert not report.held

    def test_pending_joiner_is_not_an_initial_member(self):
        topology = ring_topology(6)
        report = connectivity_under_churn(
            topology, (JoinAt(pid=3, time_ms=50.0),), f=0
        )
        # Initial graph: the ring minus the pending joiner is a line
        # (1-connected); after the join the full ring is back.
        assert report.snapshots[0].connectivity == 1
        assert report.snapshots[-1].connectivity == 2
        assert report.held

    def test_events_apply_in_time_order(self):
        topology = ring_topology(6)
        report = connectivity_under_churn(
            topology,
            (LeaveAt(pid=4, time_ms=30.0), LeaveAt(pid=1, time_ms=10.0)),
            f=0,
        )
        assert [s.event for s in report.snapshots[1:]] == [
            "leave(1)",
            "leave(4)",
        ]

    def test_non_churn_faults_are_ignored(self):
        from repro.scenarios import CrashAt

        report = connectivity_under_churn(
            ring_topology(6), (CrashAt(pid=3, time_ms=0.0),), f=0
        )
        assert len(report.snapshots) == 1

    def test_negative_f_rejected(self):
        with pytest.raises(TopologyError):
            connectivity_under_churn(ring_topology(6), (), f=-1)


class TestFuzzChurnIntegration:
    def test_sampler_emits_extended_behaviours_and_churn(self):
        specs = list(
            islice(
                stream_fuzz_specs(
                    seed=3, behaviour_fraction=1.0, churn_fraction=1.0
                ),
                48,
            )
        )
        extended = {
            adversary.behaviour
            for spec in specs
            for adversary in spec.adversaries
            if adversary.behaviour
            in ("alter_sender", "send_empty", "limited_broadcast", "truncate_path")
        }
        churned = [
            fault
            for spec in specs
            for fault in spec.faults
            if isinstance(fault, (JoinAt, LeaveAt, RewireLinkAt))
        ]
        assert len(extended) >= 2  # the decoration draws across the taxonomy
        assert churned
        assert all(fault.pid != 0 for fault in churned)  # never the source

    def test_sampler_stream_is_deterministic(self):
        def hashes():
            return [
                spec.scenario_hash()
                for spec in islice(
                    stream_fuzz_specs(
                        seed=5, behaviour_fraction=0.5, churn_fraction=0.5
                    ),
                    32,
                )
            ]

        assert hashes() == hashes()

    def test_shrinker_offers_to_drop_churn_faults(self):
        spec = ring_spec(
            faults=(
                JoinAt(pid=3, time_ms=20.0),
                RewireLinkAt(pid=1, old_peer=2, new_peer=4, time_ms=10.0),
            )
        )
        candidates = list(reduction_candidates(spec))
        fault_sets = [candidate.faults for _, candidate in candidates]
        assert (spec.faults[1],) in fault_sets  # JoinAt dropped
        assert (spec.faults[0],) in fault_sets  # RewireLinkAt dropped

    def test_shrinker_remaps_churn_pids_when_shrinking_topology(self):
        # _referenced_pids must see old_peer/new_peer, or a topology
        # shrink could orphan a rewire endpoint.
        spec = ring_spec(
            n=8,
            faults=(RewireLinkAt(pid=1, old_peer=2, new_peer=6, time_ms=10.0),),
        )
        for _, candidate in reduction_candidates(spec):
            n = candidate.topology.n
            for fault in candidate.faults:
                if isinstance(fault, RewireLinkAt):
                    assert fault.pid < n
                    assert fault.old_peer < n
                    assert fault.new_peer < n
