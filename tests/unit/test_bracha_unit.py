"""Unit tests for Bracha's protocol: quorum state machine and message flow."""

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.events import BRBDeliver, sends
from repro.core.messages import BrachaMessage, MessageType
from repro.brb.bracha import BrachaBroadcast, BrachaQuorumState


def make_state(n=7, f=2, echo_amplification=False):
    return BrachaQuorumState(
        config=SystemConfig.for_system(n, f), echo_amplification=echo_amplification
    )


class TestQuorumState:
    def test_send_triggers_single_echo(self):
        state = make_state()
        actions = state.on_send(b"m")
        assert [a.kind for a in actions] == ["echo"]
        assert state.on_send(b"m") == []

    def test_echo_quorum_triggers_ready(self):
        state = make_state(n=7, f=2)  # echo quorum = 5
        for sender in range(4):
            assert state.on_echo(sender, b"m") == []
        actions = state.on_echo(4, b"m")
        assert [a.kind for a in actions] == ["ready"]

    def test_duplicate_echo_not_counted(self):
        state = make_state(n=7, f=2)
        for _ in range(10):
            state.on_echo(0, b"m")
        assert state.echo_count(b"m") == 1

    def test_echo_amplification_disabled_by_default(self):
        state = make_state(n=7, f=2)
        state.on_echo(0, b"m")
        state.on_echo(1, b"m")
        actions = state.on_echo(2, b"m")  # f+1 = 3 echoes
        assert actions == []

    def test_echo_amplification_when_enabled(self):
        state = make_state(n=7, f=2, echo_amplification=True)
        state.on_echo(0, b"m")
        state.on_echo(1, b"m")
        actions = state.on_echo(2, b"m")
        assert [a.kind for a in actions] == ["echo"]

    def test_ready_amplification(self):
        state = make_state(n=7, f=2)
        state.on_ready(0, b"m")
        state.on_ready(1, b"m")
        actions = state.on_ready(2, b"m")  # f+1 = 3 readys
        assert [a.kind for a in actions] == ["ready"]

    def test_delivery_after_two_f_plus_one_readys(self):
        state = make_state(n=7, f=2)
        kinds = []
        for sender in range(5):
            kinds.extend(a.kind for a in state.on_ready(sender, b"m"))
        assert "deliver" in kinds
        assert kinds.count("deliver") == 1
        # Further readys never deliver twice.
        assert state.on_ready(6, b"m") == []

    def test_quorums_are_per_value(self):
        state = make_state(n=7, f=2)
        for sender in range(3):
            state.on_echo(sender, b"a")
        for sender in range(3, 6):
            state.on_echo(sender, b"b")
        # Neither value reached the echo quorum of 5.
        assert not state.sent_ready
        assert state.echo_count(b"a") == 3
        assert state.echo_count(b"b") == 3

    def test_single_ready_per_broadcast_even_for_other_value(self):
        state = make_state(n=7, f=2)
        for sender in range(5):
            state.on_echo(sender, b"a")
        assert state.sent_ready
        # A quorum for a second value does not produce a second ready.
        for sender in range(5):
            assert all(a.kind != "ready" for a in state.on_echo(sender, b"b"))


class TestBrachaBroadcast:
    def _protocols(self, n=4, f=1):
        config = SystemConfig.for_system(n, f)
        return config, {
            pid: BrachaBroadcast(pid, config, [p for p in range(n) if p != pid])
            for pid in range(n)
        }

    def test_resilience_enforced(self):
        config = SystemConfig.for_system(6, 2)
        with pytest.raises(ConfigurationError):
            BrachaBroadcast(0, config, [1, 2, 3, 4, 5])

    def test_broadcast_sends_send_and_echo_to_everyone(self):
        _, protocols = self._protocols()
        commands = protocols[0].broadcast(b"m", bid=3)
        send_messages = [c.message for c in sends(commands)]
        assert sum(1 for m in send_messages if m.mtype == MessageType.SEND) == 3
        assert sum(1 for m in send_messages if m.mtype == MessageType.ECHO) == 3

    def test_send_from_wrong_sender_ignored(self):
        _, protocols = self._protocols()
        forged = BrachaMessage(MessageType.SEND, source=2, bid=0, payload=b"m")
        assert protocols[1].on_message(3, forged) == []

    def test_send_from_unknown_source_ignored(self):
        _, protocols = self._protocols()
        forged = BrachaMessage(MessageType.SEND, source=77, bid=0, payload=b"m")
        assert protocols[1].on_message(2, forged) == []

    def test_non_bracha_message_ignored(self):
        _, protocols = self._protocols()
        assert protocols[1].on_message(0, "garbage") == []

    def test_full_exchange_delivers(self):
        _, protocols = self._protocols(n=4, f=1)
        # Simulate the full message exchange synchronously.
        inboxes = {pid: [] for pid in protocols}
        for command in protocols[0].broadcast(b"m"):
            inboxes[command.dest].append((0, command.message))
        delivered = set()
        # Iterate a few rounds of synchronous delivery.
        for _ in range(6):
            new_inboxes = {pid: [] for pid in protocols}
            for pid, inbox in inboxes.items():
                for sender, message in inbox:
                    for command in protocols[pid].on_message(sender, message):
                        if isinstance(command, BRBDeliver):
                            delivered.add(pid)
                        else:
                            new_inboxes[command.dest].append((pid, command.message))
            inboxes = new_inboxes
        assert delivered == {0, 1, 2, 3}
        assert all(p.delivered[(0, 0)] == b"m" for p in protocols.values())

    def test_state_size_estimate(self):
        _, protocols = self._protocols()
        protocols[1].on_message(0, BrachaMessage(MessageType.ECHO, 0, 0, b"m"))
        assert protocols[1].state_size_estimate() >= 1
