"""Unit tests for the Byzantine behaviour library."""

import pytest

from repro.core.config import SystemConfig
from repro.core.events import SendTo, sends
from repro.core.messages import (
    BrachaMessage,
    CrossLayerMessage,
    DolevMessage,
    MessageType,
)
from repro.core.modifications import ModificationSet
from repro.brb.optimized import CrossLayerBrachaDolev
from repro.network.adversary import (
    BEHAVIOUR_NAMES,
    CrashingProcess,
    EmptyPayloadRelay,
    EquivocatingSource,
    LimitedBroadcastRelay,
    MessageDroppingRelay,
    MuteProcess,
    PathForgingRelay,
    PathTruncatingRelay,
    SenderRewritingRelay,
    build_behaviour,
)


def correct_protocol(pid=1, n=7, f=1, neighbors=(0, 2, 3)):
    config = SystemConfig.for_system(n, f)
    return CrossLayerBrachaDolev(
        pid, config, list(neighbors), modifications=ModificationSet.dolev_optimized()
    )


def sample_echo(path=()):
    return CrossLayerMessage(
        mtype=MessageType.ECHO, source=0, bid=0, creator=0, payload=b"m", path=path
    )


class _StaticInner:
    """A fake correct protocol replying with a fixed command batch."""

    def __init__(self, pid=1, neighbors=(0, 2, 3, 4), commands=()):
        self.process_id = pid
        self.neighbors = tuple(neighbors)
        self._commands = list(commands)

    def on_start(self):
        return []

    def broadcast(self, payload, bid=0):
        return list(self._commands)

    def on_message(self, sender, message):
        return list(self._commands)


class TestMuteProcess:
    def test_never_sends(self):
        mute = MuteProcess(1, [0, 2])
        assert mute.broadcast(b"x") == []
        assert mute.on_message(0, sample_echo()) == []
        assert mute.on_start() == []
        assert mute.state_size_estimate() == 0


class TestCrashingProcess:
    def test_behaves_correctly_before_crash(self):
        crashing = CrashingProcess(correct_protocol(), crash_after=100)
        assert not crashing.crashed
        assert crashing.on_message(0, sample_echo())  # forwards/relays something

    def test_stops_after_crash_point(self):
        crashing = CrashingProcess(correct_protocol(), crash_after=1)
        crashing.on_message(0, sample_echo())
        assert crashing.crashed
        assert crashing.on_message(0, sample_echo(path=(5,))) == []
        assert crashing.broadcast(b"x") == []

    def test_negative_crash_point_rejected(self):
        with pytest.raises(ValueError):
            CrashingProcess(correct_protocol(), crash_after=-1)

    def test_crash_mid_message_ships_floor_half_prefix(self):
        # Regression: the crash branch used to read
        # ``max(0, len(commands) // 2)`` — the ``max`` guard was dead
        # (a floor-halved length is never negative).  Pin the intended
        # semantics: the crashing process gets exactly the first
        # ``floor(n / 2)`` of its outgoing commands onto the wire.
        for total in (1, 2, 3, 4, 5):
            batch = [SendTo(dest=d, message=sample_echo()) for d in range(total)]
            crashing = CrashingProcess(_StaticInner(commands=batch), crash_after=1)
            out = crashing.on_message(0, sample_echo())
            assert out == batch[: total // 2]
            assert crashing.crashed


class TestMessageDroppingRelay:
    def test_drop_probability_validated(self):
        with pytest.raises(ValueError):
            MessageDroppingRelay(correct_protocol(), drop_probability=1.5)

    def test_drop_all(self):
        dropper = MessageDroppingRelay(correct_protocol(), drop_probability=1.0)
        assert sends(dropper.on_message(0, sample_echo())) == ()
        assert dropper.dropped > 0

    def test_drop_none_is_transparent(self):
        inner = correct_protocol()
        reference = correct_protocol()
        dropper = MessageDroppingRelay(inner, drop_probability=0.0)
        assert len(sends(dropper.on_message(0, sample_echo()))) == len(
            sends(reference.on_message(0, sample_echo()))
        )


class TestPathForgingRelay:
    def test_paths_are_rewritten(self):
        config = SystemConfig.for_system(7, 1)
        forger = PathForgingRelay(correct_protocol(), config, seed=3)
        commands = sends(forger.on_message(0, sample_echo(path=(4, 5))))
        assert commands
        assert forger.forged > 0
        for command in commands:
            message = command.message
            if isinstance(message, CrossLayerMessage) and message.path is not None:
                assert all(config.is_process(p) for p in message.path)

    def test_dolev_messages_also_forged(self):
        class _Passthrough:
            process_id = 1
            neighbors = (0, 2)

            def on_message(self, sender, message):
                return [SendTo(dest=2, message=message)]

            def on_start(self):
                return []

            def broadcast(self, payload, bid=0):
                return []

        config = SystemConfig.for_system(5, 1)
        forger = PathForgingRelay(_Passthrough(), config, seed=1)
        message = DolevMessage(content=b"x", path=(3, 4))
        out = sends(forger.on_message(0, message))
        assert out and isinstance(out[0].message, DolevMessage)


class TestEquivocatingSource:
    def test_sends_conflicting_payloads(self):
        source = EquivocatingSource(0, [1, 2, 3, 4], family="cross_layer")
        commands = sends(source.broadcast(b"value-a", bid=0))
        payloads = {c.message.payload for c in commands}
        assert len(commands) == 4
        assert len(payloads) == 2

    def test_explicit_conflicting_payload(self):
        source = EquivocatingSource(
            0, [1, 2], family="bracha", conflicting_payload=b"evil"
        )
        commands = sends(source.broadcast(b"good", bid=0))
        assert {c.message.payload for c in commands} == {b"good", b"evil"}

    def test_bracha_dolev_family_wraps_in_dolev_message(self):
        source = EquivocatingSource(0, [1, 2], family="bracha_dolev")
        commands = sends(source.broadcast(b"x", bid=0))
        assert all(isinstance(c.message, DolevMessage) for c in commands)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            EquivocatingSource(0, [1], family="unknown")

    @pytest.mark.parametrize("degree", [2, 3, 4, 5, 6, 7])
    def test_both_payloads_on_the_wire_for_every_degree(self, degree):
        # Regression: the old split left some degrees sending only one
        # payload, so the equivocator degenerated to a correct (or
        # merely wrong-value) source and agreement was never stressed.
        # Every degree >= 2 — odd degrees included — must put BOTH
        # payloads on the wire, ceil(n/2) genuine and floor(n/2)
        # conflicting.
        neighbors = list(range(1, degree + 1))
        source = EquivocatingSource(
            0, neighbors, family="cross_layer", conflicting_payload=b"evil"
        )
        commands = sends(source.broadcast(b"good", bid=0))
        assert len(commands) == degree
        payloads = [c.message.payload for c in commands]
        assert payloads.count(b"good") == (degree + 1) // 2
        assert payloads.count(b"evil") == degree // 2

    def test_single_neighbor_deterministically_gets_genuine_payload(self):
        source = EquivocatingSource(0, [1], family="cross_layer")
        commands = sends(source.broadcast(b"good", bid=0))
        assert [(c.dest, c.message.payload) for c in commands] == [(1, b"good")]

    def test_seeded_conflicting_payload_is_deterministic_per_seed(self):
        payload = b"genuine"

        def other(seed):
            source = EquivocatingSource(0, [1, 2], family="bracha", seed=seed)
            commands = sends(source.broadcast(payload, bid=0))
            (conflicting,) = {c.message.payload for c in commands} - {payload}
            return conflicting

        assert other(5) == other(5)  # same seed, same lie
        assert other(5) != other(6)  # different seeds, different lies
        assert other(5) != payload
        # Seed 0 keeps the historical derivation (reversed payload).
        assert other(0) == bytes(reversed(payload))


class TestPathTruncatingRelay:
    def test_paths_are_truncated_to_a_proper_prefix(self):
        batch = [SendTo(dest=2, message=sample_echo(path=(3, 4, 5)))]
        relay = PathTruncatingRelay(_StaticInner(commands=batch), seed=1)
        commands = sends(relay.on_message(0, sample_echo()))
        assert commands and relay.truncated > 0
        for command in commands:
            path = command.message.path
            assert len(path) < 3
            assert path == (3, 4, 5)[: len(path)]

    def test_dolev_messages_also_truncated(self):
        batch = [SendTo(dest=2, message=DolevMessage(content=b"x", path=(3, 4)))]
        relay = PathTruncatingRelay(_StaticInner(commands=batch), seed=1)
        out = sends(relay.on_message(0, DolevMessage(content=b"x", path=(3,))))
        assert out and isinstance(out[0].message, DolevMessage)
        assert len(out[0].message.path) < 2

    def test_empty_paths_are_left_alone(self):
        batch = [SendTo(dest=2, message=sample_echo(path=()))]
        relay = PathTruncatingRelay(_StaticInner(commands=batch), seed=1)
        out = sends(relay.on_message(0, sample_echo()))
        assert out[0].message.path == ()
        assert relay.truncated == 0

    def test_same_seed_same_mutations(self):
        batch = [SendTo(dest=2, message=sample_echo(path=(3, 4, 5, 6)))]
        runs = []
        for _ in range(2):
            relay = PathTruncatingRelay(_StaticInner(commands=batch), seed=9)
            runs.append(
                [
                    c.message.path
                    for c in sends(relay.on_message(0, sample_echo()))
                ]
                + [
                    c.message.path
                    for c in sends(relay.on_message(0, sample_echo()))
                ]
            )
        assert runs[0] == runs[1]


class TestSenderRewritingRelay:
    def _bracha(self, source=0):
        return BrachaMessage(
            mtype=MessageType.ECHO, source=source, bid=0, payload=b"m"
        )

    def test_bracha_source_is_rewritten(self):
        config = SystemConfig.for_system(7, 1)
        batch = [SendTo(dest=2, message=self._bracha(source=0))]
        relay = SenderRewritingRelay(_StaticInner(commands=batch), config, seed=3)
        commands = sends(relay.on_message(0, self._bracha()))
        assert commands and relay.rewritten > 0
        for command in commands:
            assert command.message.source != 0
            assert config.is_process(command.message.source)

    def test_dolev_wrapped_bracha_source_is_rewritten(self):
        config = SystemConfig.for_system(7, 1)
        batch = [
            SendTo(dest=2, message=DolevMessage(content=self._bracha(), path=(4,)))
        ]
        relay = SenderRewritingRelay(_StaticInner(commands=batch), config, seed=3)
        commands = sends(relay.on_message(0, self._bracha()))
        assert commands[0].message.content.source != 0
        assert commands[0].message.path == (4,)  # the route itself is untouched

    def test_cross_layer_source_is_rewritten(self):
        config = SystemConfig.for_system(7, 1)
        batch = [SendTo(dest=2, message=sample_echo(path=(4,)))]
        relay = SenderRewritingRelay(_StaticInner(commands=batch), config, seed=3)
        commands = sends(relay.on_message(0, sample_echo()))
        assert commands[0].message.source != 0

    def test_same_seed_same_fake_sources(self):
        config = SystemConfig.for_system(7, 1)
        batch = [SendTo(dest=2, message=self._bracha())]

        def run():
            relay = SenderRewritingRelay(
                _StaticInner(commands=batch), config, seed=5
            )
            return [
                sends(relay.on_message(0, self._bracha()))[0].message.source
                for _ in range(4)
            ]

        assert run() == run()


class TestEmptyPayloadRelay:
    def test_cross_layer_payload_is_emptied(self):
        batch = [SendTo(dest=2, message=sample_echo())]
        relay = EmptyPayloadRelay(_StaticInner(commands=batch))
        commands = sends(relay.on_message(0, sample_echo()))
        assert commands[0].message.payload == b""
        assert relay.emptied > 0

    def test_bracha_inside_dolev_is_emptied(self):
        inner_message = BrachaMessage(
            mtype=MessageType.SEND, source=0, bid=0, payload=b"m"
        )
        batch = [
            SendTo(dest=2, message=DolevMessage(content=inner_message, path=(3,)))
        ]
        relay = EmptyPayloadRelay(_StaticInner(commands=batch))
        commands = sends(relay.on_message(0, sample_echo()))
        assert commands[0].message.content.payload == b""
        assert commands[0].message.path == (3,)

    def test_already_empty_payload_is_left_alone(self):
        message = CrossLayerMessage(
            mtype=MessageType.ECHO, source=0, bid=0, creator=0, payload=b"", path=()
        )
        batch = [SendTo(dest=2, message=message)]
        relay = EmptyPayloadRelay(_StaticInner(commands=batch))
        commands = sends(relay.on_message(0, sample_echo()))
        assert commands[0].message is message
        assert relay.emptied == 0


class TestLimitedBroadcastRelay:
    def test_targets_are_a_nonempty_strict_subset(self):
        relay = LimitedBroadcastRelay(
            _StaticInner(neighbors=(0, 2, 3, 4)), seed=7
        )
        assert relay.targets
        assert relay.targets < set(relay.neighbors)

    def test_sends_outside_the_subset_are_suppressed(self):
        neighbors = (0, 2, 3, 4)
        batch = [SendTo(dest=d, message=sample_echo()) for d in neighbors]
        relay = LimitedBroadcastRelay(
            _StaticInner(neighbors=neighbors, commands=batch), seed=7
        )
        commands = sends(relay.on_message(0, sample_echo()))
        assert {c.dest for c in commands} == set(relay.targets)
        assert relay.suppressed == len(neighbors) - len(relay.targets) > 0

    def test_single_neighbor_is_kept(self):
        relay = LimitedBroadcastRelay(_StaticInner(neighbors=(0,)), seed=7)
        assert relay.targets == {0}

    def test_same_seed_same_subset(self):
        subsets = {
            LimitedBroadcastRelay(
                _StaticInner(neighbors=(0, 2, 3, 4, 5)), seed=11
            ).targets
            for _ in range(3)
        }
        assert len(subsets) == 1


class TestBuildBehaviour:
    EXPECTED_TYPES = {
        "mute": MuteProcess,
        "drop": MessageDroppingRelay,
        "forge": PathForgingRelay,
        "equivocate": EquivocatingSource,
        "alter_sender": SenderRewritingRelay,
        "send_empty": EmptyPayloadRelay,
        "limited_broadcast": LimitedBroadcastRelay,
        "truncate_path": PathTruncatingRelay,
    }

    def test_every_registered_name_constructs(self):
        config = SystemConfig.for_system(7, 1)
        assert set(BEHAVIOUR_NAMES) == set(self.EXPECTED_TYPES)
        for name in BEHAVIOUR_NAMES:
            behaviour = build_behaviour(
                name,
                1,
                (0, 2, 3),
                system=config,
                inner_factory=correct_protocol,
                seed=4,
            )
            assert isinstance(behaviour, self.EXPECTED_TYPES[name])

    def test_equivocate_threads_payload_and_seed(self):
        # Regression: build_behaviour used to drop conflicting_payload
        # (and never passed seed) for "equivocate", so a pinned second
        # payload silently fell back to the derived one.
        config = SystemConfig.for_system(7, 1)
        behaviour = build_behaviour(
            "equivocate",
            0,
            (1, 2),
            system=config,
            inner_factory=correct_protocol,
            family="bracha",
            seed=9,
            conflicting_payload=b"evil",
        )
        assert isinstance(behaviour, EquivocatingSource)
        assert behaviour.conflicting_payload == b"evil"
        assert behaviour.seed == 9
        commands = sends(behaviour.broadcast(b"good", bid=0))
        assert {c.message.payload for c in commands} == {b"good", b"evil"}

    def test_unknown_behaviour_rejected(self):
        config = SystemConfig.for_system(7, 1)
        with pytest.raises(ValueError):
            build_behaviour(
                "gossip",
                1,
                (0, 2),
                system=config,
                inner_factory=correct_protocol,
            )
