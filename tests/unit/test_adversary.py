"""Unit tests for the Byzantine behaviour library."""

import pytest

from repro.core.config import SystemConfig
from repro.core.events import SendTo, sends
from repro.core.messages import CrossLayerMessage, DolevMessage, MessageType
from repro.core.modifications import ModificationSet
from repro.brb.optimized import CrossLayerBrachaDolev
from repro.network.adversary import (
    CrashingProcess,
    EquivocatingSource,
    MessageDroppingRelay,
    MuteProcess,
    PathForgingRelay,
)


def correct_protocol(pid=1, n=7, f=1, neighbors=(0, 2, 3)):
    config = SystemConfig.for_system(n, f)
    return CrossLayerBrachaDolev(
        pid, config, list(neighbors), modifications=ModificationSet.dolev_optimized()
    )


def sample_echo(path=()):
    return CrossLayerMessage(
        mtype=MessageType.ECHO, source=0, bid=0, creator=0, payload=b"m", path=path
    )


class TestMuteProcess:
    def test_never_sends(self):
        mute = MuteProcess(1, [0, 2])
        assert mute.broadcast(b"x") == []
        assert mute.on_message(0, sample_echo()) == []
        assert mute.on_start() == []
        assert mute.state_size_estimate() == 0


class TestCrashingProcess:
    def test_behaves_correctly_before_crash(self):
        crashing = CrashingProcess(correct_protocol(), crash_after=100)
        assert not crashing.crashed
        assert crashing.on_message(0, sample_echo())  # forwards/relays something

    def test_stops_after_crash_point(self):
        crashing = CrashingProcess(correct_protocol(), crash_after=1)
        crashing.on_message(0, sample_echo())
        assert crashing.crashed
        assert crashing.on_message(0, sample_echo(path=(5,))) == []
        assert crashing.broadcast(b"x") == []

    def test_negative_crash_point_rejected(self):
        with pytest.raises(ValueError):
            CrashingProcess(correct_protocol(), crash_after=-1)


class TestMessageDroppingRelay:
    def test_drop_probability_validated(self):
        with pytest.raises(ValueError):
            MessageDroppingRelay(correct_protocol(), drop_probability=1.5)

    def test_drop_all(self):
        dropper = MessageDroppingRelay(correct_protocol(), drop_probability=1.0)
        assert sends(dropper.on_message(0, sample_echo())) == ()
        assert dropper.dropped > 0

    def test_drop_none_is_transparent(self):
        inner = correct_protocol()
        reference = correct_protocol()
        dropper = MessageDroppingRelay(inner, drop_probability=0.0)
        assert len(sends(dropper.on_message(0, sample_echo()))) == len(
            sends(reference.on_message(0, sample_echo()))
        )


class TestPathForgingRelay:
    def test_paths_are_rewritten(self):
        config = SystemConfig.for_system(7, 1)
        forger = PathForgingRelay(correct_protocol(), config, seed=3)
        commands = sends(forger.on_message(0, sample_echo(path=(4, 5))))
        assert commands
        assert forger.forged > 0
        for command in commands:
            message = command.message
            if isinstance(message, CrossLayerMessage) and message.path is not None:
                assert all(config.is_process(p) for p in message.path)

    def test_dolev_messages_also_forged(self):
        class _Passthrough:
            process_id = 1
            neighbors = (0, 2)

            def on_message(self, sender, message):
                return [SendTo(dest=2, message=message)]

            def on_start(self):
                return []

            def broadcast(self, payload, bid=0):
                return []

        config = SystemConfig.for_system(5, 1)
        forger = PathForgingRelay(_Passthrough(), config, seed=1)
        message = DolevMessage(content=b"x", path=(3, 4))
        out = sends(forger.on_message(0, message))
        assert out and isinstance(out[0].message, DolevMessage)


class TestEquivocatingSource:
    def test_sends_conflicting_payloads(self):
        source = EquivocatingSource(0, [1, 2, 3, 4], family="cross_layer")
        commands = sends(source.broadcast(b"value-a", bid=0))
        payloads = {c.message.payload for c in commands}
        assert len(commands) == 4
        assert len(payloads) == 2

    def test_explicit_conflicting_payload(self):
        source = EquivocatingSource(
            0, [1, 2], family="bracha", conflicting_payload=b"evil"
        )
        commands = sends(source.broadcast(b"good", bid=0))
        assert {c.message.payload for c in commands} == {b"good", b"evil"}

    def test_bracha_dolev_family_wraps_in_dolev_message(self):
        source = EquivocatingSource(0, [1, 2], family="bracha_dolev")
        commands = sends(source.broadcast(b"x", bid=0))
        assert all(isinstance(c.message, DolevMessage) for c in commands)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            EquivocatingSource(0, [1], family="unknown")
