"""Unit tests for scenario specs, grids and adversary placement."""

import pytest

from repro.core.errors import ConfigurationError
from repro.scenarios import (
    AdversarySpec,
    CrashAt,
    CrashWhen,
    DelaySpec,
    LinkDropWindow,
    ObservationFilter,
    ScenarioSpec,
    TopologySpec,
    expand_grid,
    place_adversaries,
    place_byzantine,
    seed_cells,
)
from repro.network.simulation.delays import (
    AsynchronousDelay,
    BurstyLossWindow,
    FixedDelay,
    LossyDelay,
    UniformDelay,
)
from repro.topology.generators import (
    Topology,
    complete_topology,
    line_topology,
    random_regular_topology,
)


class TestTopologySpec:
    def test_builds_every_kind(self):
        assert TopologySpec(kind="complete", n=5).build().is_fully_connected()
        assert TopologySpec(kind="ring", n=6).build().min_degree() == 2
        assert TopologySpec(kind="line", n=4).build().edge_count == 3
        assert TopologySpec(kind="torus", rows=3, cols=3).build().n == 9
        assert TopologySpec(kind="harary", n=8, k=4).build().vertex_connectivity() == 4
        regular = TopologySpec(kind="random_regular", n=10, k=5, min_connectivity=5)
        assert regular.build(seed=3).vertex_connectivity() >= 5

    def test_node_count(self):
        assert TopologySpec(kind="torus", rows=3, cols=4).node_count == 12
        assert TopologySpec(kind="ring", n=7).node_count == 7

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(kind="smallworld", n=10)

    def test_random_regular_is_seed_deterministic(self):
        spec = TopologySpec(kind="random_regular", n=12, k=5, min_connectivity=5)
        assert spec.build(seed=9).adjacency == spec.build(seed=9).adjacency


class TestDelaySpec:
    def test_builds_matching_models(self):
        assert isinstance(DelaySpec(kind="fixed").build(), FixedDelay)
        assert isinstance(DelaySpec(kind="normal").build(), AsynchronousDelay)
        assert isinstance(DelaySpec(kind="uniform").build(), UniformDelay)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            DelaySpec(kind="pareto")

    def test_loss_wraps_the_base_model(self):
        model = DelaySpec(kind="fixed", mean_ms=20.0, loss=0.25).build()
        assert isinstance(model, LossyDelay)
        assert model.loss_probability == 0.25
        assert isinstance(model.base, FixedDelay)
        assert model.lossy

    def test_burst_wraps_the_base_model(self):
        model = DelaySpec(
            kind="normal", burst_period_ms=100.0, burst_len_ms=25.0
        ).build()
        assert isinstance(model, BurstyLossWindow)
        assert isinstance(model.base, AsynchronousDelay)
        assert model.in_burst(10.0) and not model.in_burst(60.0)

    def test_loss_and_burst_compose(self):
        model = DelaySpec(
            kind="fixed", loss=0.1, burst_period_ms=100.0, burst_len_ms=10.0
        ).build()
        assert isinstance(model, LossyDelay)
        assert isinstance(model.base, BurstyLossWindow)

    def test_is_lossy(self):
        assert not DelaySpec(kind="fixed").is_lossy
        assert DelaySpec(kind="fixed", loss=0.01).is_lossy
        assert DelaySpec(
            kind="fixed", burst_period_ms=50.0, burst_len_ms=5.0
        ).is_lossy
        # A burst period without a burst length loses nothing.
        assert not DelaySpec(kind="fixed", burst_period_ms=50.0).is_lossy

    def test_invalid_loss_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            DelaySpec(kind="fixed", loss=1.5)
        with pytest.raises(ConfigurationError):
            DelaySpec(kind="fixed", loss=-0.1)
        with pytest.raises(ConfigurationError):
            DelaySpec(kind="fixed", burst_len_ms=10.0)  # no period
        with pytest.raises(ConfigurationError):
            DelaySpec(kind="fixed", burst_period_ms=10.0, burst_len_ms=20.0)
        with pytest.raises(ConfigurationError):
            DelaySpec(kind="fixed", burst_period_ms=-1.0)

    def test_lossless_defaults_keep_the_scenario_hash(self):
        # The loss fields at their defaults are suppressed from the
        # canonical hash form: pre-loss specs (pinned by the golden
        # files) keep their hashes and cache slots.
        base = ScenarioSpec(topology=TopologySpec(kind="ring", n=6))
        explicit = ScenarioSpec(
            topology=TopologySpec(kind="ring", n=6),
            delay=DelaySpec(kind="fixed", loss=0.0, burst_period_ms=0.0),
        )
        assert explicit.scenario_hash() == base.scenario_hash()
        lossy = ScenarioSpec(
            topology=TopologySpec(kind="ring", n=6),
            delay=DelaySpec(kind="fixed", loss=0.05),
        )
        assert lossy.scenario_hash() != base.scenario_hash()


class TestScenarioSpec:
    def test_hash_is_stable_and_field_sensitive(self):
        spec = ScenarioSpec(topology=TopologySpec(kind="ring", n=5))
        assert spec.scenario_hash() == spec.scenario_hash()
        assert spec.scenario_hash() == ScenarioSpec(
            topology=TopologySpec(kind="ring", n=5)
        ).scenario_hash()
        assert spec.scenario_hash() != spec.with_seed(1).scenario_hash()
        assert (
            spec.scenario_hash()
            != ScenarioSpec(topology=TopologySpec(kind="ring", n=6)).scenario_hash()
        )

    def test_hash_distinguishes_fault_types(self):
        base = ScenarioSpec(topology=TopologySpec(kind="ring", n=5))
        crashed = ScenarioSpec(
            topology=TopologySpec(kind="ring", n=5), faults=(CrashAt(pid=1, time_ms=0.0),)
        )
        dropped = ScenarioSpec(
            topology=TopologySpec(kind="ring", n=5),
            faults=(LinkDropWindow(u=1, v=2, start_ms=0.0),),
        )
        assert len({base.scenario_hash(), crashed.scenario_hash(), dropped.scenario_hash()}) == 3

    def test_adaptive_faults_are_part_of_the_hash_but_defaults_are_not(self):
        base = ScenarioSpec(topology=TopologySpec(kind="ring", n=5))
        assert base.with_adaptive(()).scenario_hash() == base.scenario_hash()
        adaptive = base.with_adaptive(
            (CrashWhen(pid=1, after=ObservationFilter(kind="send"), count=2),)
        )
        assert adaptive.scenario_hash() != base.scenario_hash()
        # Trigger parameters discriminate too.
        other = base.with_adaptive(
            (CrashWhen(pid=1, after=ObservationFilter(kind="send"), count=3),)
        )
        assert other.scenario_hash() != adaptive.scenario_hash()

    def test_too_many_adversaries_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                topology=TopologySpec(kind="complete", n=4),
                f=1,
                adversaries=(AdversarySpec(behaviour="mute", count=2),),
            )

    def test_payload_is_deterministic_and_sized(self):
        spec = ScenarioSpec(payload_size=100)
        assert len(spec.payload()) == 100
        assert spec.payload() == spec.payload()
        assert ScenarioSpec(payload_size=0).payload() == b""

    def test_unknown_behaviour_and_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            AdversarySpec(behaviour="gossip")
        with pytest.raises(ConfigurationError):
            AdversarySpec(placement="nearest")


class TestGrid:
    def test_expand_grid_row_major(self):
        base = ScenarioSpec(topology=TopologySpec(kind="ring", n=6))
        cells = expand_grid(base, {"topology.n": [6, 8], "seed": [0, 1, 2]})
        assert len(cells) == 6
        assert [c.topology.n for c in cells] == [6, 6, 6, 8, 8, 8]
        assert [c.seed for c in cells] == [0, 1, 2, 0, 1, 2]

    def test_unknown_axis_rejected(self):
        base = ScenarioSpec()
        with pytest.raises(ConfigurationError):
            expand_grid(base, {"topology.diameter": [3]})
        with pytest.raises(ConfigurationError):
            expand_grid(base, {"colour": ["red"]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_grid(ScenarioSpec(), {"seed": []})

    def test_seed_cells(self):
        cells = seed_cells(ScenarioSpec(seed=5), 3)
        assert [c.seed for c in cells] == [5, 6, 7]
        assert [c.seed for c in seed_cells(ScenarioSpec(), 2, base_seed=40)] == [40, 41]


class TestPlacement:
    def _star_plus_tail(self):
        # 0 is the hub of a star over 1-4; 5 hangs off 4: 4 is an
        # articulation point (and so is 0).
        return Topology.from_edges(
            range(6), [(0, 1), (0, 2), (0, 3), (0, 4), (4, 5)], name="star-tail"
        )

    def test_random_is_seed_deterministic_and_respects_exclude(self):
        topology = random_regular_topology(10, 4, seed=2, min_connectivity=3)
        first = place_adversaries(topology, 3, "random", seed=11, exclude=(0,))
        second = place_adversaries(topology, 3, "random", seed=11, exclude=(0,))
        assert first == second
        assert 0 not in first
        assert place_adversaries(topology, 3, "random", seed=12) != first or True

    def test_max_degree_picks_best_connected(self):
        topology = self._star_plus_tail()
        assert place_adversaries(topology, 1, "max_degree") == (0,)
        # Ties (the leaves) break by pid.
        assert place_adversaries(topology, 3, "max_degree") == (0, 1, 4)

    def test_articulation_adjacent_targets_cut_vertices(self):
        topology = self._star_plus_tail()
        placed = place_adversaries(topology, 2, "articulation_adjacent")
        assert set(placed) <= {0, 4} | set(topology.neighbors(0)) | set(topology.neighbors(4))
        assert 0 in placed and 4 in placed

    def test_articulation_adjacent_biconnected_fallback(self):
        # A complete graph has no articulation points; the strategy must
        # still place deterministically.
        topology = complete_topology(6)
        placed = place_adversaries(topology, 2, "articulation_adjacent", exclude=(0,))
        assert placed == place_adversaries(topology, 2, "articulation_adjacent", exclude=(0,))
        assert len(placed) == 2 and 0 not in placed

    def test_too_many_adversaries_rejected(self):
        with pytest.raises(ConfigurationError):
            place_adversaries(line_topology(3), 3, "random", exclude=(0,))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            place_adversaries(line_topology(3), 1, "nearest")


class TestPlaceByzantine:
    def test_equivocate_claims_the_source(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="complete", n=7),
            protocol="bracha",
            f=2,
            adversaries=(AdversarySpec(behaviour="equivocate", count=1),),
        )
        topology = spec.topology.build(spec.seed)
        assignments = place_byzantine(spec, topology)
        assert list(assignments) == [spec.source]
        assert assignments[spec.source].behaviour == "equivocate"

    def test_equivocate_count_above_one_rejected(self):
        # A non-source EquivocatingSource never broadcasts, so it would
        # silently act as a mute process while being reported as an
        # equivocator; the engine rejects the spec instead.
        spec = ScenarioSpec(
            topology=TopologySpec(kind="complete", n=7),
            protocol="bracha",
            f=2,
            adversaries=(AdversarySpec(behaviour="equivocate", count=2),),
        )
        topology = spec.topology.build(spec.seed)
        with pytest.raises(ConfigurationError):
            place_byzantine(spec, topology)

    def test_bracha_requires_a_complete_topology(self):
        from repro.scenarios import run_scenario

        with pytest.raises(ConfigurationError):
            run_scenario(
                ScenarioSpec(
                    topology=TopologySpec(kind="random_regular", n=10, k=5, min_connectivity=5),
                    protocol="bracha",
                    f=2,
                )
            )

    def test_non_source_behaviours_exclude_the_source(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="random_regular", n=12, k=5, min_connectivity=5),
            f=2,
            adversaries=(
                AdversarySpec(behaviour="mute", count=1, placement="max_degree"),
                AdversarySpec(behaviour="forge", count=1, placement="random"),
            ),
            seed=4,
        )
        topology = spec.topology.build(spec.seed)
        assignments = place_byzantine(spec, topology)
        assert len(assignments) == 2
        assert spec.source not in assignments
        behaviours = sorted(adv.behaviour for adv in assignments.values())
        assert behaviours == ["forge", "mute"]
