"""Inline suppression behavior: placement, scoping and auditability."""

from __future__ import annotations

from repro.lint.pragmas import PRAGMA_RE, Pragma, pragma_for, scan_pragmas

TRAILING = "import time\nx = time.time()  # repro-lint: allow[DET001] -- fixture clock\n"


def test_trailing_pragma_suppresses_same_line(lint_tree):
    report = lint_tree({"src/mod.py": TRAILING}, {"DET001": {"include": ["**"]}})
    assert report.active == ()
    (finding,) = report.suppressed
    assert finding.suppressed and finding.rule == "DET001"
    assert finding.justification == "fixture clock"
    assert report.exit_code == 0


def test_standalone_pragma_covers_next_line(lint_tree):
    source = (
        "import time\n"
        "# repro-lint: allow[DET001] -- budget deadline, never protocol state\n"
        "deadline = time.monotonic()\n"
    )
    report = lint_tree({"src/mod.py": source}, {"DET001": {"include": ["**"]}})
    assert report.active == ()
    (finding,) = report.suppressed
    assert finding.line == 3
    assert finding.justification == "budget deadline, never protocol state"


def test_pragma_for_other_rule_does_not_suppress(lint_tree):
    source = "import time\nx = time.time()  # repro-lint: allow[DET002]\n"
    report = lint_tree({"src/mod.py": source}, {"DET001": {"include": ["**"]}})
    assert len(report.active) == 1
    assert report.exit_code == 1


def test_wildcard_and_multi_rule_pragmas(lint_tree):
    source = (
        "import time\n"
        "a = time.time()  # repro-lint: allow[*]\n"
        "b = time.time()  # repro-lint: allow[DET001, DET002]\n"
        "c = time.time()\n"
    )
    report = lint_tree({"src/mod.py": source}, {"DET001": {"include": ["**"]}})
    assert len(report.suppressed) == 2
    assert [f.line for f in report.active] == [4]


def test_pragma_inside_string_is_inert(lint_tree):
    source = (
        "import time\n"
        'note = "# repro-lint: allow[DET001]"\n'
        "x = time.time()\n"
    )
    report = lint_tree({"src/mod.py": source}, {"DET001": {"include": ["**"]}})
    assert len(report.active) == 1


def test_scan_pragmas_parses_rules_and_justification():
    pragmas = scan_pragmas(TRAILING)
    pragma = pragmas[2]
    assert pragma.rules == frozenset({"DET001"})
    assert pragma.justification == "fixture clock"
    assert not pragma.standalone


def test_pragma_regex_requires_bracket_list():
    assert PRAGMA_RE.search("# repro-lint: allow[DET001]") is not None
    assert PRAGMA_RE.search("# repro-lint: allow DET001") is None
    assert PRAGMA_RE.search("# noqa") is None


def test_pragma_for_helper():
    pragma = Pragma(line=4, rules=frozenset({"SLT001"}))
    assert pragma_for({4: pragma}, 4, "SLT001") is pragma
    assert pragma_for({4: pragma}, 4, "DET001") is None
    assert pragma_for({4: pragma}, 5, "SLT001") is None
