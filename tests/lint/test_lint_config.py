"""Config loading: the committed ``lint.toml``, the minimal TOML
fallback parser, glob scoping and the registry meta-checks."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.config import (
    ConfigError,
    LintConfig,
    glob_to_regex,
    load_config,
    parse_minimal_toml,
)
from repro.lint.engine import lint_paths
from repro.lint.rules import RULES
from test_lint_rules import RULE_FIXTURES

COMMITTED = Path(__file__).resolve().parents[2] / "lint.toml"


def test_committed_config_parses_and_enables_every_rule():
    config = load_config(COMMITTED)
    assert config.paths == ("src",)
    assert set(config.rules) == set(RULES)
    for rule_cfg in config.rules.values():
        assert rule_cfg.severity == "error"


def test_committed_tree_is_clean():
    """The acceptance gate: repro-lint exits 0 on the committed tree."""
    report = lint_paths(load_config(COMMITTED))
    assert report.exit_code == 0, [
        (f.path, f.line, f.rule, f.message) for f in report.active
    ]
    # Every suppression in the tree carries a written justification.
    for finding in report.suppressed:
        assert finding.justification, (finding.path, finding.line, finding.rule)


def test_every_registered_rule_has_violating_and_clean_fixtures():
    for rule_id in RULES:
        kinds = {case[1] for case in RULE_FIXTURES if case[0] == rule_id}
        assert kinds == {"violating", "clean"}, f"{rule_id} lacks fixtures"


def test_minimal_parser_matches_tomllib_on_committed_config():
    tomllib = pytest.importorskip("tomllib")
    text = COMMITTED.read_text(encoding="utf-8")
    assert parse_minimal_toml(text) == tomllib.loads(text)


def test_minimal_parser_subset():
    parsed = parse_minimal_toml(
        """
        # comment
        [lint]
        paths = ["src", "tests"]  # trailing comment
        [rules.DET001]
        severity = "error"
        include = [
            "src/**",
            "tests/**",
        ]
        threshold = 3
        ratio = 0.5
        enabled = true
        [rules.SLT001.classes]
        "src/a.py::Hot" = ["base"]
        """
    )
    assert parsed["lint"]["paths"] == ["src", "tests"]
    assert parsed["rules"]["DET001"]["include"] == ["src/**", "tests/**"]
    assert parsed["rules"]["DET001"]["threshold"] == 3
    assert parsed["rules"]["DET001"]["ratio"] == 0.5
    assert parsed["rules"]["DET001"]["enabled"] is True
    assert parsed["rules"]["SLT001"]["classes"]["src/a.py::Hot"] == ["base"]


def test_minimal_parser_rejects_garbage():
    with pytest.raises(ConfigError):
        parse_minimal_toml("not a toml line\n")
    with pytest.raises(ConfigError):
        parse_minimal_toml("key = {inline = 1}\n")
    with pytest.raises(ConfigError):
        parse_minimal_toml('key = [\n  "unterminated"\n')


@pytest.mark.parametrize(
    "pattern, path, matches",
    [
        ("src/**", "src/repro/brb/bracha.py", True),
        ("src/**", "tests/test_x.py", False),
        ("src/*.py", "src/mod.py", True),
        ("src/*.py", "src/pkg/mod.py", False),
        ("src/repro/brb/**", "src/repro/brb/optimized/state.py", True),
        ("a/**/b.py", "a/b.py", True),
        ("a/**/b.py", "a/x/y/b.py", True),
        ("a/**/b.py", "a/x/c.py", False),
        ("**", "anything/at/all.py", True),
    ],
)
def test_glob_to_regex(pattern, path, matches):
    assert bool(glob_to_regex(pattern).match(path)) == matches


def test_unknown_rule_rejected(tmp_path):
    with pytest.raises(ConfigError, match="unknown rule"):
        LintConfig.from_mapping(
            {"lint": {"paths": ["src"]}, "rules": {"NOPE99": {}}}, root=tmp_path
        )


def test_bad_severity_rejected(tmp_path):
    with pytest.raises(ConfigError, match="severity"):
        LintConfig.from_mapping(
            {"rules": {"DET001": {"severity": "fatal"}}}, root=tmp_path
        )


def test_empty_rules_rejected(tmp_path):
    with pytest.raises(ConfigError, match="at least one rule"):
        LintConfig.from_mapping({"lint": {"paths": ["src"]}}, root=tmp_path)


def test_missing_config_file_rejected(tmp_path):
    with pytest.raises(ConfigError, match="not found"):
        load_config(tmp_path / "nope.toml")


def test_unknown_only_rules_rejected(tmp_path):
    (tmp_path / "src").mkdir()
    config = LintConfig.from_mapping(
        {"lint": {"paths": ["src"]}, "rules": {"DET001": {}}}, root=tmp_path
    )
    with pytest.raises(ConfigError, match="DET002"):
        lint_paths(config, only_rules=["DET002"])
