"""JSON report schema and exit-protocol semantics."""

from __future__ import annotations

import json

from repro.lint.report import REPORT_SCHEMA_VERSION, render_human, render_json

VIOLATING = {"src/mod.py": "import time\nx = time.time()\n"}
SUPPRESSED = {
    "src/mod.py": "import time\nx = time.time()  # repro-lint: allow[DET001] -- why\n"
}


def test_json_report_schema(lint_tree):
    report = lint_tree(VIOLATING, {"DET001": {"include": ["**"]}})
    document = json.loads(render_json(report))
    assert document["schema"] == REPORT_SCHEMA_VERSION
    assert document["tool"] == "repro-lint"
    assert document["files_scanned"] == 1
    assert document["rules"] == ["DET001"]
    (entry,) = document["findings"]
    assert set(entry) == {
        "rule",
        "severity",
        "path",
        "line",
        "column",
        "message",
        "suppressed",
        "justification",
    }
    assert entry["rule"] == "DET001"
    assert entry["suppressed"] is False
    assert document["summary"] == {
        "active": 1,
        "suppressed": 0,
        "by_rule": {"DET001": 1},
    }


def test_json_report_keeps_suppressed_findings_with_justification(lint_tree):
    report = lint_tree(SUPPRESSED, {"DET001": {"include": ["**"]}})
    document = json.loads(render_json(report))
    (entry,) = document["findings"]
    assert entry["suppressed"] is True
    assert entry["justification"] == "why"
    assert document["summary"] == {"active": 0, "suppressed": 1, "by_rule": {}}


def test_findings_sorted_deterministically(lint_tree):
    files = {
        "src/b.py": "import time\nx = time.time()\ny = time.time()\n",
        "src/a.py": "import time\nx = time.time()\n",
    }
    report = lint_tree(files, {"DET001": {"include": ["**"]}})
    positions = [(f.path, f.line) for f in report.findings]
    assert positions == sorted(positions)


def test_warning_severity_does_not_fail_the_gate(lint_tree):
    report = lint_tree(
        VIOLATING, {"DET001": {"include": ["**"], "severity": "warning"}}
    )
    assert len(report.active) == 1
    assert report.active[0].severity == "warning"
    assert report.exit_code == 0


def test_human_rendering_mentions_rule_and_summary(lint_tree):
    report = lint_tree(VIOLATING, {"DET001": {"include": ["**"]}})
    text = render_human(report)
    assert "src/mod.py:2:" in text
    assert "DET001" in text
    assert "1 active finding(s)" in text


def test_human_rendering_marks_suppressions(lint_tree):
    report = lint_tree(SUPPRESSED, {"DET001": {"include": ["**"]}})
    text = render_human(report)
    assert "[suppressed (why)]" in text
    assert "0 active finding(s), 1 suppressed" in text
