"""CLI regression tests: entry points, exit protocol and the
seeded-violation acceptance matrix (one crafted violation per rule must
turn the gate red with that rule id in the JSON report)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint.cli import main
from repro.lint.rules import RULES

REPO_ROOT = Path(__file__).resolve().parents[2]

#: One minimal violating module per rule, planted in a temp project.
SEEDED_VIOLATIONS = {
    "DET001": "import time\n\nSTAMP = time.time()\n",
    "DET002": "def drain(d):\n    for k, v in d.items():\n        yield k, v\n",
    "SIO001": "import asyncio\n",
    "HSH001": textwrap.dedent(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Spec:
            fresh: int = 7

            _HASH_SUPPRESS_DEFAULTS = {}
        """
    ),
    "SLT001": "class Hot:\n    def __init__(self):\n        self.a = 1\n",
    "WIR001": "WIRE_VERSION = 99\n",
}

CONFIG_TEMPLATE = """
[lint]
paths = ["src"]

[rules.DET001]
include = ["src/**"]
[rules.DET002]
include = ["src/**"]
[rules.SIO001]
include = ["src/**"]
[rules.HSH001]
include = ["src/**"]
[rules.SLT001]
include = ["src/**"]
[rules.SLT001.classes]
"src/slt001.py::Hot" = []
[rules.WIR001]
include = ["src/**"]
[rules.WIR001.constants.WIRE_VERSION]
module = "src/wir001.py"
value = 3
"""


def run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_module_help_works_from_checkout():
    """Regression gate for the console-script/module entry point."""
    result = run_cli(["--help"], cwd=REPO_ROOT)
    assert result.returncode == 0
    assert "repro-lint" in result.stdout
    assert "determinism" in result.stdout


def test_list_rules_prints_catalog():
    result = run_cli(["--list-rules"], cwd=REPO_ROOT)
    assert result.returncode == 0
    for rule_id in RULES:
        assert rule_id in result.stdout


@pytest.fixture
def seeded_project(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "lint.toml").write_text(CONFIG_TEMPLATE, encoding="utf-8")

    def seed(rule_id):
        name = f"{rule_id.lower()}.py"
        (tmp_path / "src" / name).write_text(SEEDED_VIOLATIONS[rule_id], encoding="utf-8")
        return tmp_path

    return seed


@pytest.mark.parametrize("rule_id", sorted(SEEDED_VIOLATIONS))
def test_seeded_violation_turns_gate_red(seeded_project, rule_id):
    """Acceptance criterion: each rule's crafted violation exits non-zero
    with the rule id in the JSON report."""
    project = seeded_project(rule_id)
    result = run_cli(["--format", "json"], cwd=project)
    assert result.returncode == 1, result.stdout + result.stderr
    document = json.loads(result.stdout)
    assert rule_id in {f["rule"] for f in document["findings"] if not f["suppressed"]}


def test_seeded_violations_cover_every_registered_rule():
    assert set(SEEDED_VIOLATIONS) == set(RULES)


def test_clean_project_exits_zero(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "ok.py").write_text("VALUE = 1\n", encoding="utf-8")
    (tmp_path / "lint.toml").write_text(
        '[lint]\npaths = ["src"]\n[rules.DET001]\ninclude = ["src/**"]\n',
        encoding="utf-8",
    )
    result = run_cli([], cwd=tmp_path)
    assert result.returncode == 0
    assert "0 active finding(s)" in result.stdout


def test_missing_config_exits_two(tmp_path):
    result = run_cli([], cwd=tmp_path)
    assert result.returncode == 2
    assert "error" in result.stderr


def test_output_file_written(seeded_project):
    project = seeded_project("DET001")
    result = run_cli(["--format", "json", "--output", "report.json"], cwd=project)
    assert result.returncode == 1
    document = json.loads((project / "report.json").read_text(encoding="utf-8"))
    assert document["summary"]["active"] >= 1


def test_rules_filter_in_process(tmp_path, monkeypatch, capsys):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text(
        "import time\nx = time.time()\nfor k in {1, 2}:\n    pass\n",
        encoding="utf-8",
    )
    (tmp_path / "lint.toml").write_text(
        '[lint]\npaths = ["src"]\n'
        '[rules.DET001]\ninclude = ["src/**"]\n'
        '[rules.DET002]\ninclude = ["src/**"]\n',
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    code = main(["--rules", "DET002", "--format", "json"])
    captured = capsys.readouterr()
    document = json.loads(captured.out)
    assert code == 1
    assert {f["rule"] for f in document["findings"]} == {"DET002"}


def test_unknown_rules_filter_exits_two(tmp_path, monkeypatch, capsys):
    (tmp_path / "src").mkdir()
    (tmp_path / "lint.toml").write_text(
        '[lint]\npaths = ["src"]\n[rules.DET001]\ninclude = ["src/**"]\n',
        encoding="utf-8",
    )
    monkeypatch.chdir(tmp_path)
    assert main(["--rules", "NOPE01"]) == 2
