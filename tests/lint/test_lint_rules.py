"""Per-rule fixture snippets: one violating and one clean case minimum.

``RULE_FIXTURES`` is the machine-readable coverage table the meta-test
in ``test_config.py`` checks against the registry: registering a new
rule without fixtures here fails the suite.
"""

from __future__ import annotations

import pytest

from repro.lint.engine import PARSE_ERROR_RULE
from repro.lint.rules import RULES

#: rule id -> (kind, name, files, rule options, expected active count).
#: ``kind`` is "violating" (count > 0) or "clean" (count == 0).
RULE_FIXTURES = [
    # ------------------------------------------------------------- DET001
    (
        "DET001",
        "violating",
        "wall_clock_call",
        {
            "src/mod.py": """
            import time

            def stamp():
                return time.time()
            """
        },
        {},
        1,
    ),
    (
        "DET001",
        "violating",
        "entropy_and_global_rng",
        {
            "src/mod.py": """
            import os
            import random
            import uuid

            def draw():
                token = os.urandom(8)
                pick = random.randint(0, 10)
                tag = uuid.uuid4()
                return token, pick, tag
            """
        },
        {},
        3,
    ),
    (
        "DET001",
        "violating",
        "aliasing_import",
        {
            "src/mod.py": """
            from time import monotonic

            def now():
                return monotonic()
            """
        },
        {},
        1,
    ),
    (
        "DET001",
        "violating",
        "datetime_now",
        {
            "src/mod.py": """
            import datetime

            def today():
                return datetime.datetime.now()
            """
        },
        {},
        1,
    ),
    (
        "DET001",
        "clean",
        "seeded_rng",
        {
            "src/mod.py": """
            import random

            def draw(seed):
                rng = random.Random(seed)
                return rng.random(), rng.randint(0, 10)
            """
        },
        {},
        0,
    ),
    # ------------------------------------------------------------- DET002
    (
        "DET002",
        "violating",
        "unsorted_items_loop",
        {
            "src/mod.py": """
            def drain(pending):
                for key, value in pending.items():
                    yield key, value
            """
        },
        {},
        1,
    ),
    (
        "DET002",
        "violating",
        "set_literal_and_builtin_id",
        {
            "src/mod.py": """
            def order(x, y):
                for pid in {x, y}:
                    print(pid)
                return id(x), hash(y)
            """
        },
        {},
        3,
    ),
    (
        "DET002",
        "violating",
        "materialized_view",
        {
            "src/mod.py": """
            def snapshot(state):
                return tuple(state.keys())
            """
        },
        {},
        1,
    ),
    (
        "DET002",
        "violating",
        "dict_comprehension",
        {
            "src/mod.py": """
            def copy(state):
                return [v for v in state.values()]
            """
        },
        {},
        1,
    ),
    (
        "DET002",
        "clean",
        "sorted_and_commutative",
        {
            "src/mod.py": """
            def drain(pending):
                total = sum(len(q) for q in pending.values())
                alive = any(q for q in pending.values())
                for key in sorted(pending):
                    yield key, total, alive
                return tuple(sorted(set(pending)))
            """
        },
        {},
        0,
    ),
    # ------------------------------------------------------------- SIO001
    (
        "SIO001",
        "violating",
        "asyncio_import",
        {
            "src/mod.py": """
            import asyncio

            def run(coro):
                return asyncio.get_event_loop().run_until_complete(coro)
            """
        },
        {},
        1,
    ),
    (
        "SIO001",
        "violating",
        "from_imports",
        {
            "src/mod.py": """
            from time import sleep
            from threading import Lock
            import socket
            """
        },
        {},
        3,
    ),
    (
        "SIO001",
        "clean",
        "pure_protocol",
        {
            "src/mod.py": """
            import math
            from dataclasses import dataclass

            def quorum(n, f):
                return math.ceil((n + f + 1) / 2)
            """
        },
        {},
        0,
    ),
    # ------------------------------------------------------------- HSH001
    (
        "HSH001",
        "violating",
        "unregistered_default",
        {
            "src/mod.py": """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Spec:
                old_field: int = 0
                new_field: int = 7

                _HASH_SUPPRESS_DEFAULTS = {"old_field": 0}
            """
        },
        {},
        1,
    ),
    (
        "HSH001",
        "violating",
        "suppress_key_names_no_field",
        {
            "src/mod.py": """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Spec:
                value: int = 0

                _HASH_SUPPRESS_DEFAULTS = {"value": 0, "ghost": None}
            """
        },
        {},
        1,
    ),
    (
        "HSH001",
        "clean",
        "registered_or_grandfathered",
        {
            "src/mod.py": """
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class Spec:
                legacy: int = 0
                required: str
                suppressed: tuple = field(default_factory=tuple)

                _HASH_SUPPRESS_DEFAULTS = {"suppressed": []}
            """
        },
        {"known_fields": {"Spec": ["legacy"]}},
        0,
    ),
    (
        "HSH001",
        "clean",
        "class_without_mapping_ignored",
        {
            "src/mod.py": """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Plain:
                anything: int = 3
            """
        },
        {},
        0,
    ),
    # ------------------------------------------------------------- SLT001
    (
        "SLT001",
        "violating",
        "missing_slots",
        {
            "src/mod.py": """
            class Hot:
                def __init__(self):
                    self.a = 1
            """
        },
        {"classes": {"src/mod.py::Hot": []}},
        1,
    ),
    (
        "SLT001",
        "violating",
        "uncovered_attribute",
        {
            "src/mod.py": """
            class Hot:
                __slots__ = ("a",)

                def __init__(self):
                    self.a = 1

                def warm(self):
                    self.cache = {}
            """
        },
        {"classes": {"src/mod.py::Hot": []}},
        1,
    ),
    (
        "SLT001",
        "violating",
        "registered_class_gone",
        {
            "src/mod.py": """
            class Other:
                pass
            """
        },
        {"classes": {"src/mod.py::Hot": []}},
        1,
    ),
    (
        "SLT001",
        "clean",
        "covering_slots_and_inheritance",
        {
            "src/mod.py": """
            class Hot:
                __slots__ = ("a", "b")

                def __init__(self):
                    self.a = 1
                    self.b = 2
                    self.base = 0
            """
        },
        {"classes": {"src/mod.py::Hot": ["base"]}},
        0,
    ),
    (
        "SLT001",
        "clean",
        "dataclass_slots",
        {
            "src/mod.py": """
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Hot:
                kind: str
                time_ms: float = 0.0
            """
        },
        {"classes": {"src/mod.py::Hot": []}},
        0,
    ),
    # ------------------------------------------------------------- WIR001
    (
        "WIR001",
        "violating",
        "pin_mismatch",
        {"src/mod.py": "WIRE_VERSION = 4\n"},
        {"constants": {"WIRE_VERSION": {"module": "src/mod.py", "value": 3}}},
        1,
    ),
    (
        "WIR001",
        "violating",
        "redefined_elsewhere",
        {
            "src/mod.py": "WIRE_VERSION = 3\n",
            "src/other.py": "WIRE_VERSION = 3\n",
        },
        {"constants": {"WIRE_VERSION": {"module": "src/mod.py", "value": 3}}},
        1,
    ),
    (
        "WIR001",
        "violating",
        "missing_definition",
        {"src/mod.py": "OTHER = 1\n"},
        {"constants": {"WIRE_VERSION": {"module": "src/mod.py", "value": 3}}},
        1,
    ),
    (
        "WIR001",
        "violating",
        "stray_literals",
        {
            "src/other.py": """
            def emit(encode):
                record = {"schema": 2}
                return encode(version=7), record
            """
        },
        {"constants": {}},
        2,
    ),
    (
        "WIR001",
        "clean",
        "single_sourced",
        {
            "src/mod.py": "WIRE_VERSION = 3\n",
            "src/other.py": """
            from mod import WIRE_VERSION

            def emit(encode):
                record = {"schema": WIRE_VERSION}
                return encode(version=WIRE_VERSION), record
            """,
        },
        {"constants": {"WIRE_VERSION": {"module": "src/mod.py", "value": 3}}},
        0,
    ),
]


@pytest.mark.parametrize(
    "rule_id, kind, name, files, options, expected",
    RULE_FIXTURES,
    ids=[f"{rule}-{kind}-{name}" for rule, kind, name, _, _, _ in RULE_FIXTURES],
)
def test_rule_fixture(lint_tree, rule_id, kind, name, files, options, expected):
    report = lint_tree(files, {rule_id: {"include": ["**"], **options}})
    active = [f for f in report.active if f.rule == rule_id]
    assert len(active) == expected, [f.message for f in report.active]
    if kind == "violating":
        assert expected > 0 and report.exit_code == 1
    else:
        assert expected == 0 and report.exit_code == 0


def test_findings_carry_rule_and_position(lint_tree):
    report = lint_tree(
        {"src/mod.py": "import time\n\nx = time.time()\n"},
        {"DET001": {"include": ["**"]}},
    )
    (finding,) = report.active
    assert finding.rule == "DET001"
    assert finding.path == "src/mod.py"
    assert finding.line == 3
    assert "time.time" in finding.message


def test_scoping_excludes_runtime_layer(lint_tree):
    files = {
        "src/proto.py": "import time\nx = time.monotonic()\n",
        "src/runtime.py": "import time\nx = time.monotonic()\n",
    }
    report = lint_tree(
        files, {"DET001": {"include": ["**"], "exclude": ["src/runtime.py"]}}
    )
    assert [f.path for f in report.active] == ["src/proto.py"]


def test_syntax_error_fails_the_gate(lint_tree):
    report = lint_tree(
        {"src/broken.py": "def f(:\n"}, {"DET001": {"include": ["**"]}}
    )
    (finding,) = report.active
    assert finding.rule == PARSE_ERROR_RULE
    assert report.exit_code == 1


def test_every_fixture_rule_is_registered():
    assert {case[0] for case in RULE_FIXTURES} <= set(RULES)
