"""Shared harness for the determinism-linter test suite.

``lint_tree`` materializes a throwaway project tree (source files plus a
programmatic config) and runs the engine over it, so every rule fixture
is exercised end-to-end: discovery, scoping, pragmas and reporting.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence

import pytest

from repro.lint.config import LintConfig
from repro.lint.engine import lint_paths
from repro.lint.report import LintReport

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def lint_tree(tmp_path):
    """Run the engine over an ad-hoc tree: ``lint_tree(files, rules)``."""

    def run(
        files: Mapping[str, str],
        rules: Mapping[str, Mapping],
        paths: Sequence[str] = ("src",),
        only_rules: Optional[Sequence[str]] = None,
    ) -> LintReport:
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        config = LintConfig.from_mapping(
            {"lint": {"paths": list(paths)}, "rules": {k: dict(v) for k, v in rules.items()}},
            root=tmp_path,
        )
        return lint_paths(config, only_rules=only_rules)

    return run


def active_rules(report: LintReport) -> Dict[str, int]:
    """Active finding counts keyed by rule id."""
    return report.by_rule()
