"""Safety-oracle harness over randomized lossy/adaptive grids (simulation).

The headline contract of the scenario engine's loss and adaptive
machinery: whatever messages the lossy links lose and whenever the
trigger-driven adversaries fire, no run may violate the paper's safety
invariants — no forged delivery, agreement among correct deliverers,
validity under a correct source — and loss-free, trigger-free cells must
still deliver everywhere (totality).

The fast smoke covers a small deterministic grid on every CI lane; the
slow job sweeps >= 50 randomized cells through the parallel executor,
which simultaneously pins that lossy/adaptive cells survive the
multiprocessing round trip with results equal to the inline path.
"""

import pytest

from repro.runner.parallel import run_sweep
from repro.scenarios import (
    AdversarySpec,
    CrashWhen,
    DelaySpec,
    JoinAt,
    LeaveAt,
    ObservationFilter,
    RewireLinkAt,
    ScenarioSpec,
    TopologySpec,
    TurnByzantineWhen,
    expand_grid,
    run_scenario,
)
from repro.scenarios.oracle import (
    assert_safe,
    check_result,
    sample_lossy_adaptive_specs,
)

#: Slow-job grid size (acceptance floor: >= 50 sampled cells).
SLOW_CELL_COUNT = 60


class TestOracleSmoke:
    """Small deterministic grid, fast enough for every tier-1 lane."""

    def test_lossy_grid_preserves_safety(self):
        base = ScenarioSpec(
            name="oracle-smoke-lossy",
            topology=TopologySpec(kind="complete", n=6),
            delay=DelaySpec(kind="fixed", mean_ms=8.0),
            f=1,
            seed=17,
        )
        cells = expand_grid(
            base, {"delay.loss": [0.0, 0.05, 0.2], "seed": range(17, 20)}
        )
        for cell in cells:
            assert_safe(run_scenario(cell))

    def test_adaptive_grid_preserves_safety(self):
        base = ScenarioSpec(
            name="oracle-smoke-adaptive",
            topology=TopologySpec(kind="complete", n=6),
            delay=DelaySpec(kind="fixed", mean_ms=8.0),
            f=1,
            seed=29,
        )
        cells = expand_grid(
            base,
            {
                "adaptive": [
                    (),
                    (
                        CrashWhen(
                            pid=0,
                            after=ObservationFilter(kind="send"),
                            count=2,
                        ),
                    ),
                    (
                        TurnByzantineWhen(
                            pid=2,
                            after=ObservationFilter(kind="deliver", pid=2),
                            behaviour="forge",
                        ),
                    ),
                ],
                "seed": range(29, 32),
            },
        )
        for cell in cells:
            assert_safe(run_scenario(cell))

    def test_adaptive_crash_actually_fires(self):
        spec = ScenarioSpec(
            name="oracle-smoke-fire",
            topology=TopologySpec(kind="complete", n=6),
            delay=DelaySpec(kind="fixed", mean_ms=8.0),
            f=1,
            seed=17,
            adaptive=(
                CrashWhen(pid=0, after=ObservationFilter(kind="send"), count=2),
            ),
        )
        result = run_scenario(spec)
        assert 0 in result.crashed
        assert 0 not in result.correct_processes

    def test_adaptive_conversion_is_accounted_byzantine(self):
        spec = ScenarioSpec(
            name="oracle-smoke-convert",
            topology=TopologySpec(kind="complete", n=6),
            delay=DelaySpec(kind="fixed", mean_ms=8.0),
            f=1,
            seed=17,
            adaptive=(
                TurnByzantineWhen(
                    pid=3, after=ObservationFilter(kind="deliver", pid=3)
                ),
            ),
        )
        result = run_scenario(spec)
        assert (3, "mute") in result.byzantine
        assert 3 not in result.correct_processes
        assert_safe(result)


class TestExtendedBehaviourSafety:
    """Each extended taxonomy behaviour on minimal 2f+1 Harary graphs.

    The paper's bound says 2f+1 vertex connectivity suffices against f
    Byzantine processes behaving *arbitrarily* — so every named
    behaviour, however it mangles sources, payloads, paths or fan-out,
    must leave no-forgery and agreement intact on H(2f+1, n).
    """

    BEHAVIOURS = ("alter_sender", "send_empty", "limited_broadcast", "truncate_path")

    @pytest.mark.parametrize("behaviour", BEHAVIOURS)
    def test_behaviour_preserves_safety_on_harary(self, behaviour):
        for n, seed in ((7, 11), (7, 12), (9, 13)):
            spec = ScenarioSpec(
                name=f"oracle-behaviour-{behaviour}",
                topology=TopologySpec(kind="harary", n=n, k=3),
                delay=DelaySpec(kind="fixed", mean_ms=8.0),
                f=1,
                seed=seed,
                adversaries=(AdversarySpec(behaviour=behaviour, count=1),),
            )
            result = run_scenario(spec)
            assert result.byzantine  # the behaviour was actually placed
            assert_safe(result)

    @pytest.mark.parametrize("behaviour", BEHAVIOURS)
    def test_adaptive_conversion_to_behaviour_preserves_safety(self, behaviour):
        spec = ScenarioSpec(
            name=f"oracle-convert-{behaviour}",
            topology=TopologySpec(kind="harary", n=7, k=3),
            delay=DelaySpec(kind="fixed", mean_ms=8.0),
            f=1,
            seed=23,
            adaptive=(
                TurnByzantineWhen(
                    pid=3,
                    after=ObservationFilter(kind="deliver", pid=3),
                    behaviour=behaviour,
                ),
            ),
        )
        result = run_scenario(spec)
        assert_safe(result)

    def test_churn_preserves_safety(self):
        # Membership churn may legitimately cost totality (the oracle is
        # conservative there) but never safety.
        for faults in (
            (JoinAt(pid=4, time_ms=30.0),),
            (LeaveAt(pid=4, time_ms=30.0),),
            (RewireLinkAt(pid=4, old_peer=5, new_peer=1, time_ms=30.0),),
        ):
            spec = ScenarioSpec(
                name="oracle-churn",
                topology=TopologySpec(kind="harary", n=7, k=3),
                delay=DelaySpec(kind="fixed", mean_ms=8.0),
                f=1,
                seed=31,
                faults=faults,
            )
            assert_safe(run_scenario(spec))


@pytest.mark.slow
class TestOracleRandomizedSweep:
    """The >= 50-cell randomized grid, fanned out over the executor."""

    def test_randomized_lossy_adaptive_sweep_is_safe(self):
        cells = sample_lossy_adaptive_specs(SLOW_CELL_COUNT, seed=20260731)
        assert len(cells) >= 50
        results = run_sweep(cells, workers=4)
        violations = [
            (cell.name, violation)
            for cell, result in zip(cells, results)
            for violation in check_result(result)
        ]
        assert violations == [], f"oracle violations: {violations}"

    def test_randomized_sweep_matches_inline_execution(self):
        # Lossy/adaptive cells obey the same executor-equality contract
        # as every other cell: parallel == serial, in order.
        cells = sample_lossy_adaptive_specs(10, seed=77)
        assert run_sweep(cells, workers=3) == [run_scenario(cell) for cell in cells]
