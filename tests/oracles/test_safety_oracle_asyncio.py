"""Safety-oracle harness on the asyncio backend (live localhost sockets).

The cross-backend half of the oracle contract: lossy and adaptive cells
must preserve the safety invariants on real sockets too, and
cross-backend conformance for such cells compares *safety verdicts* —
which messages a lossy link loses legitimately differs between a seeded
simulation and the wall clock, so delivery traces are out of scope by
design (``run_conformance``'s ``auto`` mode resolves to ``safety``).

Socket scenarios are expensive: the grid here is small, while the
simulation-side randomized sweep (test_safety_oracle.py) carries the
>= 50-cell load.  Every test is marked slow and runs in the CI
asyncio-backend job under pytest-timeout.
"""

import pytest

from repro.scenarios import (
    CrashWhen,
    DelaySpec,
    ObservationFilter,
    ScenarioSpec,
    TopologySpec,
    TurnByzantineWhen,
    run_conformance,
    run_scenario,
)
from repro.scenarios.backends import AsyncioBackend
from repro.scenarios.oracle import assert_safe, sample_lossy_adaptive_specs

pytestmark = pytest.mark.slow

#: Lossy cells may never reach totality; a short delivery wait freezes
#: the partial outcome instead of stalling CI for the default 20 s.
FAST_BACKEND = {"delivery_timeout_s": 3.0}


def fast_backend() -> AsyncioBackend:
    return AsyncioBackend(**FAST_BACKEND)


class TestAsyncioOracle:
    def test_randomized_cells_preserve_safety_on_sockets(self):
        cells = sample_lossy_adaptive_specs(6, seed=424242, backend="asyncio")
        backend = fast_backend()
        for cell in cells:
            assert_safe(run_scenario(cell, backend=backend))

    def test_lossy_run_drops_messages_on_sockets(self):
        spec = ScenarioSpec(
            name="asyncio-lossy",
            topology=TopologySpec(kind="complete", n=5),
            delay=DelaySpec(kind="fixed", mean_ms=5.0, loss=0.15),
            f=1,
            seed=5,
            backend="asyncio",
        )
        result = run_scenario(spec, backend=fast_backend())
        assert result.dropped_messages > 0
        assert_safe(result)

    def test_adaptive_crash_does_not_stall_the_delivery_wait(self):
        # Pid 0 is crashed mid-run by the trigger and can never deliver;
        # the run must finish as soon as the survivors delivered, not
        # block for the whole delivery timeout waiting on the corpse.
        import time

        spec = ScenarioSpec(
            name="asyncio-crash-wait",
            topology=TopologySpec(kind="complete", n=5),
            delay=DelaySpec(kind="fixed", mean_ms=5.0),
            f=1,
            seed=3,
            backend="asyncio",
            adaptive=(
                CrashWhen(pid=0, after=ObservationFilter(kind="send"), count=3),
            ),
        )
        backend = AsyncioBackend(delivery_timeout_s=15.0)
        started = time.monotonic()
        result = run_scenario(spec, backend=backend)
        elapsed = time.monotonic() - started
        assert 0 in result.crashed
        assert elapsed < 10.0, f"run stalled on the crashed node ({elapsed:.1f}s)"
        assert_safe(result)

    def test_adaptive_conversion_fires_on_sockets(self):
        spec = ScenarioSpec(
            name="asyncio-adaptive",
            topology=TopologySpec(kind="complete", n=5),
            delay=DelaySpec(kind="fixed", mean_ms=5.0),
            f=1,
            seed=7,
            backend="asyncio",
            adaptive=(
                TurnByzantineWhen(
                    pid=2, after=ObservationFilter(kind="deliver", pid=2)
                ),
            ),
        )
        result = run_scenario(spec, backend=fast_backend())
        assert (2, "mute") in result.byzantine
        assert_safe(result)


class TestLossyConformance:
    def test_lossy_conformance_compares_safety_verdicts(self):
        spec = ScenarioSpec(
            name="conformance-lossy",
            topology=TopologySpec(kind="complete", n=5),
            delay=DelaySpec(kind="fixed", mean_ms=5.0, loss=0.1),
            f=1,
            seed=23,
        )
        report = run_conformance(spec, overrides={"asyncio": fast_backend()})
        assert report.mode == "safety"
        assert report.agree, report.mismatches()

    def test_bursty_conformance_agrees(self):
        spec = ScenarioSpec(
            name="conformance-bursty",
            topology=TopologySpec(kind="complete", n=5),
            delay=DelaySpec(
                kind="fixed", mean_ms=5.0, burst_period_ms=40.0, burst_len_ms=10.0
            ),
            f=0,
            seed=31,
        )
        report = run_conformance(spec, overrides={"asyncio": fast_backend()})
        assert report.mode == "safety"
        assert report.agree, report.mismatches()

    def test_adaptive_conformance_agrees(self):
        spec = ScenarioSpec(
            name="conformance-adaptive",
            topology=TopologySpec(kind="complete", n=5),
            delay=DelaySpec(kind="fixed", mean_ms=5.0),
            f=1,
            seed=41,
            adaptive=(
                CrashWhen(pid=0, after=ObservationFilter(kind="send"), count=3),
            ),
        )
        report = run_conformance(spec, overrides={"asyncio": fast_backend()})
        assert report.mode == "safety"
        assert report.agree, report.mismatches()

    def test_reliable_specs_keep_the_full_comparison(self):
        spec = ScenarioSpec(
            name="conformance-full",
            topology=TopologySpec(kind="complete", n=5),
            delay=DelaySpec(kind="fixed", mean_ms=5.0),
            f=0,
            seed=51,
        )
        report = run_conformance(spec, overrides={"asyncio": fast_backend()})
        assert report.mode == "full"
        assert report.agree, report.mismatches()
