"""Unit tests of the safety oracle itself.

The oracle is only trustworthy if it actually fires: these tests craft
results that violate each invariant — a forged delivery, an agreement
split, a wrong payload, a missing delivery — and assert the matching
:class:`OracleViolation` is reported, alongside the green paths and the
randomized grid sampler's determinism and spec-validity guarantees.
"""

import dataclasses

import pytest

from repro.scenarios import (
    CrashWhen,
    CutLinkWhen,
    DelaySpec,
    LinkDropWindow,
    ObservationFilter,
    ScenarioSpec,
    TopologySpec,
    TurnByzantineWhen,
    run_scenario,
)
from repro.scenarios.oracle import (
    assert_safe,
    check_agreement,
    check_no_forgery,
    check_result,
    check_totality,
    check_validity,
    sample_lossy_adaptive_specs,
    totality_expected,
)


@pytest.fixture()
def clean_result():
    spec = ScenarioSpec(
        name="oracle-clean",
        topology=TopologySpec(kind="complete", n=5),
        delay=DelaySpec(kind="fixed", mean_ms=5.0),
        f=0,
        seed=3,
    )
    return run_scenario(spec)


def _with_outcome(result, **changes):
    """The result with its single outcome shallow-patched."""
    (outcome,) = result.outcomes
    return dataclasses.replace(
        result, outcomes=(dataclasses.replace(outcome, **changes),)
    )


class TestInvariantChecks:
    def test_clean_run_is_green(self, clean_result):
        assert check_result(clean_result) == []
        assert_safe(clean_result)  # must not raise

    def test_agreement_violation_detected(self, clean_result):
        broken = _with_outcome(clean_result, agreement_holds=False)
        violations = check_agreement(broken)
        assert [v.invariant for v in violations] == ["agreement"]
        with pytest.raises(AssertionError, match="agreement"):
            assert_safe(broken)

    def test_validity_violation_detected(self, clean_result):
        broken = _with_outcome(clean_result, validity_holds=False)
        violations = check_validity(broken)
        assert [v.invariant for v in violations] == ["validity"]
        with pytest.raises(AssertionError, match="validity"):
            assert_safe(broken)

    def test_forged_delivery_detected(self, clean_result):
        # Inject a delivery of an unscheduled broadcast attributed to the
        # correct process 2 into the run's metrics.
        metrics = clean_result.metrics
        forged_key = (2, (2, 9))  # process 2 "delivered" (source=2, bid=9)
        patched = dataclasses.replace(
            metrics,
            delivery_times={**metrics.delivery_times, forged_key: 1.0},
            delivered_payloads={**metrics.delivered_payloads, forged_key: b"x"},
        )
        broken = dataclasses.replace(clean_result, metrics=patched)
        violations = check_no_forgery(broken)
        assert violations and violations[0].invariant == "no_forgery"
        assert "(2, 9)" in violations[0].detail

    def test_byzantine_source_may_inject_broadcasts(self, clean_result):
        # The same unscheduled key is fine when its source is Byzantine.
        metrics = clean_result.metrics
        forged_key = (2, (4, 9))
        patched = dataclasses.replace(
            metrics,
            delivery_times={**metrics.delivery_times, forged_key: 1.0},
            delivered_payloads={**metrics.delivered_payloads, forged_key: b"x"},
        )
        broken = dataclasses.replace(
            clean_result,
            metrics=patched,
            byzantine=((4, "forge"),),
            correct_processes=(0, 1, 2, 3),
        )
        assert check_no_forgery(broken) == []

    def test_totality_violation_detected(self, clean_result):
        broken = _with_outcome(
            clean_result, all_correct_delivered=False, delivered_processes=(0, 1)
        )
        violations = check_totality(broken)
        assert violations and violations[0].invariant == "totality"

    def test_totality_vacuous_for_byzantine_source(self, clean_result):
        broken = dataclasses.replace(
            _with_outcome(clean_result, all_correct_delivered=False),
            byzantine=((0, "mute"),),
        )
        assert check_totality(broken) == []


class TestTotalityExpected:
    def test_reliable_static_spec_expects_totality(self):
        spec = ScenarioSpec(topology=TopologySpec(kind="complete", n=5))
        assert totality_expected(spec)

    def test_lossy_spec_does_not(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="complete", n=5),
            delay=DelaySpec(kind="fixed", loss=0.1),
        )
        assert not totality_expected(spec)

    def test_adaptive_spec_does_not(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="complete", n=5),
            adaptive=(CrashWhen(pid=0, after=ObservationFilter(kind="send")),),
        )
        assert not totality_expected(spec)

    def test_statically_faulted_spec_does_not(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="complete", n=5),
            faults=(LinkDropWindow(u=0, v=1),),
        )
        assert not totality_expected(spec)


class TestSampler:
    def test_sampler_is_seed_deterministic(self):
        assert sample_lossy_adaptive_specs(12, seed=5) == sample_lossy_adaptive_specs(
            12, seed=5
        )
        assert sample_lossy_adaptive_specs(12, seed=5) != sample_lossy_adaptive_specs(
            12, seed=6
        )

    def test_sampler_mixes_lossy_and_adaptive_cells(self):
        cells = sample_lossy_adaptive_specs(40, seed=1)
        assert len(cells) == 40
        assert any(cell.is_lossy for cell in cells)
        assert any(cell.is_adaptive for cell in cells)
        assert any(
            not cell.is_lossy and not cell.is_adaptive for cell in cells
        ), "some cells must exercise totality"

    def test_sampler_respects_the_fault_budget(self):
        for cell in sample_lossy_adaptive_specs(40, seed=2):
            static = sum(adv.count for adv in cell.adversaries)
            converted = len(
                {
                    fault.pid
                    for fault in cell.adaptive
                    if isinstance(fault, TurnByzantineWhen)
                }
            )
            assert static + converted <= cell.f

    def test_sampler_targets_the_requested_backend(self):
        cells = sample_lossy_adaptive_specs(3, seed=0, backend="asyncio")
        assert all(cell.backend == "asyncio" for cell in cells)

    def test_sampler_cut_links_exist_in_the_topology(self):
        for cell in sample_lossy_adaptive_specs(40, seed=3):
            for fault in cell.adaptive:
                if isinstance(fault, CutLinkWhen):
                    topology = cell.topology.build(cell.seed)
                    assert topology.has_edge(fault.u, fault.v)
