"""Unit tests of the safety oracle itself.

The oracle is only trustworthy if it actually fires: these tests craft
results that violate each invariant — a forged delivery, an agreement
split, a wrong payload, a missing delivery — and assert the matching
:class:`OracleViolation` is reported, alongside the green paths and the
randomized grid sampler's determinism and spec-validity guarantees.
"""

import dataclasses

import pytest

from repro.scenarios import (
    CrashAt,
    CrashWhen,
    CutLinkWhen,
    DelayedStart,
    DelaySpec,
    LinkDropWindow,
    ObservationFilter,
    ScenarioSpec,
    TopologySpec,
    TurnByzantineWhen,
    WorkloadSpec,
    run_scenario,
)
from repro.scenarios.oracle import (
    assert_safe,
    check_agreement,
    check_causal_order,
    check_no_forgery,
    check_result,
    check_totality,
    check_validity,
    sample_lossy_adaptive_specs,
    totality_expected,
)


@pytest.fixture()
def clean_result():
    spec = ScenarioSpec(
        name="oracle-clean",
        topology=TopologySpec(kind="complete", n=5),
        delay=DelaySpec(kind="fixed", mean_ms=5.0),
        f=0,
        seed=3,
    )
    return run_scenario(spec)


def _with_outcome(result, **changes):
    """The result with its single outcome shallow-patched."""
    (outcome,) = result.outcomes
    return dataclasses.replace(
        result, outcomes=(dataclasses.replace(outcome, **changes),)
    )


class TestInvariantChecks:
    def test_clean_run_is_green(self, clean_result):
        assert check_result(clean_result) == []
        assert_safe(clean_result)  # must not raise

    def test_agreement_violation_detected(self, clean_result):
        broken = _with_outcome(clean_result, agreement_holds=False)
        violations = check_agreement(broken)
        assert [v.invariant for v in violations] == ["agreement"]
        with pytest.raises(AssertionError, match="agreement"):
            assert_safe(broken)

    def test_validity_violation_detected(self, clean_result):
        broken = _with_outcome(clean_result, validity_holds=False)
        violations = check_validity(broken)
        assert [v.invariant for v in violations] == ["validity"]
        with pytest.raises(AssertionError, match="validity"):
            assert_safe(broken)

    def test_forged_delivery_detected(self, clean_result):
        # Inject a delivery of an unscheduled broadcast attributed to the
        # correct process 2 into the run's metrics.
        metrics = clean_result.metrics
        forged_key = (2, (2, 9))  # process 2 "delivered" (source=2, bid=9)
        patched = dataclasses.replace(
            metrics,
            delivery_times={**metrics.delivery_times, forged_key: 1.0},
            delivered_payloads={**metrics.delivered_payloads, forged_key: b"x"},
        )
        broken = dataclasses.replace(clean_result, metrics=patched)
        violations = check_no_forgery(broken)
        assert violations and violations[0].invariant == "no_forgery"
        assert "(2, 9)" in violations[0].detail

    def test_byzantine_source_may_inject_broadcasts(self, clean_result):
        # The same unscheduled key is fine when its source is Byzantine.
        metrics = clean_result.metrics
        forged_key = (2, (4, 9))
        patched = dataclasses.replace(
            metrics,
            delivery_times={**metrics.delivery_times, forged_key: 1.0},
            delivered_payloads={**metrics.delivered_payloads, forged_key: b"x"},
        )
        broken = dataclasses.replace(
            clean_result,
            metrics=patched,
            byzantine=((4, "forge"),),
            correct_processes=(0, 1, 2, 3),
        )
        assert check_no_forgery(broken) == []

    def test_totality_violation_detected(self, clean_result):
        broken = _with_outcome(
            clean_result, all_correct_delivered=False, delivered_processes=(0, 1)
        )
        violations = check_totality(broken)
        assert violations and violations[0].invariant == "totality"

    def test_totality_vacuous_for_byzantine_source(self, clean_result):
        broken = dataclasses.replace(
            _with_outcome(clean_result, all_correct_delivered=False),
            byzantine=((0, "mute"),),
        )
        assert check_totality(broken) == []


class TestTotalityExpected:
    def test_reliable_static_spec_expects_totality(self):
        spec = ScenarioSpec(topology=TopologySpec(kind="complete", n=5))
        assert totality_expected(spec)

    def test_lossy_spec_does_not(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="complete", n=5),
            delay=DelaySpec(kind="fixed", loss=0.1),
        )
        assert not totality_expected(spec)

    def test_adaptive_spec_does_not(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="complete", n=5),
            adaptive=(CrashWhen(pid=0, after=ObservationFilter(kind="send")),),
        )
        assert not totality_expected(spec)

    def test_statically_faulted_spec_does_not(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="complete", n=5),
            faults=(LinkDropWindow(u=0, v=1),),
        )
        assert not totality_expected(spec)

    def test_crashed_spec_does_not(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="complete", n=5),
            faults=(CrashAt(pid=2, time_ms=5.0),),
        )
        assert not totality_expected(spec)

    def test_delayed_start_only_spec_still_expects_totality(self):
        # A dormant node buffers early messages and replays them at
        # wake-up, so delivery stays guaranteed: the fault *types*
        # decide, not mere fault presence.
        spec = ScenarioSpec(
            topology=TopologySpec(kind="complete", n=5),
            faults=(DelayedStart(pid=2, time_ms=50.0),),
        )
        assert totality_expected(spec)

    def test_mixed_fault_types_do_not(self):
        spec = ScenarioSpec(
            topology=TopologySpec(kind="complete", n=5),
            faults=(
                DelayedStart(pid=2, time_ms=50.0),
                CrashAt(pid=3, time_ms=5.0),
            ),
        )
        assert not totality_expected(spec)


class TestDelayedStartTotalityRegression:
    """A totality breach under DelayedStart-only faults must fire.

    The oracle used to suppress totality for *any* static fault event,
    so a run where a delayed node never delivered passed silently.
    """

    def _delayed_spec(self):
        return ScenarioSpec(
            name="oracle-delayed",
            topology=TopologySpec(kind="complete", n=5),
            delay=DelaySpec(kind="fixed", mean_ms=5.0),
            f=0,
            seed=3,
            faults=(DelayedStart(pid=2, time_ms=80.0),),
        )

    def test_delayed_start_run_is_green(self):
        assert check_result(run_scenario(self._delayed_spec())) == []

    def test_missing_delivery_is_reported_again(self):
        result = run_scenario(self._delayed_spec())
        broken = _with_outcome(
            result,
            all_correct_delivered=False,
            delivered_processes=(0, 1, 3, 4),
        )
        assert "totality" in [v.invariant for v in check_result(broken)]


class TestSampler:
    def test_sampler_is_seed_deterministic(self):
        assert sample_lossy_adaptive_specs(12, seed=5) == sample_lossy_adaptive_specs(
            12, seed=5
        )
        assert sample_lossy_adaptive_specs(12, seed=5) != sample_lossy_adaptive_specs(
            12, seed=6
        )

    def test_sampler_mixes_lossy_and_adaptive_cells(self):
        cells = sample_lossy_adaptive_specs(40, seed=1)
        assert len(cells) == 40
        assert any(cell.is_lossy for cell in cells)
        assert any(cell.is_adaptive for cell in cells)
        assert any(
            not cell.is_lossy and not cell.is_adaptive for cell in cells
        ), "some cells must exercise totality"

    def test_sampler_respects_the_fault_budget(self):
        for cell in sample_lossy_adaptive_specs(40, seed=2):
            static = sum(adv.count for adv in cell.adversaries)
            converted = len(
                {
                    fault.pid
                    for fault in cell.adaptive
                    if isinstance(fault, TurnByzantineWhen)
                }
            )
            assert static + converted <= cell.f

    def test_sampler_targets_the_requested_backend(self):
        cells = sample_lossy_adaptive_specs(3, seed=0, backend="asyncio")
        assert all(cell.backend == "asyncio" for cell in cells)

    def test_sampler_cut_links_exist_in_the_topology(self):
        for cell in sample_lossy_adaptive_specs(40, seed=3):
            for fault in cell.adaptive:
                if isinstance(fault, CutLinkWhen):
                    topology = cell.topology.build(cell.seed)
                    assert topology.has_edge(fault.u, fault.v)


def _swap_deliveries(result, pid, first_key, second_key):
    """The result with ``pid``'s two deliveries swapped in trace order."""
    entries = list(result.metrics.delivery_times.items())
    a = entries.index(((pid, first_key), result.metrics.delivery_times[(pid, first_key)]))
    b = entries.index(((pid, second_key), result.metrics.delivery_times[(pid, second_key)]))
    entries[a], entries[b] = entries[b], entries[a]
    patched = dataclasses.replace(result.metrics, delivery_times=dict(entries))
    return dataclasses.replace(result, metrics=patched)


class TestCausalOrderCheck:
    @pytest.fixture()
    def rco_result(self):
        spec = ScenarioSpec(
            name="oracle-rco",
            topology=TopologySpec(kind="complete", n=5),
            delay=DelaySpec(kind="fixed", mean_ms=5.0),
            protocol="rco_cross_layer",
            f=1,
            seed=3,
            workload=WorkloadSpec.causal_chain((0, 2, 4), interval_ms=150.0),
        )
        return run_scenario(spec)

    def test_clean_rco_run_is_green(self, rco_result):
        assert check_result(rco_result) == []

    def test_vacuous_off_rco(self, clean_result):
        assert check_causal_order(clean_result) == []

    def test_out_of_causal_order_delivery_detected(self, rco_result):
        pid = next(
            p for p in rco_result.correct_processes if p not in (0, 2)
        )
        broken = _swap_deliveries(rco_result, pid, (0, 0), (2, 0))
        violations = check_causal_order(broken)
        assert violations and violations[0].invariant == "causal_order"
        assert "before its causal predecessor" in violations[0].detail
        assert "causal_order" in [v.invariant for v in check_result(broken)]
        with pytest.raises(AssertionError, match="causal_order"):
            assert_safe(broken)

    def test_missing_predecessor_detected(self, rco_result):
        pid = next(
            p for p in rco_result.correct_processes if p not in (0, 2)
        )
        times = {
            key: time
            for key, time in rco_result.metrics.delivery_times.items()
            if key != (pid, (0, 0))
        }
        patched = dataclasses.replace(rco_result.metrics, delivery_times=times)
        broken = dataclasses.replace(rco_result, metrics=patched)
        violations = check_causal_order(broken)
        assert violations and "without its causal predecessor" in violations[0].detail
