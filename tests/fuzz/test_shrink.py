"""Shrinker unit tests: operator-level violation preservation, greedy
minimization, determinism, and the idempotence property (shrinking a
minimal spec returns it unchanged)."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    AdversarySpec,
    CrashWhen,
    CutLinkWhen,
    DelaySpec,
    LinkDropWindow,
    ObservationFilter,
    ScenarioSpec,
    TopologySpec,
    TurnByzantineWhen,
    WorkloadSpec,
)
from repro.scenarios.oracle import OracleViolation, check_result
from repro.scenarios.reduce import (
    REDUCTION_OPERATORS,
    drop_adaptive_fault,
    drop_adversary,
    drop_static_fault,
    fault_event_count,
    reduce_f,
    reduction_candidates,
    shorten_workload,
    shrink_payload,
    shrink_topology,
    simplify_delay,
    simplify_protocol,
    spec_size,
)
from repro.fuzz.shrink import (
    conformance_evaluator,
    oracle_evaluator,
    regression_stub,
    shrink_failing_spec,
)


def _noisy_spec() -> ScenarioSpec:
    """A deliberately over-specified scenario with every reducible axis."""
    return ScenarioSpec(
        name="noisy",
        topology=TopologySpec(kind="complete", n=8),
        delay=DelaySpec(kind="normal", mean_ms=10.0, std_ms=5.0, loss=0.1),
        f=2,
        payload_size=48,
        seed=12,
        adversaries=(AdversarySpec(behaviour="mute", count=1),),
        faults=(LinkDropWindow(u=2, v=3, start_ms=0.0, end_ms=20.0),),
        adaptive=(
            CrashWhen(pid=0, after=ObservationFilter(kind="send"), count=3),
            TurnByzantineWhen(pid=1, after=ObservationFilter(kind="deliver")),
        ),
        workload=WorkloadSpec.repeated(0, 3, 25.0),
    )


def _violation(invariant="no_forgery", detail="crafted"):
    return (OracleViolation(invariant=invariant, detail=detail),)


class TestOperators:
    """Each operator emits strictly smaller specs of the expected shape,
    and keeps a violation alive when its own axis is not the culprit."""

    def test_drop_adaptive_fault_removes_one_trigger_at_a_time(self):
        spec = _noisy_spec()
        candidates = list(drop_adaptive_fault(spec))
        assert len(candidates) == 2
        assert all(len(c.adaptive) == 1 for c in candidates)
        assert {c.adaptive[0] for c in candidates} == set(spec.adaptive)

    def test_drop_static_fault_removes_the_event(self):
        spec = _noisy_spec()
        (candidate,) = list(drop_static_fault(spec))
        assert candidate.faults == ()

    def test_drop_adversary_removes_and_lowers_counts(self):
        spec = dataclasses.replace(
            _noisy_spec(),
            adversaries=(AdversarySpec(behaviour="drop", count=2),),
            adaptive=(),
        )
        candidates = list(drop_adversary(spec))
        assert [sum(a.count for a in c.adversaries) for c in candidates] == [0, 1]

    def test_shorten_workload_collapses_halves_and_drops(self):
        spec = _noisy_spec()
        candidates = list(shorten_workload(spec))
        # Collapse to legacy single broadcast first.
        assert candidates[0].workload is None
        # Then halving, then dropping each broadcast.
        lengths = [
            len(c.workload.broadcasts) for c in candidates[1:] if c.workload is not None
        ]
        assert lengths and all(length < 3 for length in lengths)

    def test_shrink_topology_never_grows_and_respects_the_bound(self):
        spec = _noisy_spec()
        for candidate in shrink_topology(spec):
            assert candidate.topology.node_count < spec.topology.node_count
            # Complete graph: n >= 2f + 2 keeps the 2f+1 connectivity bound.
            assert candidate.topology.node_count >= 2 * spec.f + 2

    def test_shrink_topology_keeps_referenced_pids_valid(self):
        spec = dataclasses.replace(
            _noisy_spec(),
            adaptive=(
                CutLinkWhen(u=5, v=6, after=ObservationFilter(kind="send")),
            ),
        )
        for candidate in shrink_topology(spec):
            assert candidate.topology.node_count > 6

    def test_reduce_f_respects_the_budget(self):
        spec = _noisy_spec()  # f=2, 1 static + 1 converted = 2 requested
        assert list(reduce_f(spec)) == []
        relaxed = dataclasses.replace(spec, adversaries=())
        (candidate,) = list(reduce_f(relaxed))
        assert candidate.f == 1

    def test_simplify_delay_strips_loss_then_kind(self):
        spec = _noisy_spec()
        candidates = list(simplify_delay(spec))
        assert candidates[0].delay.loss == 0.0
        assert candidates[-1].delay.kind == "fixed"

    def test_shrink_payload(self):
        spec = _noisy_spec()
        sizes = [c.payload_size for c in shrink_payload(spec)]
        assert sizes == [0, 16]

    def test_simplify_protocol_unstacks_the_causal_wrapper(self):
        spec = dataclasses.replace(_noisy_spec(), protocol="rco_cross_layer")
        (candidate,) = list(simplify_protocol(spec))
        assert candidate.protocol == "cross_layer"
        assert spec_size(candidate) < spec_size(spec)
        # Nothing to unstack on a bare protocol.
        assert list(simplify_protocol(_noisy_spec())) == []

    def test_every_candidate_strictly_decreases_spec_size(self):
        spec = _noisy_spec()
        for name, candidate in reduction_candidates(spec):
            assert spec_size(candidate) < spec_size(spec), name

    def test_operator_order_is_fault_machinery_first(self):
        names = [name for name, _ in REDUCTION_OPERATORS]
        assert names[:3] == [
            "drop_adaptive_fault",
            "drop_static_fault",
            "drop_adversary",
        ]


class TestShrinkFailingSpec:
    def test_refuses_a_green_spec(self):
        spec = ScenarioSpec(topology=TopologySpec(kind="complete", n=4), seed=1)
        with pytest.raises(ValueError, match="does not violate"):
            shrink_failing_spec(spec, lambda s: ())

    def test_shrinks_to_the_predicate_kernel(self):
        # The "bug" only needs lossy links: everything else must go.
        spec = _noisy_spec()

        def evaluate(candidate):
            return _violation() if candidate.is_lossy else ()

        outcome = shrink_failing_spec(spec, evaluate)
        assert outcome.at_fixpoint
        assert outcome.minimal.is_lossy
        assert fault_event_count(outcome.minimal) == 0
        assert outcome.minimal.workload is None
        assert outcome.minimal.payload_size == 0
        assert outcome.minimal.f == 0
        assert (
            outcome.minimal.topology.node_count < spec.topology.node_count
        )

    def test_preserves_the_violating_invariant_set(self):
        spec = _noisy_spec()

        def evaluate(candidate):
            if not candidate.adaptive:
                return ()
            return _violation("agreement", "needs a trigger")

        outcome = shrink_failing_spec(spec, evaluate)
        assert len(outcome.minimal.adaptive) == 1
        assert {v.invariant for v in outcome.violations} == {"agreement"}

    def test_rejects_candidates_whose_evaluation_raises(self):
        spec = _noisy_spec()
        baseline_hash = spec.scenario_hash()

        def evaluate(candidate):
            if candidate.scenario_hash() == baseline_hash:
                return _violation()
            raise RuntimeError("every reduction explodes")

        outcome = shrink_failing_spec(spec, evaluate)
        assert outcome.minimal == spec
        assert outcome.steps == ()
        assert outcome.at_fixpoint

    def test_shrink_is_deterministic(self):
        spec = _noisy_spec()

        def evaluate(candidate):
            return _violation() if candidate.is_lossy else ()

        first = shrink_failing_spec(spec, evaluate)
        second = shrink_failing_spec(spec, evaluate)
        assert first.minimal == second.minimal
        assert first.steps == second.steps

    def test_attempt_ceiling_truncates_but_stays_valid(self):
        spec = _noisy_spec()

        def evaluate(candidate):
            return _violation() if candidate.is_lossy else ()

        outcome = shrink_failing_spec(spec, evaluate, max_attempts=3)
        assert not outcome.at_fixpoint
        assert outcome.attempts <= 3
        assert evaluate(outcome.minimal)


class TestIdempotence:
    """Shrinking a minimal spec returns it unchanged."""

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=9),
        f=st.integers(min_value=0, max_value=2),
        loss=st.sampled_from([0.0, 0.05, 0.2]),
        adaptive_count=st.integers(min_value=0, max_value=2),
        payload=st.sampled_from([0, 16, 48]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_shrink_is_idempotent(self, n, f, loss, adaptive_count, payload, seed):
        n = max(n, 2 * f + 2, adaptive_count + 1)
        adaptive = tuple(
            CrashWhen(pid=pid, after=ObservationFilter(kind="send"), count=2)
            for pid in range(adaptive_count)
        )
        spec = ScenarioSpec(
            name="idem",
            topology=TopologySpec(kind="complete", n=n),
            delay=DelaySpec(kind="fixed", mean_ms=5.0, loss=loss),
            f=f,
            payload_size=payload,
            seed=seed,
            adaptive=adaptive,
        )

        # An arbitrary-but-deterministic interestingness predicate that
        # some reduction path can always reach.
        def evaluate(candidate):
            return _violation() if candidate.seed == seed else ()

        first = shrink_failing_spec(spec, evaluate)
        again = shrink_failing_spec(first.minimal, evaluate)
        assert again.minimal == first.minimal
        assert again.steps == ()
        assert again.at_fixpoint


class TestRegressionStub:
    def test_stub_embeds_a_loadable_spec_and_runs_green_when_fixed(self):
        # A spec with no real violation: the emitted stub must execute
        # and pass as-is (the post-fix state it is written for).
        spec = ScenarioSpec(
            name="stub", topology=TopologySpec(kind="complete", n=4), seed=2
        )
        stub = regression_stub(spec, _violation())
        short = spec.scenario_hash()[:12]
        assert f"SPEC_JSON_{short}" in stub
        assert f"test_regression_{short}" in stub
        namespace: dict = {}
        exec(stub, namespace)
        namespace[f"test_regression_{short}"]()  # must not raise

    def test_default_oracle_evaluator_memoizes_and_matches_check_result(self):
        spec = ScenarioSpec(
            name="memo", topology=TopologySpec(kind="complete", n=4), seed=3
        )
        calls = []

        def counting_check(result):
            calls.append(result.spec.scenario_hash())
            return check_result(result)

        evaluate = oracle_evaluator(counting_check)
        assert evaluate(spec) == ()
        assert evaluate(spec) == ()
        assert len(calls) == 1


class _FakeReport:
    def __init__(self, mismatches):
        self._mismatches = mismatches

    def mismatches(self):
        return self._mismatches


class TestConformanceEvaluator:
    """The divergence-as-the-bug evaluator the farm's nightly lane uses."""

    def _diverging_runner(self, calls):
        """Backends "disagree" exactly while the candidate stays lossy."""

        def run(spec, backends, overrides=None, mode="auto"):
            calls.append((spec.scenario_hash(), tuple(backends), mode))
            if spec.is_lossy:
                return _FakeReport(["safety verdicts differ on simulation"])
            return _FakeReport([])

        return run

    def test_mismatches_become_conformance_violations(self):
        calls = []
        evaluate = conformance_evaluator(
            ("simulation", "asyncio"),
            mode="safety",
            run=self._diverging_runner(calls),
        )
        violations = evaluate(_noisy_spec())
        assert [v.invariant for v in violations] == ["conformance"]
        assert "safety verdicts differ" in violations[0].detail
        assert calls[0][1] == ("simulation", "asyncio")
        assert calls[0][2] == "safety"

    def test_memoized_by_scenario_hash(self):
        calls = []
        evaluate = conformance_evaluator(run=self._diverging_runner(calls))
        spec = _noisy_spec()
        assert evaluate(spec) == evaluate(spec)
        assert len(calls) == 1

    def test_shrinker_minimizes_a_divergence(self):
        # The fake divergence only needs lossy links: the shrinker must
        # strip the fault machinery while the backends still "disagree".
        evaluate = conformance_evaluator(run=self._diverging_runner([]))
        outcome = shrink_failing_spec(_noisy_spec(), evaluate)
        assert outcome.at_fixpoint
        assert outcome.minimal.is_lossy
        assert fault_event_count(outcome.minimal) == 0
        assert {v.invariant for v in outcome.violations} == {"conformance"}

    def test_green_report_means_nothing_to_shrink(self):
        evaluate = conformance_evaluator(
            run=lambda spec, backends, overrides=None, mode="auto": _FakeReport([])
        )
        with pytest.raises(ValueError, match="does not violate"):
            shrink_failing_spec(_noisy_spec(), evaluate)
