"""Budgeted streaming execution (:meth:`SweepExecutor.run_stream`):
cell budgets, time budgets over infinite generators, cache semantics,
and serial/pool equivalence."""

import itertools

import pytest

from repro.runner import StreamedResult, SweepExecutor
from repro.scenarios import DelaySpec, ScenarioSpec, TopologySpec


def _cells(count):
    return [
        ScenarioSpec(
            name=f"stream-{index}",
            topology=TopologySpec(kind="complete", n=4),
            delay=DelaySpec(kind="fixed", mean_ms=5.0),
            seed=index,
        )
        for index in range(count)
    ]


def _infinite_cells():
    for index in itertools.count():
        yield ScenarioSpec(
            name=f"endless-{index}",
            topology=TopologySpec(kind="complete", n=4),
            delay=DelaySpec(kind="fixed", mean_ms=5.0),
            seed=index,
        )


class TestBudgets:
    def test_max_cells_bounds_an_infinite_stream(self):
        executor = SweepExecutor(workers=1)
        streamed = list(executor.run_stream(_infinite_cells(), max_cells=5))
        assert [item.index for item in streamed] == [0, 1, 2, 3, 4]
        assert all(isinstance(item, StreamedResult) for item in streamed)
        assert all(item.result.spec == item.spec for item in streamed)

    def test_no_budget_drains_a_finite_iterable(self):
        executor = SweepExecutor(workers=1)
        streamed = list(executor.run_stream(_cells(3)))
        assert len(streamed) == 3

    def test_zero_cell_budget_consumes_nothing(self):
        executor = SweepExecutor(workers=1)
        consumed = []

        def tracking():
            for spec in _infinite_cells():
                consumed.append(spec)
                yield spec

        assert list(executor.run_stream(tracking(), max_cells=0)) == []
        assert consumed == []

    def test_time_budget_stops_consumption(self):
        executor = SweepExecutor(workers=1)
        streamed = list(
            executor.run_stream(_infinite_cells(), time_budget_s=0.2)
        )
        # The budget is checked between cells: the stream terminated and
        # made progress, without draining the infinite generator.
        assert streamed
        assert [item.index for item in streamed] == list(range(len(streamed)))

    def test_expired_time_budget_runs_nothing(self):
        executor = SweepExecutor(workers=1)
        assert list(executor.run_stream(_infinite_cells(), time_budget_s=0.0)) == []

    def test_invalid_budgets_are_rejected(self):
        executor = SweepExecutor(workers=1)
        with pytest.raises(ValueError, match="time_budget_s"):
            list(executor.run_stream(_cells(1), time_budget_s=-1.0))
        with pytest.raises(ValueError, match="max_cells"):
            list(executor.run_stream(_cells(1), max_cells=-1))


class TestCache:
    def test_cache_hits_count_and_flag(self, tmp_path):
        executor = SweepExecutor(workers=1, cache_dir=tmp_path)
        cells = _cells(3)
        first = list(executor.run_stream(cells, max_cells=3))
        assert executor.cache_hits == 0
        assert [item.cached for item in first] == [False, False, False]
        second = list(executor.run_stream(cells, max_cells=3))
        assert executor.cache_hits == 3
        assert [item.cached for item in second] == [True, True, True]
        assert [item.result for item in second] == [item.result for item in first]

    def test_stream_shares_the_cache_with_run(self, tmp_path):
        executor = SweepExecutor(workers=1, cache_dir=tmp_path)
        cells = _cells(2)
        executor.run(cells)
        streamed = list(executor.run_stream(cells, max_cells=2))
        assert executor.cache_hits == 2
        assert all(item.cached for item in streamed)


class TestPoolEquivalence:
    def test_pool_results_match_serial_in_order(self, tmp_path):
        cells = _cells(6)
        serial = list(SweepExecutor(workers=1).run_stream(cells))
        pooled = list(SweepExecutor(workers=2).run_stream(iter(cells)))
        assert [item.index for item in pooled] == [item.index for item in serial]
        assert [item.spec for item in pooled] == [item.spec for item in serial]
        assert [item.result for item in pooled] == [
            item.result for item in serial
        ]

    def test_pool_max_cells_budget(self):
        executor = SweepExecutor(workers=2)
        streamed = list(executor.run_stream(_infinite_cells(), max_cells=5))
        assert [item.index for item in streamed] == [0, 1, 2, 3, 4]

    def test_pool_drains_in_flight_cells_after_time_expiry(self):
        executor = SweepExecutor(workers=2)
        streamed = list(
            executor.run_stream(_infinite_cells(), time_budget_s=0.2)
        )
        # Dispatched cells are never discarded: the indices yielded are
        # a gapless prefix of the consumed stream.
        assert streamed
        assert [item.index for item in streamed] == list(range(len(streamed)))
