"""Fuzz farm and CLI tests.

The real protocol keeps the oracle green, so the pivotal tests inject an
instrumented result checker that forges a delivery (the exact craft of
``tests/oracles/test_oracle_unit.py``) into the results of a predicate-
matched subset of cells — the farm must *find* such a cell inside its
budget, *shrink* it to strictly fewer fault events on a topology no
larger, and do both *identically* across two same-seed runs.
"""

import dataclasses
import json

import pytest

from repro.scenarios.oracle import check_result
from repro.scenarios.reduce import fault_event_count
from repro.fuzz.cli import main
from repro.fuzz.corpus import Corpus
from repro.fuzz.farm import FuzzFarm, FuzzReport
from repro.fuzz.sample import stream_fuzz_specs

#: Cell budget inside which seed-0 streams contain lossy cells (the
#: first sampler round already does).
BUDGET = 8


def forge_delivery_when_lossy(result):
    """The forged-delivery craft from the oracle unit tests, keyed on a
    spec predicate so fuzzed streams contain both red and green cells."""
    if result.spec.is_lossy:
        metrics = result.metrics
        forged_key = (1, (1, 99))  # process 1 "delivered" (source=1, bid=99)
        patched = dataclasses.replace(
            metrics,
            delivery_times={**metrics.delivery_times, forged_key: 1.0},
            delivered_payloads={**metrics.delivered_payloads, forged_key: b"x"},
        )
        result = dataclasses.replace(result, metrics=patched)
    return check_result(result)


class TestStream:
    def test_stream_is_seed_deterministic(self):
        def take(count, **kwargs):
            stream = stream_fuzz_specs(**kwargs)
            return [next(stream) for _ in range(count)]

        assert take(40, seed=4) == take(40, seed=4)
        assert take(40, seed=4) != take(40, seed=5)

    def test_stream_crosses_batch_boundaries(self):
        stream = stream_fuzz_specs(seed=0, batch_size=5)
        specs = [next(stream) for _ in range(12)]
        assert len({spec.scenario_hash() for spec in specs}) == 12
        assert {spec.name.split("-r")[-1].split("-")[0] for spec in specs} >= {
            "0",
            "1",
            "2",
        }

    def test_stream_decorates_workloads_and_spreads_backends(self):
        stream = stream_fuzz_specs(
            seed=1, backends=("simulation", "asyncio"), workload_fraction=0.5
        )
        specs = [next(stream) for _ in range(40)]
        assert any(spec.workload is not None for spec in specs)
        assert {spec.backend for spec in specs} == {"simulation", "asyncio"}

    def test_stream_rejects_empty_backends(self):
        with pytest.raises(ValueError, match="at least one backend"):
            next(stream_fuzz_specs(backends=()))

    def test_stream_restacks_rco_cells(self):
        stream = stream_fuzz_specs(seed=1, rco_fraction=0.5)
        specs = [next(stream) for _ in range(40)]
        rco = [spec for spec in specs if spec.protocol == "rco_cross_layer"]
        assert rco, "an rco_fraction of 0.5 must restack some cells"
        assert any(spec.protocol == "cross_layer" for spec in specs)
        # Some RCO cells carry a causally-chained workload, so the
        # cross-source pending-set machinery gets fuzzed too.
        assert any(
            broadcast.successor is not None
            for spec in rco
            if spec.workload is not None
            for broadcast in spec.workload.broadcasts
        )

    def test_zero_rco_fraction_leaves_the_protocol_alone(self):
        stream = stream_fuzz_specs(seed=1, rco_fraction=0.0)
        specs = [next(stream) for _ in range(40)]
        assert all(spec.protocol == "cross_layer" for spec in specs)


class TestFarm:
    def test_run_requires_a_budget(self, tmp_path):
        farm = FuzzFarm(tmp_path / "corpus")
        with pytest.raises(ValueError, match="needs a budget"):
            farm.run()

    def test_green_checker_yields_exit_zero(self, tmp_path):
        farm = FuzzFarm(tmp_path / "corpus", check=lambda result: (), seed=0)
        report = farm.run(max_cells=4)
        assert report.cells_run == 4
        assert report.violation_count == 0
        assert report.exit_code == 0
        assert report.manifest_hash == Corpus(tmp_path / "corpus").manifest_hash()

    def test_injected_violation_is_found_and_shrunk(self, tmp_path):
        """The acceptance criterion: find → shrink, within the budget."""
        farm = FuzzFarm(
            tmp_path / "corpus", check=forge_delivery_when_lossy, seed=0
        )
        report = farm.run(max_cells=BUDGET)
        hashes = report.new_records.get("oracle_violation", [])
        assert hashes, "the budgeted run must find an injected violation"
        assert report.exit_code == 2
        assert report.shrink_steps > 0
        corpus = Corpus(tmp_path / "corpus")
        records = [corpus.load(scenario_hash) for scenario_hash in hashes]
        # At least one offender carried fault machinery the shrinker
        # proved incidental (strictly fewer fault events in the minimum).
        assert any(
            fault_event_count(r.shrunk_spec) < fault_event_count(r.spec)
            for r in records
        )
        for record in records:
            assert record.violations
            assert "no_forgery" in {inv for inv, _ in record.violations}
            assert record.shrunk_spec is not None
            # Strictly fewer fault events, never a larger topology.
            assert fault_event_count(record.shrunk_spec) < fault_event_count(
                record.spec
            ) or fault_event_count(record.spec) == 0
            assert (
                record.shrunk_spec.topology.node_count
                <= record.spec.topology.node_count
            )
            # The minimal reproducer still trips the injected bug.
            assert record.shrunk_spec.is_lossy
            assert record.shrunk_violations
            assert record.regression_stub is not None
            assert "def test_regression_" in record.regression_stub

    def test_same_seed_runs_are_identical(self, tmp_path):
        """Find + shrink are deterministic: two same-seed farms write
        byte-identical corpora (and therefore equal manifest hashes)."""
        reports = []
        for run in ("a", "b"):
            farm = FuzzFarm(
                tmp_path / run, check=forge_delivery_when_lossy, seed=0
            )
            reports.append(farm.run(max_cells=BUDGET))
        first, second = reports
        assert first.new_records == second.new_records
        assert first.manifest_hash == second.manifest_hash
        corpus_a, corpus_b = Corpus(tmp_path / "a"), Corpus(tmp_path / "b")
        assert corpus_a.hashes() == corpus_b.hashes()
        for scenario_hash in corpus_a.hashes():
            assert corpus_a.path_for(scenario_hash).read_text() == corpus_b.path_for(
                scenario_hash
            ).read_text()

    def test_rediscovery_is_deduplicated(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        first = FuzzFarm(
            corpus_dir, check=forge_delivery_when_lossy, seed=0
        ).run(max_cells=BUDGET)
        assert first.new_records.get("oracle_violation")
        second = FuzzFarm(
            corpus_dir, check=forge_delivery_when_lossy, seed=0
        ).run(max_cells=BUDGET)
        assert second.new_records.get("oracle_violation", []) == []
        assert second.duplicate_violations == len(
            first.new_records["oracle_violation"]
        )
        assert second.exit_code == 2  # re-discovered violations still fail CI

    def test_cache_is_shared_between_runs(self, tmp_path):
        cache_dir = tmp_path / "cache"
        kwargs = dict(cache_dir=cache_dir, check=lambda result: (), seed=0)
        first = FuzzFarm(tmp_path / "a", **kwargs).run(max_cells=4)
        second = FuzzFarm(tmp_path / "b", **kwargs).run(max_cells=4)
        assert first.cache_hits == 0
        assert second.cache_hits == 4

    def test_near_f_bound_survivors_are_recorded(self, tmp_path):
        farm = FuzzFarm(tmp_path / "corpus", seed=0)
        report = farm.run(max_cells=24)
        hashes = report.new_records.get("near_f_bound", [])
        assert hashes, "seed-0 stream contains f-saturated safe cells"
        corpus = Corpus(tmp_path / "corpus")
        for scenario_hash in hashes:
            record = corpus.load(scenario_hash)
            assert record.spec.f > 0
            assert record.stats["byzantine"] >= record.spec.f
        assert corpus.validate() == {}

    def test_batched_executor_path_matches_streaming(self, tmp_path):
        class BatchOnlyExecutor:
            """A ``run(cells)``-only executor (the distributed shape)."""

            def __init__(self):
                from repro.runner.parallel import SweepExecutor

                self._inner = SweepExecutor(workers=1)
                self.cache_hits = 0

            def run(self, cells):
                return self._inner.run(cells)

        streamed = FuzzFarm(
            tmp_path / "a", check=forge_delivery_when_lossy, seed=0
        ).run(max_cells=BUDGET)
        batched = FuzzFarm(
            tmp_path / "b",
            executor=BatchOnlyExecutor(),
            check=forge_delivery_when_lossy,
            seed=0,
            batch_size=3,
        ).run(max_cells=BUDGET)
        assert batched.cells_run == BUDGET
        assert batched.new_records == streamed.new_records
        assert batched.manifest_hash == streamed.manifest_hash

    def test_no_shrink_records_the_raw_offender(self, tmp_path):
        farm = FuzzFarm(
            tmp_path / "corpus",
            check=forge_delivery_when_lossy,
            seed=0,
            shrink=False,
        )
        report = farm.run(max_cells=BUDGET)
        assert report.exit_code == 2
        assert report.shrink_steps == 0
        corpus = Corpus(tmp_path / "corpus")
        for scenario_hash in report.new_records["oracle_violation"]:
            record = corpus.load(scenario_hash)
            assert record.shrunk_spec is None
            assert record.regression_stub is None

    def test_report_summary_mentions_everything(self):
        report = FuzzReport(
            cells_run=3,
            cache_hits=1,
            elapsed_s=0.5,
            new_records={"oracle_violation": ["abc"]},
            duplicate_violations=2,
            shrink_steps=4,
            shrink_attempts=9,
            pruned_records=7,
            manifest_hash="deadbeef",
        )
        text = "\n".join(report.summary_lines())
        assert "cells run: 3" in text
        assert "new oracle_violation records: 1" in text
        assert "re-discovered known violations: 2" in text
        assert "4 accepted steps / 9 attempts" in text
        assert "pruned transient records: 7" in text
        assert "deadbeef" in text

    def test_transient_cap_bounds_the_corpus(self, tmp_path):
        capped = FuzzFarm(tmp_path / "capped", seed=0, transient_cap=1)
        report = capped.run(max_cells=24)
        assert report.pruned_records > 0
        categories = [
            record.category for record in Corpus(tmp_path / "capped").records()
        ]
        assert categories.count("near_f_bound") <= 1
        assert categories.count("latency_outlier") <= 1

        unbounded = FuzzFarm(tmp_path / "raw", seed=0, transient_cap=None)
        raw = unbounded.run(max_cells=24)
        assert raw.pruned_records == 0
        raw_count = len(Corpus(tmp_path / "raw").hashes())
        assert raw_count > len(Corpus(tmp_path / "capped").hashes())

    def test_rco_cells_keep_the_farm_green(self, tmp_path):
        farm = FuzzFarm(tmp_path / "corpus", seed=0, rco_fraction=1.0)
        report = farm.run(max_cells=8)
        assert report.cells_run == 8
        assert report.violation_count == 0
        assert report.exit_code == 0


class TestConformanceDivergence:
    @staticmethod
    def _forge(result):
        metrics = result.metrics
        forged_key = (1, (1, 99))
        patched = dataclasses.replace(
            metrics,
            delivery_times={**metrics.delivery_times, forged_key: 1.0},
            delivered_payloads={**metrics.delivered_payloads, forged_key: b"x"},
        )
        return dataclasses.replace(result, metrics=patched)

    def test_unreproducible_divergence_is_recorded_unshrunk(
        self, tmp_path, monkeypatch
    ):
        """The mirror run "diverges", but the conformance evaluator's
        honest baseline re-run is green: the farm must keep the raw
        offender instead of crashing on the failed shrink."""
        from repro.fuzz import farm as farm_module

        real_run = farm_module.run_scenario
        monkeypatch.setattr(
            farm_module, "run_scenario", lambda spec: self._forge(real_run(spec))
        )
        farm = FuzzFarm(
            tmp_path / "corpus",
            check=lambda result: (),
            seed=0,
            conformance_backends=("simulation", "asyncio"),
        )
        report = farm.run(max_cells=2)
        hashes = report.new_records.get("conformance_divergence", [])
        assert hashes, "every mirrored cell diverges under the forge"
        corpus = Corpus(tmp_path / "corpus")
        for scenario_hash in hashes:
            record = corpus.load(scenario_hash)
            assert record.stats["diverging_backend"] == "asyncio"
            assert record.shrunk_spec is None
            assert record.shrunk_violations == ()

    def test_reproducible_divergence_is_shrunk(self, tmp_path, monkeypatch):
        """When the cross-backend evaluator reproduces the divergence,
        the recorded spec carries a minimized reproducer."""
        from repro.scenarios.oracle import OracleViolation
        from repro.fuzz import farm as farm_module

        real_run = farm_module.run_scenario
        monkeypatch.setattr(
            farm_module, "run_scenario", lambda spec: self._forge(real_run(spec))
        )

        def fake_evaluator(backends, *, mode="auto", overrides=None, run=None):
            assert mode == "safety"

            def evaluate(spec):
                return (
                    OracleViolation(invariant="conformance", detail="fake"),
                )

            return evaluate

        monkeypatch.setattr(farm_module, "conformance_evaluator", fake_evaluator)
        farm = FuzzFarm(
            tmp_path / "corpus",
            check=lambda result: (),
            seed=0,
            conformance_backends=("simulation", "asyncio"),
        )
        report = farm.run(max_cells=2)
        hashes = report.new_records.get("conformance_divergence", [])
        assert hashes
        assert report.shrink_attempts > 0
        corpus = Corpus(tmp_path / "corpus")
        for scenario_hash in hashes:
            record = corpus.load(scenario_hash)
            assert record.shrunk_spec is not None
            assert ("conformance", "fake") in record.shrunk_violations


class TestCLI:
    def test_fuzz_run_then_corpus_tools(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        assert (
            main(["--corpus-dir", corpus_dir, "--max-cells", "6", "--seed", "0"])
            == 0
        )
        out = capsys.readouterr().out
        assert "cells run: 6" in out
        assert "corpus manifest hash: " in out

        assert main(["--corpus-dir", corpus_dir, "--validate-corpus"]) == 0
        out = capsys.readouterr().out
        assert "corpus OK" in out
        assert "manifest hash: " in out

        assert main(["--corpus-dir", corpus_dir, "--list"]) == 0

    def test_replay_roundtrip_and_missing_hash(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        main(["--corpus-dir", corpus_dir, "--max-cells", "24", "--seed", "0"])
        capsys.readouterr()
        corpus = Corpus(corpus_dir)
        hashes = corpus.hashes()
        assert hashes, "a 24-cell seed-0 run records interesting specs"
        assert main(["--corpus-dir", corpus_dir, "--replay", hashes[0]]) == 0
        assert "oracle green" in capsys.readouterr().out
        assert main(["--corpus-dir", corpus_dir, "--replay", "0" * 64]) == 1

    def test_validate_flags_a_corrupt_record(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        corpus_dir.mkdir()
        (corpus_dir / ("c" * 64 + ".json")).write_text(json.dumps({"schema": 99}))
        assert main(["--corpus-dir", str(corpus_dir), "--validate-corpus"]) == 1
        assert "corpus INVALID" in capsys.readouterr().out

    def test_usage_error_without_budget(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["--corpus-dir", str(tmp_path)])
        assert excinfo.value.code == 2

    def test_transient_cap_zero_empties_the_transient_tiers(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        code = main(
            [
                "--corpus-dir",
                corpus_dir,
                "--max-cells",
                "24",
                "--seed",
                "0",
                "--transient-cap",
                "0",
                "--rco-fraction",
                "0.0",
            ]
        )
        assert code == 0
        assert "pruned transient records:" in capsys.readouterr().out
        assert Corpus(corpus_dir).hashes() == ()

    def test_negative_transient_cap_disables_pruning(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        code = main(
            [
                "--corpus-dir",
                corpus_dir,
                "--max-cells",
                "24",
                "--seed",
                "0",
                "--transient-cap",
                "-1",
            ]
        )
        assert code == 0
        assert "pruned transient records" not in capsys.readouterr().out
        assert Corpus(corpus_dir).hashes(), "unpruned transients stay recorded"
