"""Corpus and spec-JSON codec tests: round trips preserve scenario
hashes, records validate against the schema, the manifest hash is a
stable cache key, and replay re-runs a stored spec exactly."""

import json

import pytest

from repro.scenarios import (
    CrashWhen,
    DelaySpec,
    ObservationFilter,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.scenarios.jsonio import (
    SpecJSONError,
    dumps_spec_json,
    loads_spec_json,
    spec_from_jsonable,
    spec_to_jsonable,
)
from repro.scenarios.oracle import sample_lossy_adaptive_specs
from repro.fuzz.corpus import (
    CATEGORIES,
    DEFAULT_TRANSIENT_CAP,
    RECORD_SCHEMA_VERSION,
    TRANSIENT_CATEGORIES,
    Corpus,
    CorpusRecord,
    validate_record_data,
)


def _spec(seed=0, **kwargs):
    kwargs.setdefault("name", "corpus-test")
    kwargs.setdefault("topology", TopologySpec(kind="complete", n=4))
    return ScenarioSpec(seed=seed, **kwargs)


def _record(seed=0, category="near_f_bound", **kwargs):
    return CorpusRecord(category=category, spec=_spec(seed=seed), **kwargs)


class TestSpecJSON:
    def test_roundtrip_preserves_equality_and_hash(self):
        specs = sample_lossy_adaptive_specs(20, seed=7, name="rt")
        for spec in specs:
            decoded = loads_spec_json(dumps_spec_json(spec))
            assert decoded == spec
            assert decoded.scenario_hash() == spec.scenario_hash()

    def test_roundtrip_covers_workload_and_adaptive(self):
        spec = _spec(
            delay=DelaySpec(kind="uniform", mean_ms=5.0, loss=0.1),
            f=1,
            adaptive=(CrashWhen(pid=1, after=ObservationFilter(kind="send")),),
            workload=WorkloadSpec.repeated(0, 3, 10.0),
        )
        decoded = loads_spec_json(dumps_spec_json(spec))
        assert decoded == spec
        assert isinstance(decoded.adaptive[0], CrashWhen)
        assert decoded.workload is not None
        assert decoded.workload.broadcasts == spec.workload.broadcasts

    def test_unknown_type_tag_is_rejected(self):
        with pytest.raises(SpecJSONError, match="unknown spec type tag"):
            spec_from_jsonable({"__type__": "EvilSpec"})

    def test_missing_type_tag_is_rejected(self):
        with pytest.raises(SpecJSONError, match="lacks a __type__ tag"):
            spec_from_jsonable({"n": 4})

    def test_unknown_field_is_rejected(self):
        document = spec_to_jsonable(_spec())
        document["not_a_field"] = 1
        with pytest.raises(SpecJSONError, match="has no field"):
            spec_from_jsonable(document)

    def test_malformed_json_is_rejected(self):
        with pytest.raises(SpecJSONError, match="malformed spec JSON"):
            loads_spec_json("{not json")

    def test_unregistered_dataclass_cannot_encode(self):
        import dataclasses

        @dataclasses.dataclass
        class Rogue:
            x: int = 1

        with pytest.raises(SpecJSONError, match="not a registered spec type"):
            spec_to_jsonable(Rogue())


class TestCorpusRecord:
    def test_roundtrip(self):
        record = CorpusRecord(
            category="oracle_violation",
            spec=_spec(seed=3),
            violations=(("no_forgery", "crafted"),),
            stats={"latency_ms": 12.5},
            shrunk_spec=_spec(seed=3, topology=TopologySpec(kind="complete", n=2)),
            shrunk_violations=(("no_forgery", "crafted"),),
            regression_stub="def test(): pass",
            discovery={"stream_seed": 0},
        )
        restored = CorpusRecord.from_jsonable(record.to_jsonable())
        assert restored == record

    def test_unknown_category_is_rejected(self):
        with pytest.raises(ValueError, match="unknown corpus category"):
            CorpusRecord(category="interesting", spec=_spec())

    def test_validate_flags_schema_version_category_and_hash(self):
        data = _record().to_jsonable()
        assert validate_record_data(data) == []
        assert "schema must be" in "".join(
            validate_record_data({**data, "schema": RECORD_SCHEMA_VERSION + 1})
        )
        assert "unknown category" in "".join(
            validate_record_data({**data, "category": "nope"})
        )
        assert "does not match" in "".join(
            validate_record_data({**data, "hash": "0" * 64})
        )
        assert "lacks a spec" in "".join(
            validate_record_data({k: v for k, v in data.items() if k != "spec"})
        )
        assert "must be a list" in "".join(
            validate_record_data({**data, "violations": "oops"})
        )
        assert validate_record_data([]) == [
            "record must be a JSON object, got list"
        ]


class TestCorpus:
    def test_add_is_deduplicated_by_hash(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        record = _record()
        assert corpus.add(record) is True
        assert corpus.add(record) is False
        assert record.scenario_hash in corpus
        assert corpus.hashes() == (record.scenario_hash,)

    def test_load_and_records_roundtrip(self, tmp_path):
        corpus = Corpus(tmp_path)
        first, second = _record(seed=1), _record(seed=2)
        corpus.add(first)
        corpus.add(second)
        assert corpus.load(first.scenario_hash) == first
        assert sorted(r.scenario_hash for r in corpus.records()) == sorted(
            [first.scenario_hash, second.scenario_hash]
        )

    def test_load_missing_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError):
            Corpus(tmp_path).load("f" * 64)

    def test_manifest_hash_tracks_content_not_insertion_order(self, tmp_path):
        forward, backward = Corpus(tmp_path / "a"), Corpus(tmp_path / "b")
        records = [_record(seed=seed) for seed in (1, 2, 3)]
        for record in records:
            forward.add(record)
        for record in reversed(records):
            backward.add(record)
        assert forward.manifest_hash() == backward.manifest_hash()
        empty_hash = Corpus(tmp_path / "empty").manifest_hash()
        assert empty_hash != forward.manifest_hash()
        backward.add(_record(seed=4))
        assert forward.manifest_hash() != backward.manifest_hash()

    def test_write_manifest_lists_every_record(self, tmp_path):
        corpus = Corpus(tmp_path)
        corpus.add(_record(seed=1))
        corpus.add(_record(seed=2, category="latency_outlier"))
        path = corpus.write_manifest()
        manifest = json.loads(path.read_text())
        assert manifest["schema"] == RECORD_SCHEMA_VERSION
        assert sorted(e["hash"] for e in manifest["records"]) == list(corpus.hashes())
        assert {e["category"] for e in manifest["records"]} == {
            "near_f_bound",
            "latency_outlier",
        }
        # The manifest file itself is never mistaken for a record.
        assert "manifest" not in corpus.hashes()

    def test_validate_reports_corrupt_records(self, tmp_path):
        corpus = Corpus(tmp_path)
        record = _record()
        corpus.add(record)
        assert corpus.validate() == {}
        # A record stored under the wrong name and a truncated file.
        good = corpus.path_for(record.scenario_hash).read_text()
        (tmp_path / ("a" * 64 + ".json")).write_text(good)
        (tmp_path / ("b" * 64 + ".json")).write_text("{truncated")
        problems = corpus.validate()
        assert set(problems) == {"a" * 64 + ".json", "b" * 64 + ".json"}
        assert any("file name hash" in p for p in problems["a" * 64 + ".json"])
        assert any("unreadable" in p for p in problems["b" * 64 + ".json"])

    def test_replay_reruns_the_stored_spec(self, tmp_path):
        corpus = Corpus(tmp_path)
        record = _record(seed=9)
        corpus.add(record)
        result = corpus.replay(record.scenario_hash)
        assert result.spec == record.spec

    def test_categories_are_the_documented_four(self):
        assert CATEGORIES == (
            "oracle_violation",
            "conformance_divergence",
            "near_f_bound",
            "latency_outlier",
        )

    def test_transient_categories_exclude_violations(self):
        assert TRANSIENT_CATEGORIES == ("near_f_bound", "latency_outlier")
        assert "oracle_violation" not in TRANSIENT_CATEGORIES
        assert "conformance_divergence" not in TRANSIENT_CATEGORIES
        assert DEFAULT_TRANSIENT_CAP > 0


class TestPrune:
    def _filled(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        for seed in range(6):
            corpus.add(_record(seed=seed, category="near_f_bound"))
        for seed in range(6, 9):
            corpus.add(_record(seed=seed, category="latency_outlier"))
        corpus.add(
            _record(
                seed=20,
                category="oracle_violation",
                violations=(("agreement", "split"),),
            )
        )
        return corpus

    def test_caps_each_transient_category(self, tmp_path):
        corpus = self._filled(tmp_path)
        removed = corpus.prune(max_per_category=2)
        assert len(removed) == (6 - 2) + (3 - 2)
        remaining = [corpus.load(h).category for h in corpus.hashes()]
        assert remaining.count("near_f_bound") == 2
        assert remaining.count("latency_outlier") == 2
        for scenario_hash in removed:
            assert scenario_hash not in corpus

    def test_violations_are_kept_forever(self, tmp_path):
        corpus = self._filled(tmp_path)
        corpus.prune(max_per_category=0)
        remaining = [corpus.load(h).category for h in corpus.hashes()]
        assert remaining == ["oracle_violation"]

    def test_retention_is_a_sorted_hash_prefix_per_category(self, tmp_path):
        # Records carry no timestamps by design, so the survivors must
        # be the first ``cap`` hashes per category in sorted order — the
        # only retention rule every same-seed farm process agrees on.
        first, second = self._filled(tmp_path / "a"), self._filled(tmp_path / "b")
        expected = {}
        for scenario_hash in first.hashes():
            category = first.load(scenario_hash).category
            if category in TRANSIENT_CATEGORIES:
                expected.setdefault(category, []).append(scenario_hash)
        first.prune(max_per_category=3)
        second.prune(max_per_category=3)
        assert first.hashes() == second.hashes()
        for category, hashes in expected.items():
            survivors = [h for h in hashes if h in first]
            assert survivors == hashes[:3]

    def test_untouched_under_cap(self, tmp_path):
        corpus = self._filled(tmp_path)
        before = corpus.hashes()
        assert corpus.prune(max_per_category=10) == ()
        assert corpus.hashes() == before

    def test_negative_cap_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            Corpus(tmp_path).prune(max_per_category=-1)
