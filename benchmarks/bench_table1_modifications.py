"""Table 1 — impact of each modification MBD.1–12 (synchronous networks).

For every modification the paper reports the range of relative variation
of latency and network consumption ("# bits") across its experiment grid,
for a small (16 B) and a large (1024 B) payload.  MBD.1 is compared
against BDopt; MBD.2–12 are compared against BDopt + MBD.1.
"""

import pytest

from repro.core.modifications import ModificationSet
from repro.runner.experiment import ExperimentConfig
from repro.runner.sweep import paired_variations

from benchmarks.common import current_scale, emit, emit_header, format_range, save_record

SCALE = current_scale()
PAYLOAD_SIZES = (16, 1024)


def _reference_for(index: int) -> ModificationSet:
    return (
        ModificationSet.dolev_optimized()
        if index == 1
        else ModificationSet.bdopt_with_mbd1()
    )


def _run_modification_study(index: int, payload_size: int, synchronous: bool = True):
    reference = ExperimentConfig(
        n=SCALE.modification_grid[0][0],
        k=SCALE.modification_grid[0][1],
        f=SCALE.modification_grid[0][2],
        payload_size=payload_size,
        synchronous=synchronous,
        modifications=_reference_for(index),
    )
    return paired_variations(
        reference,
        ModificationSet.single_mbd(index),
        grid=SCALE.modification_grid,
        runs=SCALE.runs,
    )


@pytest.mark.parametrize("payload_size", PAYLOAD_SIZES)
def test_table1_impact_of_each_modification(benchmark, payload_size):
    """Regenerate the Table 1 rows for one payload size."""

    def study():
        rows = {}
        for index in range(1, 13):
            rows[index] = _run_modification_study(index, payload_size)
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)

    emit_header(
        f"Table 1 — per-modification impact, synchronous, payload {payload_size} B "
        f"(scale={SCALE.name}, grid={SCALE.modification_grid})"
    )
    emit(f"{'MBD':>4} | {'Lat. var. %':>16} | {'# bits var. %':>16}")
    record = {}
    for index, variations in rows.items():
        latencies = [
            v.latency_variation_percent
            for v in variations
            if v.latency_variation_percent is not None
        ]
        sizes = [v.bytes_variation_percent for v in variations]
        emit(f"{index:>4} | {format_range(latencies):>16} | {format_range(sizes):>16}")
        record[f"mbd{index}"] = {
            "latency_variation_percent": latencies,
            "bytes_variation_percent": sizes,
        }
    save_record(f"table1_payload{payload_size}_sync", {
        "scale": SCALE.name,
        "payload_size": payload_size,
        "grid": list(SCALE.modification_grid),
        "rows": record,
    })

    # Shape checks mirroring the paper's headline observations: MBD.1 slashes
    # network consumption (−61/−68% at 16 B, −97/−98% at 1024 B in the paper;
    # the exact magnitude at 16 B depends on the header/payload ratio).
    mbd1_bytes = record["mbd1"]["bytes_variation_percent"]
    threshold = -20.0 if payload_size <= 64 else -80.0
    assert max(mbd1_bytes) < threshold, "MBD.1 should slash network consumption"
    mbd7_bytes = record["mbd7"]["bytes_variation_percent"]
    assert min(mbd7_bytes) < 0.0, "MBD.7 should reduce network consumption"
