"""Fig. 6a / 6b — improvement of the lat. and bdw. configurations vs BDopt+MBD.1.

The paper plots, for N = 30 and N = 50 with a 1024 B payload, the relative
variation (in %) of network consumption and latency of the *lat.* and
*bdw.* configurations over BDopt + MBD.1, as a function of connectivity.

Ported to the scenario engine: every (configuration, k, seed) point is
one scenario cell, and candidate and reference cells for the whole figure
are fanned out together through the parallel sweep executor.
"""

from repro.core.modifications import ModificationSet
from repro.metrics.report import relative_variation_percent
from repro.runner.parallel import SweepExecutor
from repro.scenarios import DelaySpec, ScenarioSpec, TopologySpec, seed_cells

from benchmarks.common import (
    current_scale,
    emit,
    emit_header,
    k_grid_for,
    mean_or_none,
    save_record,
    sweep_workers,
)

SCALE = current_scale()

CONFIGURATIONS = {
    "Lat.": ModificationSet.latency_optimized(),
    "Bdw.": ModificationSet.bandwidth_optimized(),
}


def _cells(n, k, f, mods, seed=31):
    base = ScenarioSpec(
        name=f"fig6-n{n}-k{k}",
        topology=TopologySpec(kind="random_regular", n=n, k=k, min_connectivity=min(k, 2 * f + 1)),
        delay=DelaySpec(kind="fixed", mean_ms=50.0),
        modifications=mods,
        f=f,
        payload_size=1024,
        seed=seed,
        shared_bandwidth_bps=1e9,
    )
    return seed_cells(base, SCALE.runs)


def _means(results):
    return (
        mean_or_none([r.latency_ms for r in results]),
        mean_or_none([r.total_bytes / 1000.0 for r in results]),
    )


def fig6_layout():
    """Lay out every cell of the figure at the current scale.

    Returns ``(points, cells)``: each point is ``(series name, n, k,
    reference slice, candidate slice)`` indexing into ``cells``.  The
    bench ratchet reuses the same grid (fixed seeds, same topologies) so
    its throughput numbers track exactly the workload this benchmark
    times.
    """
    points = []  # (series name, n, k, slice of reference cells, slice of candidate cells)
    cells = []
    for n in SCALE.fig6_ns:
        f = max(1, n // 7)  # mid-range f, as in the paper's choice
        ks = k_grid_for(n, f, tuple(sorted({max(2 * f + 1, n // 3), n // 2, n - n // 4})))
        for k in ks:
            # One shared reference slice per (n, k): both candidate
            # configurations compare against the same runs.
            reference = _cells(n, k, f, ModificationSet.bdopt_with_mbd1())
            ref_slice = slice(len(cells), len(cells) + len(reference))
            cells.extend(reference)
            for name, mods in CONFIGURATIONS.items():
                candidate = _cells(n, k, f, mods)
                cand_slice = slice(len(cells), len(cells) + len(candidate))
                cells.extend(candidate)
                points.append((f"{name}, N={n}", n, k, ref_slice, cand_slice))
    return points, cells


def test_fig6_scaling_with_number_of_processes(benchmark):
    # Reference and candidates on the same topologies and seeds, run in
    # one parallel sweep.
    points, cells = fig6_layout()

    executor = SweepExecutor(workers=sweep_workers())

    def study():
        return executor.run(cells)

    results = benchmark.pedantic(study, rounds=1, iterations=1)

    series = {}
    for series_name, n, k, ref_slice, cand_slice in points:
        ref_lat, ref_kb = _means(results[ref_slice])
        cand_lat, cand_kb = _means(results[cand_slice])
        series.setdefault(series_name, []).append(
            {
                "k": k,
                "bytes_variation_percent": relative_variation_percent(cand_kb, ref_kb),
                "latency_variation_percent": (
                    relative_variation_percent(cand_lat, ref_lat)
                    if ref_lat and cand_lat
                    else None
                ),
            }
        )

    emit_header(f"Fig. 6a — network consumption variation (%) vs k (scale={SCALE.name})")
    for name, rows in series.items():
        emit(
            f"{name:>14} | "
            + " | ".join(
                f"k={p['k']}: {p['bytes_variation_percent']:+6.1f}%"
                if p["bytes_variation_percent"] is not None
                else f"k={p['k']}: n/a"
                for p in rows
            )
        )
    emit_header("Fig. 6b — latency variation (%) vs k")
    for name, rows in series.items():
        emit(
            f"{name:>14} | "
            + " | ".join(
                f"k={p['k']}: {p['latency_variation_percent']:+6.1f}%"
                if p["latency_variation_percent"] is not None
                else f"k={p['k']}: n/a"
                for p in rows
            )
        )
    save_record("fig6_scaling", {"scale": SCALE.name, "series": series})

    # Shape check: the bdw. configuration reduces network consumption at the
    # largest N (the paper reports around -40% to -55%).
    largest_n = max(SCALE.fig6_ns)
    bdw_points = series[f"Bdw., N={largest_n}"]
    assert all(
        p["bytes_variation_percent"] is not None and p["bytes_variation_percent"] < 0
        for p in bdw_points
    )
