"""Fig. 6a / 6b — improvement of the lat. and bdw. configurations vs BDopt+MBD.1.

The paper plots, for N = 30 and N = 50 with a 1024 B payload, the relative
variation (in %) of network consumption and latency of the *lat.* and
*bdw.* configurations over BDopt + MBD.1, as a function of connectivity.
"""

import pytest

from repro.core.modifications import ModificationSet
from repro.metrics.report import relative_variation_percent
from repro.runner.experiment import ExperimentConfig, run_repeated

from benchmarks.common import current_scale, emit, emit_header, k_grid_for, save_record

SCALE = current_scale()

CONFIGURATIONS = {
    "Lat.": ModificationSet.latency_optimized(),
    "Bdw.": ModificationSet.bandwidth_optimized(),
}


def _mean(values):
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else None


def _point(n, k, f, mods, seed=31):
    config = ExperimentConfig(n=n, k=k, f=f, payload_size=1024, modifications=mods, seed=seed)
    results = run_repeated(config, runs=SCALE.runs)
    return (
        _mean([r.latency_ms for r in results]),
        _mean([r.total_kilobytes for r in results]),
    )


def test_fig6_scaling_with_number_of_processes(benchmark):
    def study():
        series = {}
        for n in SCALE.fig6_ns:
            f = max(1, n // 7)  # mid-range f, as in the paper's choice
            ks = k_grid_for(n, f, tuple(sorted({max(2 * f + 1, n // 3), n // 2, n - n // 4})))
            for name, mods in CONFIGURATIONS.items():
                points = []
                for k in ks:
                    ref_lat, ref_kb = _point(n, k, f, ModificationSet.bdopt_with_mbd1())
                    cand_lat, cand_kb = _point(n, k, f, mods)
                    points.append(
                        {
                            "k": k,
                            "bytes_variation_percent": relative_variation_percent(cand_kb, ref_kb),
                            "latency_variation_percent": (
                                relative_variation_percent(cand_lat, ref_lat)
                                if ref_lat and cand_lat
                                else None
                            ),
                        }
                    )
                series[f"{name}, N={n}"] = points
        return series

    series = benchmark.pedantic(study, rounds=1, iterations=1)

    emit_header(f"Fig. 6a — network consumption variation (%) vs k (scale={SCALE.name})")
    for name, points in series.items():
        emit(
            f"{name:>14} | "
            + " | ".join(f"k={p['k']}: {p['bytes_variation_percent']:+6.1f}%" for p in points)
        )
    emit_header("Fig. 6b — latency variation (%) vs k")
    for name, points in series.items():
        emit(
            f"{name:>14} | "
            + " | ".join(
                f"k={p['k']}: {p['latency_variation_percent']:+6.1f}%"
                if p["latency_variation_percent"] is not None
                else f"k={p['k']}: n/a"
                for p in points
            )
        )
    save_record("fig6_scaling", {"scale": SCALE.name, "series": series})

    # Shape check: the bdw. configuration reduces network consumption at the
    # largest N (the paper reports around -40% to -55%).
    largest_n = max(SCALE.fig6_ns)
    bdw_points = series[f"Bdw., N={largest_n}"]
    assert all(p["bytes_variation_percent"] < 0 for p in bdw_points)
