"""Fig. 4a / 4b — latency and network consumption of MBD.1/7/8/9/11 vs k.

The paper plots, for N=50, f=9 and a 1024 B payload, the latency and the
bandwidth consumption of BDopt+MBD.1 and of BDopt+MBD.1 plus one of
MBD.7, 8, 9, 11, as a function of the network connectivity k.
"""


from repro.core.modifications import ModificationSet
from repro.runner.experiment import ExperimentConfig, run_repeated

from benchmarks.common import current_scale, emit, emit_header, k_grid_for, save_record

SCALE = current_scale()

CONFIGURATIONS = {
    "BDopt + MBD.1": ModificationSet.bdopt_with_mbd1(),
    "BDopt + MBD.1/7": ModificationSet.single_mbd(7),
    "BDopt + MBD.1/8": ModificationSet.single_mbd(8),
    "BDopt + MBD.1/9": ModificationSet.single_mbd(9),
    "BDopt + MBD.1/11": ModificationSet.single_mbd(11),
}


def test_fig4_latency_and_bandwidth_vs_connectivity(benchmark):
    n, f = SCALE.fig4_n, SCALE.fig4_f
    ks = k_grid_for(n, f, SCALE.fig4_ks)

    def study():
        series = {}
        for name, mods in CONFIGURATIONS.items():
            points = []
            for k in ks:
                config = ExperimentConfig(
                    n=n, k=k, f=f, payload_size=1024, modifications=mods, seed=17
                )
                results = run_repeated(config, runs=SCALE.runs)
                latencies = [r.latency_ms for r in results if r.latency_ms is not None]
                points.append(
                    {
                        "k": k,
                        "latency_ms": sum(latencies) / len(latencies) if latencies else None,
                        "kilobytes": sum(r.total_kilobytes for r in results) / len(results),
                    }
                )
            series[name] = points
        return series

    series = benchmark.pedantic(study, rounds=1, iterations=1)

    emit_header(
        f"Fig. 4a — latency (ms) vs connectivity, N={n}, f={f}, 1024 B (scale={SCALE.name})"
    )
    emit(f"{'configuration':>20} | " + " | ".join(f"k={k:>3}" for k in ks))
    for name, points in series.items():
        emit(
            f"{name:>20} | "
            + " | ".join(f"{p['latency_ms']:>5.0f}" for p in points)
        )
    emit_header(f"Fig. 4b — network consumption (kB) vs connectivity, N={n}, f={f}")
    for name, points in series.items():
        emit(
            f"{name:>20} | "
            + " | ".join(f"{p['kilobytes']:>5.1f}" for p in points)
        )
    save_record("fig4_selected_modifications", {"scale": SCALE.name, "n": n, "f": f, "series": series})

    # Shape checks: MBD.7 and MBD.11 decrease network consumption vs MBD.1
    # alone, and every configuration delivers (latency measured) everywhere.
    for name, points in series.items():
        assert all(p["latency_ms"] is not None for p in points), name
    for k_index in range(len(ks)):
        base = series["BDopt + MBD.1"][k_index]["kilobytes"]
        assert series["BDopt + MBD.1/7"][k_index]["kilobytes"] <= base * 1.05
        assert series["BDopt + MBD.1/11"][k_index]["kilobytes"] <= base * 1.05
