"""Shared infrastructure of the benchmark harness.

Every benchmark module reproduces one table or figure of the paper's
evaluation: it runs the relevant parameter sweep, prints the same rows or
series the paper reports, and appends a JSON record to
``benchmarks/results/`` that EXPERIMENTS.md summarizes.

Two scales are supported, selected with the ``REPRO_SCALE`` environment
variable:

* ``default`` — a scaled-down grid (N ≤ 20) that runs the full benchmark
  suite in a few minutes on a laptop;
* ``paper`` — the paper's parameters (N up to 50, f up to 10), which takes
  much longer because the unoptimized baseline exchanges tens of
  thousands of messages per broadcast.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

RESULTS_DIR = Path(__file__).parent / "results"

#: Marker used by every benchmark when printing reproduced rows.
ROW_PREFIX = "[repro]"


@dataclass(frozen=True)
class Scale:
    """Benchmark scale parameters."""

    name: str
    #: (n, k, f) grid for the per-modification studies (Table 1, Figs 7-10).
    modification_grid: Tuple[Tuple[int, int, int], ...]
    #: Parameters of the Fig. 4 study (selected modifications vs k).
    fig4_n: int
    fig4_f: int
    fig4_ks: Tuple[int, ...]
    #: Parameters of the Fig. 5 study (composite configurations vs k).
    fig5_n: int
    fig5_f: int
    fig5_ks: Tuple[int, ...]
    #: N values of the Fig. 6 scaling study.
    fig6_ns: Tuple[int, ...]
    #: N values of the Sec. 7.3 CPU/memory study.
    sec73_ns: Tuple[int, ...]
    #: Number of seeds per experiment point.
    runs: int


DEFAULT_SCALE = Scale(
    name="default",
    modification_grid=((16, 7, 2), (16, 11, 2)),
    fig4_n=20,
    fig4_f=3,
    fig4_ks=(8, 12, 16, 19),
    fig5_n=20,
    fig5_f=3,
    fig5_ks=(8, 12, 16, 19),
    fig6_ns=(15, 20),
    sec73_ns=(10, 15, 20),
    runs=2,
)

PAPER_SCALE = Scale(
    name="paper",
    modification_grid=((30, 11, 4), (30, 20, 4), (50, 21, 9)),
    fig4_n=50,
    fig4_f=9,
    fig4_ks=(20, 25, 30, 35, 40, 45, 49),
    fig5_n=50,
    fig5_f=10,
    fig5_ks=(21, 25, 30, 35, 40, 45, 49),
    fig6_ns=(30, 50),
    sec73_ns=(10, 30, 50),
    runs=5,
)


def current_scale() -> Scale:
    """The scale selected by the ``REPRO_SCALE`` environment variable."""
    if os.environ.get("REPRO_SCALE", "default").lower() == "paper":
        return PAPER_SCALE
    return DEFAULT_SCALE


def sweep_workers(default: int = 2) -> int:
    """Worker count for the parallel sweep executor.

    Controlled by the ``REPRO_WORKERS`` environment variable; the default
    keeps the benchmarks exercising the multiprocessing path (``workers >
    1``) even on small machines.
    """
    try:
        return max(1, int(os.environ.get("REPRO_WORKERS", default)))
    except ValueError:
        return default


def mean_or_none(values) -> float:
    """Mean of the non-``None`` values, or ``None`` when there are none."""
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else None


def emit(line: str) -> None:
    """Print a reproduced table/figure row (always visible under pytest -s)."""
    print(f"{ROW_PREFIX} {line}", file=sys.stderr)


def emit_header(title: str) -> None:
    """Print a section header for one table or figure."""
    emit("")
    emit("=" * 72)
    emit(title)
    emit("=" * 72)


def save_record(name: str, record: Dict) -> Path:
    """Persist a benchmark record under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True, default=str)
    return path


def format_range(values: Sequence[float]) -> str:
    """Render a ``[min, max]`` interval like Table 1."""
    if not values:
        return "[n/a]"
    return f"[{min(values):+.1f}, {max(values):+.1f}]"


def k_grid_for(n: int, f: int, ks: Sequence[int]) -> List[int]:
    """Filter a connectivity grid to feasible values (2f+1 ≤ k < n, n*k even)."""
    feasible = []
    for k in ks:
        if k >= n or k < 2 * f + 1:
            continue
        if (n * k) % 2 != 0:
            k = k - 1 if k - 1 >= 2 * f + 1 else k + 1
            if k >= n or (n * k) % 2 != 0:
                continue
        if k not in feasible:
            feasible.append(k)
    return feasible
