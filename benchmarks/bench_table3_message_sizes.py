"""Table 3 — message field sizes and concrete message wire costs.

Reproduces the field-size table of the appendix and, using it, the wire
size of every message type the protocol puts on a link, for a 16 B and a
1024 B payload.  This validates the byte accounting all other benchmarks
rely on.
"""


from repro.core.messages import CrossLayerMessage, MessageType
from repro.core.sizes import PAPER_FIELD_SIZES

from benchmarks.common import emit, emit_header, save_record

EXPECTED_FIELD_SIZES = {
    "mtype": 1,
    "source": 4,
    "bid": 4,
    "local_payload_id": 4,
    "payload_size": 4,
    "creator_id": 4,
    "embedded_creator_id": 4,
    "path_length": 2,
    "path_entry": 4,
}


def _sample_messages(payload_size: int):
    payload = bytes(payload_size)
    return {
        "SEND (full)": CrossLayerMessage(
            mtype=MessageType.SEND, source=0, bid=1, payload=payload, path=()
        ),
        "SEND (MBD.1/2/5)": CrossLayerMessage(
            mtype=MessageType.SEND, bid=1, payload=payload, local_payload_id=7
        ),
        "ECHO (full)": CrossLayerMessage(
            mtype=MessageType.ECHO, source=0, bid=1, creator=3, payload=payload, path=(4, 5)
        ),
        "ECHO (local id)": CrossLayerMessage(
            mtype=MessageType.ECHO, creator=3, local_payload_id=7, path=(4, 5)
        ),
        "READY (local id)": CrossLayerMessage(
            mtype=MessageType.READY, creator=3, local_payload_id=7, path=()
        ),
        "ECHO_ECHO (local id)": CrossLayerMessage(
            mtype=MessageType.ECHO_ECHO, creator=3, embedded_creator=6, local_payload_id=7, path=()
        ),
        "READY_ECHO (local id)": CrossLayerMessage(
            mtype=MessageType.READY_ECHO, creator=3, embedded_creator=6, local_payload_id=7, path=()
        ),
    }


def test_table3_field_sizes_and_message_costs(benchmark):
    def study():
        sizes = {name: getattr(PAPER_FIELD_SIZES, name) for name in EXPECTED_FIELD_SIZES}
        costs = {
            payload_size: {
                name: message.wire_size(PAPER_FIELD_SIZES)
                for name, message in _sample_messages(payload_size).items()
            }
            for payload_size in (16, 1024)
        }
        return sizes, costs

    sizes, costs = benchmark.pedantic(study, rounds=1, iterations=1)

    emit_header("Table 3 — message field sizes (bytes)")
    for name, value in sizes.items():
        emit(f"{name:>20}: {value} B")
    for payload_size, table in costs.items():
        emit_header(f"Wire size of each message type, payload {payload_size} B")
        for name, value in table.items():
            emit(f"{name:>22}: {value} B")
    save_record("table3_message_sizes", {"field_sizes": sizes, "message_costs": costs})

    assert sizes == EXPECTED_FIELD_SIZES
    # A full ECHO carrying a 1024 B payload dwarfs its local-id counterpart.
    assert costs[1024]["ECHO (full)"] > 1024
    assert costs[1024]["ECHO (local id)"] < 32
