"""Pytest configuration for the benchmark harness."""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_ROOT = os.path.dirname(os.path.dirname(__file__))
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)
