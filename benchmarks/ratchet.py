"""Committed bench ratchet for the simulator hot path.

Runs the fixed-seed scenario grids of ``bench_fig6_scaling`` and
``bench_scenario_sweep`` serially in-process, measures cell and
scheduler-event throughput, and tracks the trajectory in
``BENCH_simulator.json`` at the repository root:

* ``--record --label "..."`` appends a new entry to the committed file
  (run it after a deliberate perf change, commit the result);
* ``--check`` re-measures and compares against the last committed entry,
  failing (exit 1) when throughput regressed by more than ``--margin``
  (default 15%); the full comparison is written to
  ``benchmarks/results/ratchet_comparison.json`` for CI artifacts.

Raw cells/sec are not comparable across machines, so every entry stores
a calibration score — a fixed pure-Python micro-benchmark shaped like
the simulator hot path (heap churn, dict updates, tuple allocation) —
and ``--check`` compares calibration-normalized throughput.  The cells
are run through the same expansion path as ``simulate_scenario``
(:func:`build_network` / :func:`arm_adaptive` / ``broadcast_at`` /
``run`` / :func:`freeze_result`), unrolled here only so the scheduler's
``executed_events`` counter can be read before the network is discarded.
"""

from __future__ import annotations

import argparse
import heapq
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

# Runnable as a plain script from anywhere: the repo root (for the
# ``benchmarks`` grid modules) and ``src`` (for ``repro``) must both be
# importable.
for _path in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

BENCH_FILE = REPO_ROOT / "BENCH_simulator.json"
COMPARISON_FILE = REPO_ROOT / "benchmarks" / "results" / "ratchet_comparison.json"

#: Iterations of the calibration micro-benchmark (fixed: scores must be
#: comparable across entries).
_CALIBRATION_ITERATIONS = 200_000


def _fig6_cells():
    from benchmarks.bench_fig6_scaling import fig6_layout

    return fig6_layout()[1]


def _sweep_cells():
    from benchmarks.bench_scenario_sweep import build_cells

    return [cell for _, cell in build_cells()]


#: name -> zero-argument builder of the benchmark's scenario cells.
BENCHMARKS: Dict[str, Callable[[], list]] = {
    "fig6_scaling": _fig6_cells,
    "scenario_sweep": _sweep_cells,
}


def calibration_kops(repeats: int = 3) -> float:
    """Machine-speed score in kilo-operations/sec (best of ``repeats``).

    A fixed workload over the primitives the simulator hot path leans
    on — heap push/pop, dict writes, small-tuple allocation — so the
    score moves with the interpreter and hardware the way the simulator
    does, and normalizing by it makes entries from different machines
    roughly comparable.
    """
    best = float("inf")
    for _ in range(repeats):
        heap: List[Tuple[int, int]] = []
        table: Dict[int, Tuple[int, int]] = {}
        started = time.perf_counter()
        for i in range(_CALIBRATION_ITERATIONS):
            heapq.heappush(heap, (i % 997, i))
            if i & 1:
                heapq.heappop(heap)
            table[i & 4095] = (i, i + 1)
        best = min(best, time.perf_counter() - started)
    return _CALIBRATION_ITERATIONS / best / 1000.0


def _run_cell(spec):
    """One scenario cell, returning ``(result, executed scheduler events)``.

    Mirrors :func:`repro.scenarios.engine.simulate_scenario` exactly;
    unrolled so the event counter survives the run.
    """
    from repro.scenarios.engine import arm_adaptive, build_network, freeze_result

    network, byzantine = build_network(spec)
    adaptive = arm_adaptive(network, spec, byzantine)
    for broadcast in spec.broadcasts():
        network.broadcast_at(
            broadcast.source,
            spec.payload_for(broadcast),
            broadcast.bid,
            broadcast.start_time_ms,
        )
    metrics = network.run(max_events=spec.max_events)
    result = freeze_result(
        spec,
        topology=network.topology,
        byzantine={**byzantine, **adaptive.converted},
        metrics=metrics,
        dropped_messages=network.dropped_messages,
        extra_crashed=tuple(sorted(adaptive.crashed)),
    )
    return result, network.scheduler.executed_events


def measure_benchmark(cells, passes: int = 2) -> Dict[str, float]:
    """Serial throughput over ``cells``: best wall-clock of ``passes`` runs."""
    best_seconds = float("inf")
    events = 0
    messages = 0
    for _ in range(passes):
        pass_events = 0
        pass_messages = 0
        started = time.perf_counter()
        for spec in cells:
            result, cell_events = _run_cell(spec)
            pass_events += cell_events
            pass_messages += result.message_count
        seconds = time.perf_counter() - started
        if seconds < best_seconds:
            best_seconds = seconds
        # The grids are fixed-seed and deterministic: every pass executes
        # the same events, so keeping the last pass's counts is exact.
        events = pass_events
        messages = pass_messages
    return {
        "cells": len(cells),
        "events": events,
        "messages": messages,
        "seconds": round(best_seconds, 4),
        "cells_per_sec": round(len(cells) / best_seconds, 3),
        "events_per_sec": round(events / best_seconds, 1),
    }


def measure_all(passes: int = 2, echo=print) -> Dict[str, object]:
    """Measure every registered benchmark plus the calibration score."""
    entry: Dict[str, object] = {
        "python": platform.python_version(),
        "calibration_kops": round(calibration_kops(), 1),
        "benchmarks": {},
    }
    for name, builder in BENCHMARKS.items():
        cells = builder()
        echo(f"[ratchet] {name}: {len(cells)} cells, {passes} pass(es)...")
        stats = measure_benchmark(cells, passes=passes)
        entry["benchmarks"][name] = stats
        echo(
            f"[ratchet] {name}: {stats['cells_per_sec']:.2f} cells/s, "
            f"{stats['events_per_sec']:.0f} events/s "
            f"({stats['events']} events in {stats['seconds']:.2f}s)"
        )
    return entry


def load_trajectory(path: Path) -> Dict[str, object]:
    if path.exists():
        with open(path) as handle:
            return json.load(handle)
    return {"schema": 1, "entries": []}


def record(path: Path, label: str, passes: int, echo=print) -> None:
    trajectory = load_trajectory(path)
    entry = measure_all(passes=passes, echo=echo)
    entry = {"label": label, **entry}
    trajectory["entries"].append(entry)
    with open(path, "w") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    echo(f"[ratchet] recorded entry '{label}' -> {path}")


def check(path: Path, margin: float, passes: int, echo=print) -> int:
    trajectory = load_trajectory(path)
    if not trajectory["entries"]:
        echo(f"[ratchet] no committed entries in {path}; nothing to check against")
        return 1
    reference = trajectory["entries"][-1]
    current = measure_all(passes=passes, echo=echo)
    ref_cal = reference["calibration_kops"]
    cur_cal = current["calibration_kops"]
    echo(
        f"[ratchet] calibration: committed {ref_cal:.0f} kops/s "
        f"vs current {cur_cal:.0f} kops/s"
    )
    comparison = {
        "reference_label": reference.get("label"),
        "margin": margin,
        "calibration": {"reference_kops": ref_cal, "current_kops": cur_cal},
        "benchmarks": {},
        "ok": True,
    }
    failed = []
    for name, ref_stats in reference["benchmarks"].items():
        cur_stats = current["benchmarks"].get(name)
        if cur_stats is None:
            continue
        # Normalize both sides by their machine's calibration score so a
        # slower CI runner is not mistaken for a code regression.
        ratio = (cur_stats["cells_per_sec"] / ref_stats["cells_per_sec"]) * (
            ref_cal / cur_cal
        )
        ok = ratio >= 1.0 - margin
        comparison["benchmarks"][name] = {
            "reference": ref_stats,
            "current": cur_stats,
            "normalized_throughput_ratio": round(ratio, 3),
            "ok": ok,
        }
        verdict = "ok" if ok else f"REGRESSION (> {margin:.0%} below committed)"
        echo(
            f"[ratchet] {name}: normalized throughput x{ratio:.2f} "
            f"vs '{reference.get('label')}' -> {verdict}"
        )
        if not ok:
            failed.append(name)
    comparison["ok"] = not failed
    COMPARISON_FILE.parent.mkdir(parents=True, exist_ok=True)
    with open(COMPARISON_FILE, "w") as handle:
        json.dump(comparison, handle, indent=2)
        handle.write("\n")
    echo(f"[ratchet] comparison written to {COMPARISON_FILE}")
    if failed:
        echo(f"[ratchet] FAILED: throughput regressed on {', '.join(failed)}")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--record", action="store_true", help="append a new entry to the trajectory"
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="compare against the last committed entry; exit 1 on regression",
    )
    parser.add_argument("--label", default=None, help="label of the recorded entry")
    parser.add_argument(
        "--margin",
        type=float,
        default=0.15,
        help="tolerated fractional throughput drop before --check fails",
    )
    parser.add_argument(
        "--passes", type=int, default=2, help="measurement passes (best one counts)"
    )
    parser.add_argument(
        "--file", type=Path, default=BENCH_FILE, help="trajectory file location"
    )
    args = parser.parse_args(argv)
    if args.record:
        if not args.label:
            parser.error("--record requires --label")
        record(args.file, args.label, args.passes)
        return 0
    return check(args.file, args.margin, args.passes)


if __name__ == "__main__":
    sys.exit(main())
