"""Sec. 7.6 — impact of the modifications on asynchronous networks.

The paper re-runs the per-modification study with 50 ± 50 ms normally
distributed delays and observes that the modifications keep working but
with a slightly smaller impact and a larger spread than in the
synchronous setting (e.g. MBD.11's network-consumption reduction drops
from about -24% to -18%).
"""


from repro.core.modifications import ModificationSet
from repro.metrics.report import median
from repro.runner.experiment import ExperimentConfig
from repro.runner.sweep import paired_variations

from benchmarks.common import current_scale, emit, emit_header, format_range, save_record

SCALE = current_scale()
STUDIED = (7, 8, 9, 11)  # the most impactful modifications for bandwidth


def _variations(index: int, synchronous: bool):
    reference = ExperimentConfig(
        n=SCALE.modification_grid[0][0],
        k=SCALE.modification_grid[0][1],
        f=SCALE.modification_grid[0][2],
        payload_size=1024,
        synchronous=synchronous,
        modifications=ModificationSet.bdopt_with_mbd1(),
        seed=61,
    )
    return paired_variations(
        reference,
        ModificationSet.single_mbd(index),
        grid=SCALE.modification_grid,
        runs=SCALE.runs,
    )


def test_sec76_synchronous_vs_asynchronous_impact(benchmark):
    def study():
        table = {}
        for index in STUDIED:
            table[index] = {
                "sync": [v.bytes_variation_percent for v in _variations(index, True)],
                "async": [v.bytes_variation_percent for v in _variations(index, False)],
            }
        return table

    table = benchmark.pedantic(study, rounds=1, iterations=1)

    emit_header(f"Sec. 7.6 — network-consumption impact, sync vs async (scale={SCALE.name})")
    emit(f"{'MBD':>4} | {'synchronous':>20} | {'asynchronous':>20}")
    for index, data in table.items():
        emit(
            f"{index:>4} | {format_range(data['sync']):>20} | {format_range(data['async']):>20}"
        )
    save_record("sec76_async_impact", {"scale": SCALE.name, "table": table})

    # Shape check: the studied modifications keep reducing network
    # consumption (median ≤ ~0) in the asynchronous setting as well.
    for index in STUDIED:
        assert median(table[index]["async"]) < 5.0
