"""Ablation — the value of MD.1–5 and of the cross-layer combination.

Not a table of the paper, but a sanity study DESIGN.md calls out: it
compares, on a small partially connected network, (i) the unmodified
layered Bracha-Dolev combination (*BD*), (ii) the layered combination
with Bonomi et al.'s optimizations (*BDopt*), (iii) the cross-layer
implementation of BDopt, and (iv) the cross-layer protocol with every
MBD modification.  It regenerates the motivation for the paper's claim
that BD does not scale and BDopt is the right baseline.
"""


from repro.core.modifications import ModificationSet
from repro.runner.experiment import ExperimentConfig, run_experiment

from benchmarks.common import current_scale, emit, emit_header, save_record

SCALE = current_scale()

VARIANTS = {
    "BD (layered, unmodified)": ("bracha_dolev", ModificationSet.none()),
    "BDopt (layered, MD.1-5)": ("bracha_dolev", ModificationSet.dolev_optimized()),
    "BDopt (cross-layer)": ("cross_layer", ModificationSet.dolev_optimized()),
    "Cross-layer, all MBD": ("cross_layer", ModificationSet.all_enabled()),
}


def test_ablation_baseline_comparison(benchmark):
    n, k, f = 10, 5, 2  # kept small: plain BD floods exponentially

    def study():
        rows = {}
        for name, (protocol, mods) in VARIANTS.items():
            config = ExperimentConfig(
                n=n, k=k, f=f, payload_size=1024, protocol=protocol,
                modifications=mods, seed=71,
            )
            result = run_experiment(config)
            rows[name] = {
                "latency_ms": result.latency_ms,
                "messages": result.message_count,
                "kilobytes": result.total_kilobytes,
                "all_delivered": result.all_correct_delivered,
            }
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)

    emit_header(f"Ablation — baselines on N={n}, k={k}, f={f}, 1024 B payload")
    emit(f"{'variant':>26} | {'latency':>8} | {'messages':>9} | {'kB':>10}")
    for name, row in rows.items():
        emit(
            f"{name:>26} | {row['latency_ms']:>7.0f} | {row['messages']:>9} | {row['kilobytes']:>10.1f}"
        )
    save_record("ablation_baselines", {"rows": rows})

    assert all(row["all_delivered"] for row in rows.values())
    # MD.1-5 are what make the combination practical (fewer messages), and
    # the MBD modifications further reduce the bytes on the wire.
    assert rows["BDopt (layered, MD.1-5)"]["messages"] < rows["BD (layered, unmodified)"]["messages"]
    assert rows["Cross-layer, all MBD"]["kilobytes"] < rows["BDopt (cross-layer)"]["kilobytes"]
