"""Scenario-engine sweep through the parallel executor, end to end.

Expands a base scenario into a grid of cells (adversary placement ×
connectivity × seeds), runs it three times — once serially, once over a
process pool with ``workers > 1``, once over TCP-connected worker
processes via :class:`~repro.runner.distributed.DistributedSweepExecutor`
— verifies all paths agree cell by cell, and reports the aggregate
impact of the adversary placements on latency and network consumption.
A second pass times a sensor-style multi-broadcast workload
(:meth:`WorkloadSpec.repeated`) and records the delivered-broadcast
throughput next to the single-shot numbers.

This is the harness every later scaling PR plugs new workloads into; the
serial/parallel/distributed agreement check doubles as a continuous
guard on the scenario engine's determinism contract.
"""

import time
from dataclasses import replace

from repro.core.modifications import ModificationSet
from repro.runner.distributed import DistributedSweepExecutor
from repro.runner.parallel import SweepExecutor
from repro.scenarios import (
    AdversarySpec,
    DelaySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    expand_grid,
)

from benchmarks.common import (
    current_scale,
    emit,
    emit_header,
    mean_or_none,
    save_record,
    sweep_workers,
)

SCALE = current_scale()

ADVERSARIES = {
    "none": (),
    "mute@random": (AdversarySpec(behaviour="mute", count=2, placement="random"),),
    "mute@max_degree": (AdversarySpec(behaviour="mute", count=2, placement="max_degree"),),
    "forge@articulation": (
        AdversarySpec(behaviour="forge", count=2, placement="articulation_adjacent"),
    ),
}


def build_cells():
    """The labeled scenario grid: ≥ 24 cells at every scale."""
    n = 16 if SCALE.name == "default" else 30
    f = 2 if SCALE.name == "default" else 4
    ks = (7, 11) if SCALE.name == "default" else (11, 20)
    runs = max(3, SCALE.runs)
    base = ScenarioSpec(
        name="scenario-sweep",
        topology=TopologySpec(kind="random_regular", n=n, k=ks[0], min_connectivity=2 * f + 1),
        delay=DelaySpec(kind="fixed", mean_ms=50.0),
        modifications=ModificationSet.latency_and_bandwidth_optimized(),
        f=f,
        payload_size=16,
        seed=17,
    )
    labeled = []
    for label, adversaries in ADVERSARIES.items():
        variant = replace(base, adversaries=adversaries)
        for cell in expand_grid(
            variant, {"topology.k": list(ks), "seed": range(17, 17 + runs)}
        ):
            labeled.append((label, cell))
    return labeled


def test_scenario_sweep_parallel_executor(benchmark):
    labeled = build_cells()
    labels = [label for label, _ in labeled]
    cells = [cell for _, cell in labeled]
    assert len(cells) >= 24, "the sweep must cover at least 24 scenario cells"

    workers = max(2, sweep_workers())
    serial = SweepExecutor(workers=1).run(cells)

    def parallel_sweep():
        return SweepExecutor(workers=workers).run(cells)

    parallel = benchmark.pedantic(parallel_sweep, rounds=1, iterations=1)

    # The determinism contract: the pool returns exactly the serial results.
    assert parallel == serial

    # Distributed mode: the same cells over TCP-connected worker
    # processes (the coordinator spawns them locally here; across hosts
    # the timing would add real network latency and a shared cache dir).
    distributed_executor = DistributedSweepExecutor(workers=2)
    started = time.perf_counter()
    distributed = distributed_executor.run(cells)
    distributed_seconds = time.perf_counter() - started
    assert distributed == serial

    emit_header(
        f"Scenario sweep — {len(cells)} cells, {workers} workers (scale={SCALE.name})"
    )
    emit(
        f"distributed mode: {len(cells)} cells over 2 worker processes "
        f"in {distributed_seconds:.2f}s"
    )
    summary = {}
    for label in dict.fromkeys(labels):
        rows = [r for row_label, r in zip(labels, parallel) if row_label == label]
        latency = mean_or_none([r.latency_ms for r in rows])
        kilobytes = mean_or_none([r.total_bytes / 1000.0 for r in rows])
        delivered = sum(r.all_correct_delivered for r in rows)
        summary[label] = {
            "cells": len(rows),
            "mean_latency_ms": latency,
            "mean_kilobytes": kilobytes,
            "all_correct_delivered": delivered,
        }
        latency_text = f"{latency:7.1f} ms" if latency is not None else "    n/a"
        emit(
            f"{label:>20} | cells={len(rows)} | lat={latency_text} | "
            f"kB={kilobytes:8.1f} | totality {delivered}/{len(rows)}"
        )

    # Safety holds in every cell: ≤ f Byzantine on a (2f+1)-connected graph.
    assert all(r.agreement_holds and r.validity_holds for r in parallel)

    # Multi-broadcast throughput: the same base scenario under a
    # sensor-style repeated workload, timed through the parallel
    # executor.  Rides the same CI artifact as the single-shot sweep so
    # the throughput trajectory is tracked per commit.
    base = cells[0]
    broadcasts = 5 if SCALE.name == "default" else 10
    workload_cells = [
        replace(cell, name="scenario-sweep-workload", adversaries=()).with_workload(
            WorkloadSpec.repeated(0, broadcasts, interval_ms=40.0)
        )
        for cell in expand_grid(base, {"seed": range(17, 17 + max(3, SCALE.runs))})
    ]
    started = time.perf_counter()
    workload_results = SweepExecutor(workers=workers).run(workload_cells)
    workload_seconds = time.perf_counter() - started
    assert all(r.broadcast_count == broadcasts for r in workload_results)
    assert all(r.agreement_holds and r.validity_holds for r in workload_results)
    throughput = mean_or_none(
        [r.throughput_dps for r in workload_results if r.throughput_dps is not None]
    )
    workload_latency = mean_or_none(
        [
            latency
            for r in workload_results
            for latency in r.broadcast_latencies
            if latency is not None
        ]
    )
    emit(
        f"workload mode: {len(workload_cells)} cells × {broadcasts} broadcasts "
        f"in {workload_seconds:.2f}s | "
        f"throughput {throughput:.1f} delivered-broadcasts/s (simulated) | "
        f"mean per-broadcast latency {workload_latency:.1f} ms"
    )

    # CI uploads this record as a per-commit artifact; the backend is
    # part of it so sweeps on other execution backends (spec.backend)
    # stay distinguishable in the perf trajectory.
    backends = sorted({cell.backend for cell in cells})
    save_record(
        "scenario_sweep",
        {
            "scale": SCALE.name,
            "workers": workers,
            "cells": len(cells),
            "backends": backends,
            "distributed": {
                "workers": 2,
                "seconds": distributed_seconds,
                "dispatched_cells": distributed_executor.dispatched_cells,
                "requeued_cells": distributed_executor.requeued_cells,
            },
            "workload": {
                "cells": len(workload_cells),
                "broadcasts_per_cell": broadcasts,
                "seconds": workload_seconds,
                "mean_throughput_dps": throughput,
                "mean_broadcast_latency_ms": workload_latency,
                "delivered_broadcasts": sum(
                    r.delivered_broadcast_count for r in workload_results
                ),
            },
            "summary": summary,
        },
    )
