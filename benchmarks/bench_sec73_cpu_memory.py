"""Sec. 7.3 — CPU and memory consumption proxies.

The paper measures, with 16 B payloads, the per-process memory consumption
for N = 10, 30 and 50 and attributes its growth to the storage of received
transmission paths.  This benchmark reports the same quantity directly —
the per-process stored-path / combination count and its byte-accounted
upper bound — plus the Python-level peak allocation measured with
``tracemalloc`` and the number of disjoint-path combination operations
(a CPU proxy).
"""

import tracemalloc


from repro.core.modifications import ModificationSet
from repro.runner.experiment import ExperimentConfig, run_experiment

from benchmarks.common import current_scale, emit, emit_header, save_record

SCALE = current_scale()


def test_sec73_state_and_memory_growth(benchmark):
    def study():
        rows = []
        for n in SCALE.sec73_ns:
            f = max(1, (n - 1) // 6)
            k = max(2 * f + 1, n // 3)
            if (n * k) % 2:
                k += 1
            config = ExperimentConfig(
                n=n, k=k, f=f, payload_size=16,
                modifications=ModificationSet.dolev_optimized(), seed=51,
            )
            tracemalloc.start()
            result = run_experiment(config)
            _, python_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "f": f,
                    "peak_state_entries": result.peak_state_size,
                    "total_state_entries": result.metrics.total_state_size,
                    "python_peak_bytes": python_peak,
                    "messages": result.message_count,
                }
            )
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)

    emit_header(f"Sec. 7.3 — memory/CPU proxies, 16 B payload (scale={SCALE.name})")
    emit(f"{'N':>4} {'k':>4} {'f':>3} | {'peak state':>12} {'total state':>12} | {'py peak MB':>10} | {'messages':>9}")
    for row in rows:
        emit(
            f"{row['n']:>4} {row['k']:>4} {row['f']:>3} | "
            f"{row['peak_state_entries']:>12} {row['total_state_entries']:>12} | "
            f"{row['python_peak_bytes'] / 1e6:>10.1f} | {row['messages']:>9}"
        )
    save_record("sec73_cpu_memory", {"scale": SCALE.name, "rows": rows})

    # Shape check: memory (stored paths) grows with the system size, as the
    # paper observes (47 MB -> 618 MB from N=10 to N=50 in their C++ runs).
    peaks = [row["peak_state_entries"] for row in rows]
    assert peaks == sorted(peaks)
    assert peaks[-1] > peaks[0]
