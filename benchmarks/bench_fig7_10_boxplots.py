"""Figs. 7–10 — per-modification box plots of network-consumption and latency impact.

The appendix figures summarize, over all experiment settings, the relative
impact (in %) of each single modification on network consumption (Figs. 7
and 8) and latency (Figs. 9 and 10), for synchronous and asynchronous
networks, with 1 KiB payloads.  Each row prints the five statistics the
paper annotates: [2.5%, Q1, median, Q3, 97.5%].
"""

import pytest

from repro.core.modifications import ModificationSet
from repro.metrics.report import boxplot_stats
from repro.runner.experiment import ExperimentConfig
from repro.runner.sweep import paired_variations

from benchmarks.common import current_scale, emit, emit_header, save_record

SCALE = current_scale()


def _collect(synchronous: bool):
    impacts = {}
    for index in range(1, 13):
        reference_mods = (
            ModificationSet.dolev_optimized()
            if index == 1
            else ModificationSet.bdopt_with_mbd1()
        )
        reference = ExperimentConfig(
            n=SCALE.modification_grid[0][0],
            k=SCALE.modification_grid[0][1],
            f=SCALE.modification_grid[0][2],
            payload_size=1024,
            synchronous=synchronous,
            modifications=reference_mods,
            seed=41,
        )
        variations = paired_variations(
            reference,
            ModificationSet.single_mbd(index),
            grid=SCALE.modification_grid,
            runs=SCALE.runs,
        )
        impacts[index] = {
            "bytes": [v.bytes_variation_percent for v in variations],
            "latency": [
                v.latency_variation_percent
                for v in variations
                if v.latency_variation_percent is not None
            ],
        }
    return impacts


def _report(impacts, *, figure_bytes: str, figure_latency: str, suffix: str):
    emit_header(f"{figure_bytes} — network consumption impact (%) per modification ({suffix})")
    for index, data in impacts.items():
        stats = boxplot_stats(data["bytes"]) if data["bytes"] else None
        emit(f"MBD.{index:<2} {stats.format() if stats else '[n/a]'}")
    emit_header(f"{figure_latency} — latency impact (%) per modification ({suffix})")
    for index, data in impacts.items():
        stats = boxplot_stats(data["latency"]) if data["latency"] else None
        emit(f"MBD.{index:<2} {stats.format() if stats else '[n/a]'}")


@pytest.mark.parametrize("synchronous", [True, False], ids=["sync", "async"])
def test_fig7_to_10_per_modification_boxplots(benchmark, synchronous):
    impacts = benchmark.pedantic(_collect, args=(synchronous,), rounds=1, iterations=1)
    if synchronous:
        _report(impacts, figure_bytes="Fig. 7", figure_latency="Fig. 9", suffix="synchronous")
        name = "fig7_fig9_sync_boxplots"
    else:
        _report(impacts, figure_bytes="Fig. 8", figure_latency="Fig. 10", suffix="asynchronous")
        name = "fig8_fig10_async_boxplots"
    save_record(name, {"scale": SCALE.name, "impacts": impacts})

    # Shape check: the most important modification for network consumption is
    # MBD.1, with a median impact below -90% (the paper reports ~ -98%).
    from statistics import median

    assert median(impacts[1]["bytes"]) < -90.0
