"""Fig. 5a / 5b — composite configurations (lat., bdw., lat.&bdw.) vs k.

The paper compares, for (N, f) = (50, 10) and a 1024 B payload, the
latency and network consumption of BDopt+MBD.1 with the three composite
configurations of Sec. 7.4 as the connectivity k grows.
"""


from repro.core.modifications import ModificationSet
from repro.runner.experiment import ExperimentConfig, run_repeated

from benchmarks.common import current_scale, emit, emit_header, k_grid_for, save_record

SCALE = current_scale()

CONFIGURATIONS = {
    "BDopt + MBD.1": ModificationSet.bdopt_with_mbd1(),
    "Lat.": ModificationSet.latency_optimized(),
    "Bdw.": ModificationSet.bandwidth_optimized(),
    "Lat. & Bdw.": ModificationSet.latency_and_bandwidth_optimized(),
}


def test_fig5_composite_configurations_vs_connectivity(benchmark):
    n, f = SCALE.fig5_n, SCALE.fig5_f
    ks = k_grid_for(n, f, SCALE.fig5_ks)

    def study():
        series = {}
        for name, mods in CONFIGURATIONS.items():
            points = []
            for k in ks:
                config = ExperimentConfig(
                    n=n, k=k, f=f, payload_size=1024, modifications=mods, seed=23
                )
                results = run_repeated(config, runs=SCALE.runs)
                latencies = [r.latency_ms for r in results if r.latency_ms is not None]
                points.append(
                    {
                        "k": k,
                        "latency_ms": sum(latencies) / len(latencies) if latencies else None,
                        "kilobytes": sum(r.total_kilobytes for r in results) / len(results),
                    }
                )
            series[name] = points
        return series

    series = benchmark.pedantic(study, rounds=1, iterations=1)

    emit_header(f"Fig. 5a — latency (ms) vs connectivity, (N,f)=({n},{f}), 1024 B")
    emit(f"{'configuration':>16} | " + " | ".join(f"k={k:>3}" for k in ks))
    for name, points in series.items():
        emit(f"{name:>16} | " + " | ".join(f"{p['latency_ms']:>5.0f}" for p in points))
    emit_header(f"Fig. 5b — network consumption (kB) vs connectivity, (N,f)=({n},{f})")
    for name, points in series.items():
        emit(f"{name:>16} | " + " | ".join(f"{p['kilobytes']:>5.1f}" for p in points))
    save_record("fig5_composite_configurations", {"scale": SCALE.name, "n": n, "f": f, "series": series})

    # Shape check: the composite configurations reduce network consumption
    # compared to BDopt + MBD.1 (Fig. 5b shows ~190 kB -> ~90 kB at k=30).
    # At very high connectivity (k close to N-1) the suppression rules have
    # little traffic left to remove, so only require strict improvement at
    # the lowest connectivity and no regression elsewhere.
    for index in range(len(ks)):
        base = series["BDopt + MBD.1"][index]["kilobytes"]
        assert series["Bdw."][index]["kilobytes"] <= base * 1.01
        assert series["Lat. & Bdw."][index]["kilobytes"] <= base * 1.01
    lowest_k_base = series["BDopt + MBD.1"][0]["kilobytes"]
    assert series["Bdw."][0]["kilobytes"] < lowest_k_base
    assert series["Lat. & Bdw."][0]["kilobytes"] < lowest_k_base
