"""Byzantine process behaviours used by tests and failure-injection benches.

The global fault model of the paper lets up to ``f`` processes behave
arbitrarily: drop, modify or inject messages (Sec. 3).  This module
provides concrete behaviours implementing the same sans-io interface as
the correct protocols so they can be plugged into either runtime:

* :class:`MuteProcess` — never sends anything (fail-silent).
* :class:`CrashingProcess` — behaves correctly, then stops for good after
  a configurable number of handled messages.
* :class:`MessageDroppingRelay` — relays like a correct process but drops
  each outgoing message with some probability.
* :class:`PathForgingRelay` — relays but rewrites the path field of the
  messages it forwards with fabricated process identifiers.
* :class:`EquivocatingSource` — broadcasts conflicting payloads to
  different neighbors (the attack BRB-Agreement defends against).
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.events import Command, SendTo
from repro.core.messages import (
    BrachaMessage,
    CrossLayerMessage,
    DolevMessage,
    MessageType,
)


class ByzantineBehavior:
    """Base class of Byzantine behaviours (duck-typed protocol interface)."""

    def __init__(self, process_id: int, neighbors: Sequence[int]) -> None:
        self.process_id = process_id
        self.neighbors: Tuple[int, ...] = tuple(sorted(set(neighbors)))
        self.delivered: dict = {}

    def on_start(self) -> List[Command]:
        return []

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        return []

    def on_message(self, sender: int, message: Any) -> List[Command]:
        return []

    def state_size_estimate(self) -> int:
        return 0


class MuteProcess(ByzantineBehavior):
    """A fail-silent Byzantine process: it never sends any message."""


class CrashingProcess(ByzantineBehavior):
    """Wraps a correct protocol and crashes it after ``crash_after`` messages.

    Until the crash point the process is indistinguishable from a correct
    one, which exercises the protocols' tolerance to processes that fail
    mid-broadcast.
    """

    def __init__(self, inner, crash_after: int) -> None:
        super().__init__(inner.process_id, inner.neighbors)
        if crash_after < 0:
            raise ValueError("crash_after must be non-negative")
        self.inner = inner
        self.crash_after = crash_after
        self._handled = 0

    @property
    def crashed(self) -> bool:
        """Whether the crash point has been reached."""
        return self._handled >= self.crash_after

    def on_start(self) -> List[Command]:
        return [] if self.crashed else self.inner.on_start()

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        if self.crashed:
            return []
        return self.inner.broadcast(payload, bid)

    def on_message(self, sender: int, message: Any) -> List[Command]:
        if self.crashed:
            return []
        self._handled += 1
        commands = self.inner.on_message(sender, message)
        if self.crashed:
            # The process crashes *while* handling this message: it may have
            # sent a prefix of its outgoing messages.
            keep = max(0, len(commands) // 2)
            return commands[:keep]
        return commands


class MessageDroppingRelay(ByzantineBehavior):
    """Runs a correct protocol but drops outgoing messages probabilistically."""

    def __init__(self, inner, drop_probability: float, seed: int = 0) -> None:
        super().__init__(inner.process_id, inner.neighbors)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be within [0, 1]")
        self.inner = inner
        self.drop_probability = drop_probability
        self._rng = random.Random(seed)
        self.dropped = 0

    def _filter(self, commands: List[Command]) -> List[Command]:
        kept: List[Command] = []
        for command in commands:
            if isinstance(command, SendTo) and self._rng.random() < self.drop_probability:
                self.dropped += 1
                continue
            kept.append(command)
        return kept

    def on_start(self) -> List[Command]:
        return self._filter(self.inner.on_start())

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        return self._filter(self.inner.broadcast(payload, bid))

    def on_message(self, sender: int, message: Any) -> List[Command]:
        return self._filter(self.inner.on_message(sender, message))


class PathForgingRelay(ByzantineBehavior):
    """Relays messages but rewrites their path field with forged identifiers.

    The forged paths try to make the receiving processes believe the
    content travelled through many disjoint routes, which a correct
    disjoint-path verifier must not be fooled by (only ``f`` processes can
    lie, so at least ``f + 1`` genuine disjoint paths are still required).
    """

    def __init__(self, inner, config: SystemConfig, seed: int = 0) -> None:
        super().__init__(inner.process_id, inner.neighbors)
        self.inner = inner
        self.config = config
        self._rng = random.Random(seed)
        self.forged = 0

    def _forge_path(self, path: Tuple[int, ...]) -> Tuple[int, ...]:
        candidates = [p for p in self.config.processes if p != self.process_id]
        length = self._rng.randint(0, min(3, len(candidates)))
        self.forged += 1
        return tuple(self._rng.sample(candidates, length))

    def _mutate(self, commands: List[Command]) -> List[Command]:
        mutated: List[Command] = []
        for command in commands:
            if isinstance(command, SendTo):
                message = command.message
                if isinstance(message, DolevMessage):
                    message = DolevMessage(
                        content=message.content, path=self._forge_path(message.path)
                    )
                elif isinstance(message, CrossLayerMessage) and message.path is not None:
                    message = message.with_fields(path=self._forge_path(message.path))
                mutated.append(SendTo(dest=command.dest, message=message))
            else:
                mutated.append(command)
        return mutated

    def on_start(self) -> List[Command]:
        return self._mutate(self.inner.on_start())

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        return self._mutate(self.inner.broadcast(payload, bid))

    def on_message(self, sender: int, message: Any) -> List[Command]:
        return self._mutate(self.inner.on_message(sender, message))


class EquivocatingSource(ByzantineBehavior):
    """A Byzantine source that sends conflicting payloads to its neighbors.

    Half of the neighbors receive ``payload`` and the other half receive
    ``conflicting_payload`` for the same ``(source, bid)``.  BRB-Agreement
    requires that correct processes either all deliver the same payload or
    none delivers; the reliable-communication layer alone does not prevent
    a split, which is what the integration tests check.

    Parameters
    ----------
    family:
        Which message format to craft: ``"bracha"`` (plain Bracha on a
        fully connected network), ``"bracha_dolev"`` (layered combination)
        or ``"cross_layer"`` (the optimized protocol).
    """

    def __init__(
        self,
        process_id: int,
        neighbors: Sequence[int],
        *,
        family: str = "cross_layer",
        conflicting_payload: Optional[bytes] = None,
    ) -> None:
        super().__init__(process_id, neighbors)
        if family not in ("bracha", "bracha_dolev", "cross_layer"):
            raise ValueError(f"unknown protocol family: {family}")
        self.family = family
        self.conflicting_payload = conflicting_payload

    def _craft_send(self, payload: bytes, bid: int) -> Any:
        if self.family == "bracha":
            return BrachaMessage(
                mtype=MessageType.SEND, source=self.process_id, bid=bid, payload=payload
            )
        if self.family == "bracha_dolev":
            return DolevMessage(
                content=BrachaMessage(
                    mtype=MessageType.SEND,
                    source=self.process_id,
                    bid=bid,
                    payload=payload,
                ),
                path=(),
            )
        return CrossLayerMessage(
            mtype=MessageType.SEND,
            source=self.process_id,
            bid=bid,
            payload=payload,
            path=(),
        )

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        other = self.conflicting_payload
        if other is None:
            other = bytes(reversed(payload)) if payload else b"\x01"
        commands: List[Command] = []
        half = len(self.neighbors) // 2
        for index, neighbor in enumerate(self.neighbors):
            chosen = payload if index < half else other
            commands.append(SendTo(dest=neighbor, message=self._craft_send(chosen, bid)))
        return commands


#: Behaviour names accepted by :func:`build_behaviour` (and therefore by
#: the experiment runner and the scenario engine).
BEHAVIOUR_NAMES: Tuple[str, ...] = ("mute", "drop", "forge", "equivocate")


def build_behaviour(
    behaviour: str,
    process_id: int,
    neighbors: Sequence[int],
    *,
    system: SystemConfig,
    inner_factory,
    family: str = "cross_layer",
    seed: int = 0,
    drop_probability: float = 0.5,
):
    """Build one named Byzantine behaviour for process ``process_id``.

    ``inner_factory`` is a zero-argument callable returning a *correct*
    protocol instance for the process; it is only invoked for behaviours
    that wrap a correct protocol (``"drop"`` and ``"forge"``).  This is
    the single construction path shared by the experiment runner and the
    scenario engine, so a behaviour name means the same thing everywhere.
    """
    if behaviour == "mute":
        return MuteProcess(process_id, neighbors)
    if behaviour == "drop":
        return MessageDroppingRelay(
            inner_factory(), drop_probability=drop_probability, seed=seed
        )
    if behaviour == "forge":
        return PathForgingRelay(inner_factory(), system, seed=seed)
    if behaviour == "equivocate":
        return EquivocatingSource(process_id, neighbors, family=family)
    raise ValueError(f"unknown Byzantine behaviour: {behaviour}")


__all__ = [
    "ByzantineBehavior",
    "MuteProcess",
    "CrashingProcess",
    "MessageDroppingRelay",
    "PathForgingRelay",
    "EquivocatingSource",
    "BEHAVIOUR_NAMES",
    "build_behaviour",
]
