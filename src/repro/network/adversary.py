"""Byzantine process behaviours used by tests and failure-injection benches.

The global fault model of the paper lets up to ``f`` processes behave
arbitrarily: drop, modify or inject messages (Sec. 3).  This module
provides concrete behaviours implementing the same sans-io interface as
the correct protocols so they can be plugged into either runtime:

* :class:`MuteProcess` — never sends anything (fail-silent).
* :class:`CrashingProcess` — behaves correctly, then stops for good after
  a configurable number of handled messages.
* :class:`MessageDroppingRelay` — relays like a correct process but drops
  each outgoing message with some probability.
* :class:`PathForgingRelay` — relays but rewrites the path field of the
  messages it forwards with fabricated process identifiers.
* :class:`PathTruncatingRelay` — relays but *truncates* the path field,
  claiming the content travelled more directly than it did.
* :class:`SenderRewritingRelay` — relays but rewrites the ``source``
  identity of the messages it forwards.
* :class:`EmptyPayloadRelay` — relays envelopes with emptied payloads.
* :class:`LimitedBroadcastRelay` — relays only to a seed-deterministic
  strict subset of its neighbors, starving the rest.
* :class:`EquivocatingSource` — broadcasts conflicting payloads to
  different neighbors (the attack BRB-Agreement defends against).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import replace
from typing import Any, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.events import Command, SendTo
from repro.core.messages import (
    BrachaMessage,
    CrossLayerMessage,
    DolevMessage,
    MessageType,
)


class ByzantineBehavior:
    """Base class of Byzantine behaviours (duck-typed protocol interface)."""

    def __init__(self, process_id: int, neighbors: Sequence[int]) -> None:
        self.process_id = process_id
        self.neighbors: Tuple[int, ...] = tuple(sorted(set(neighbors)))
        self.delivered: dict = {}

    def on_start(self) -> List[Command]:
        return []

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        return []

    def on_message(self, sender: int, message: Any) -> List[Command]:
        return []

    def state_size_estimate(self) -> int:
        return 0


class MuteProcess(ByzantineBehavior):
    """A fail-silent Byzantine process: it never sends any message."""


class CrashingProcess(ByzantineBehavior):
    """Wraps a correct protocol and crashes it after ``crash_after`` messages.

    Until the crash point the process is indistinguishable from a correct
    one, which exercises the protocols' tolerance to processes that fail
    mid-broadcast.
    """

    def __init__(self, inner, crash_after: int) -> None:
        super().__init__(inner.process_id, inner.neighbors)
        if crash_after < 0:
            raise ValueError("crash_after must be non-negative")
        self.inner = inner
        self.crash_after = crash_after
        self._handled = 0

    @property
    def crashed(self) -> bool:
        """Whether the crash point has been reached."""
        return self._handled >= self.crash_after

    def on_start(self) -> List[Command]:
        return [] if self.crashed else self.inner.on_start()

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        if self.crashed:
            return []
        return self.inner.broadcast(payload, bid)

    def on_message(self, sender: int, message: Any) -> List[Command]:
        if self.crashed:
            return []
        self._handled += 1
        commands = self.inner.on_message(sender, message)
        if self.crashed:
            # The process crashes *while* handling this message: it gets the
            # first half (floor) of its outgoing commands onto the wire, then
            # stops for good.
            return commands[: len(commands) // 2]
        return commands


class MessageDroppingRelay(ByzantineBehavior):
    """Runs a correct protocol but drops outgoing messages probabilistically."""

    def __init__(self, inner, drop_probability: float, seed: int = 0) -> None:
        super().__init__(inner.process_id, inner.neighbors)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be within [0, 1]")
        self.inner = inner
        self.drop_probability = drop_probability
        self._rng = random.Random(seed)
        self.dropped = 0

    def _filter(self, commands: List[Command]) -> List[Command]:
        kept: List[Command] = []
        for command in commands:
            if isinstance(command, SendTo) and self._rng.random() < self.drop_probability:
                self.dropped += 1
                continue
            kept.append(command)
        return kept

    def on_start(self) -> List[Command]:
        return self._filter(self.inner.on_start())

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        return self._filter(self.inner.broadcast(payload, bid))

    def on_message(self, sender: int, message: Any) -> List[Command]:
        return self._filter(self.inner.on_message(sender, message))


class PathForgingRelay(ByzantineBehavior):
    """Relays messages but rewrites their path field with forged identifiers.

    The forged paths try to make the receiving processes believe the
    content travelled through many disjoint routes, which a correct
    disjoint-path verifier must not be fooled by (only ``f`` processes can
    lie, so at least ``f + 1`` genuine disjoint paths are still required).
    """

    def __init__(self, inner, config: SystemConfig, seed: int = 0) -> None:
        super().__init__(inner.process_id, inner.neighbors)
        self.inner = inner
        self.config = config
        self._rng = random.Random(seed)
        self.forged = 0

    def _forge_path(self, path: Tuple[int, ...]) -> Tuple[int, ...]:
        candidates = [p for p in self.config.processes if p != self.process_id]
        length = self._rng.randint(0, min(3, len(candidates)))
        self.forged += 1
        return tuple(self._rng.sample(candidates, length))

    def _mutate(self, commands: List[Command]) -> List[Command]:
        mutated: List[Command] = []
        for command in commands:
            if isinstance(command, SendTo):
                message = command.message
                if isinstance(message, DolevMessage):
                    message = DolevMessage(
                        content=message.content, path=self._forge_path(message.path)
                    )
                elif isinstance(message, CrossLayerMessage) and message.path is not None:
                    message = message.with_fields(path=self._forge_path(message.path))
                mutated.append(SendTo(dest=command.dest, message=message))
            else:
                mutated.append(command)
        return mutated

    def on_start(self) -> List[Command]:
        return self._mutate(self.inner.on_start())

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        return self._mutate(self.inner.broadcast(payload, bid))

    def on_message(self, sender: int, message: Any) -> List[Command]:
        return self._mutate(self.inner.on_message(sender, message))


class PathTruncatingRelay(ByzantineBehavior):
    """Relays messages but *truncates* their path field to a shorter prefix.

    Where :class:`PathForgingRelay` fabricates identifiers, this variant
    lies by omission: it claims the content travelled more directly than
    it did, trying to make one route look like several short disjoint
    ones.  A correct verifier still requires ``f + 1`` genuinely disjoint
    paths, so a single truncating relay must not enable forgery.
    """

    def __init__(self, inner, seed: int = 0) -> None:
        super().__init__(inner.process_id, inner.neighbors)
        self.inner = inner
        self._rng = random.Random(seed)
        self.truncated = 0

    def _truncate(self, path: Tuple[int, ...]) -> Tuple[int, ...]:
        if not path:
            return path
        keep = self._rng.randint(0, len(path) - 1)
        self.truncated += 1
        return path[:keep]

    def _mutate(self, commands: List[Command]) -> List[Command]:
        mutated: List[Command] = []
        for command in commands:
            if isinstance(command, SendTo):
                message = command.message
                if isinstance(message, DolevMessage):
                    message = DolevMessage(
                        content=message.content, path=self._truncate(message.path)
                    )
                elif isinstance(message, CrossLayerMessage) and message.path is not None:
                    message = message.with_fields(path=self._truncate(message.path))
                mutated.append(SendTo(dest=command.dest, message=message))
            else:
                mutated.append(command)
        return mutated

    def on_start(self) -> List[Command]:
        return self._mutate(self.inner.on_start())

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        return self._mutate(self.inner.broadcast(payload, bid))

    def on_message(self, sender: int, message: Any) -> List[Command]:
        return self._mutate(self.inner.on_message(sender, message))


class SenderRewritingRelay(ByzantineBehavior):
    """Relays messages but rewrites their ``source`` identity.

    Every relayed message that names a broadcast originator is rewritten
    to claim a different (seed-deterministically chosen) process
    originated it.  No-forgery requires that correct processes never
    deliver a broadcast the named source did not schedule, so the quorum
    and disjoint-path machinery must neutralize this relay.
    """

    def __init__(self, inner, config: SystemConfig, seed: int = 0) -> None:
        super().__init__(inner.process_id, inner.neighbors)
        self.inner = inner
        self.config = config
        self._rng = random.Random(seed)
        self.rewritten = 0

    def _fake_source(self, original: Optional[int]) -> int:
        candidates = [p for p in self.config.processes if p != original]
        self.rewritten += 1
        return self._rng.choice(candidates)

    def _rewrite(self, message: Any) -> Any:
        if isinstance(message, BrachaMessage):
            return replace(message, source=self._fake_source(message.source))
        if isinstance(message, DolevMessage) and isinstance(message.content, BrachaMessage):
            content = replace(
                message.content, source=self._fake_source(message.content.source)
            )
            return DolevMessage(content=content, path=message.path)
        if isinstance(message, CrossLayerMessage) and message.source is not None:
            return message.with_fields(source=self._fake_source(message.source))
        return message

    def _mutate(self, commands: List[Command]) -> List[Command]:
        mutated: List[Command] = []
        for command in commands:
            if isinstance(command, SendTo):
                mutated.append(SendTo(dest=command.dest, message=self._rewrite(command.message)))
            else:
                mutated.append(command)
        return mutated

    def on_start(self) -> List[Command]:
        return self._mutate(self.inner.on_start())

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        return self._mutate(self.inner.broadcast(payload, bid))

    def on_message(self, sender: int, message: Any) -> List[Command]:
        return self._mutate(self.inner.on_message(sender, message))


class EmptyPayloadRelay(ByzantineBehavior):
    """Relays envelopes but empties the payloads they carry.

    Correct processes must not deliver the emptied payload for the
    genuine ``(source, bid)``: agreement would be violated if some
    processes delivered the original bytes and others the empty ones.
    """

    def __init__(self, inner) -> None:
        super().__init__(inner.process_id, inner.neighbors)
        self.inner = inner
        self.emptied = 0

    def _strip(self, message: Any) -> Any:
        if isinstance(message, BrachaMessage):
            if message.payload:
                self.emptied += 1
                return replace(message, payload=b"")
            return message
        if isinstance(message, DolevMessage):
            content = message.content
            if isinstance(content, BrachaMessage):
                if content.payload:
                    self.emptied += 1
                    return DolevMessage(
                        content=replace(content, payload=b""), path=message.path
                    )
                return message
            if isinstance(content, bytes) and content:
                self.emptied += 1
                return DolevMessage(content=b"", path=message.path)
            return message
        if isinstance(message, CrossLayerMessage) and message.payload:
            self.emptied += 1
            return message.with_fields(payload=b"")
        return message

    def _mutate(self, commands: List[Command]) -> List[Command]:
        mutated: List[Command] = []
        for command in commands:
            if isinstance(command, SendTo):
                mutated.append(SendTo(dest=command.dest, message=self._strip(command.message)))
            else:
                mutated.append(command)
        return mutated

    def on_start(self) -> List[Command]:
        return self._mutate(self.inner.on_start())

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        return self._mutate(self.inner.broadcast(payload, bid))

    def on_message(self, sender: int, message: Any) -> List[Command]:
        return self._mutate(self.inner.on_message(sender, message))


class LimitedBroadcastRelay(ByzantineBehavior):
    """Relays only to a seed-deterministic strict subset of its neighbors.

    At construction a non-empty strict subset of the neighbor set is
    drawn from ``seed`` (for degree <= 1 there is no strict subset to
    draw, so the single neighbor is kept); every send targeting a
    neighbor outside the subset is silently suppressed.  This starves a
    deterministic part of the network of this relay's traffic, attacking
    totality through selective silence rather than outright muteness.
    """

    def __init__(self, inner, seed: int = 0) -> None:
        super().__init__(inner.process_id, inner.neighbors)
        self.inner = inner
        rng = random.Random(seed)
        if len(self.neighbors) > 1:
            keep = rng.randint(1, len(self.neighbors) - 1)
            self.targets: FrozenSet[int] = frozenset(rng.sample(self.neighbors, keep))
        else:
            self.targets = frozenset(self.neighbors)
        self.suppressed = 0

    def _filter(self, commands: List[Command]) -> List[Command]:
        kept: List[Command] = []
        for command in commands:
            if isinstance(command, SendTo) and command.dest not in self.targets:
                self.suppressed += 1
                continue
            kept.append(command)
        return kept

    def on_start(self) -> List[Command]:
        return self._filter(self.inner.on_start())

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        return self._filter(self.inner.broadcast(payload, bid))

    def on_message(self, sender: int, message: Any) -> List[Command]:
        return self._filter(self.inner.on_message(sender, message))


class EquivocatingSource(ByzantineBehavior):
    """A Byzantine source that sends conflicting payloads to its neighbors.

    The first ``ceil(degree / 2)`` neighbors receive ``payload`` and the
    remaining ``floor(degree / 2)`` receive ``conflicting_payload`` for
    the same ``(source, bid)``, so both payloads are on the wire whenever
    the source has at least two neighbors.  With a single neighbor no
    split is possible; the lone neighbor deterministically receives the
    genuine ``payload``.  BRB-Agreement requires that correct processes
    either all deliver the same payload or none delivers; the
    reliable-communication layer alone does not prevent a split, which is
    what the integration tests check.

    Parameters
    ----------
    family:
        Which message format to craft: ``"bracha"`` (plain Bracha on a
        fully connected network), ``"bracha_dolev"`` (layered combination)
        or ``"cross_layer"`` (the optimized protocol).
    conflicting_payload:
        The second payload to send.  When omitted, a deterministic
        conflicting payload is derived from the genuine payload (and the
        ``seed``, when non-zero, so grid equivocators do not all tell the
        same lie).
    """

    def __init__(
        self,
        process_id: int,
        neighbors: Sequence[int],
        *,
        family: str = "cross_layer",
        conflicting_payload: Optional[bytes] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(process_id, neighbors)
        if family not in ("bracha", "bracha_dolev", "cross_layer"):
            raise ValueError(f"unknown protocol family: {family}")
        self.family = family
        self.conflicting_payload = conflicting_payload
        self.seed = seed

    def _derive_conflicting(self, payload: bytes) -> bytes:
        if self.seed == 0:
            return bytes(reversed(payload)) if payload else b"\x01"
        digest = hashlib.sha256(b"repro-equivocate-%d" % self.seed + payload).digest()
        length = max(1, len(payload))
        other = (digest * (length // len(digest) + 1))[:length]
        if other == payload:  # astronomically unlikely, but must never collide
            other = bytes((other[0] ^ 0x01,)) + other[1:]
        return other

    def _craft_send(self, payload: bytes, bid: int) -> Any:
        if self.family == "bracha":
            return BrachaMessage(
                mtype=MessageType.SEND, source=self.process_id, bid=bid, payload=payload
            )
        if self.family == "bracha_dolev":
            return DolevMessage(
                content=BrachaMessage(
                    mtype=MessageType.SEND,
                    source=self.process_id,
                    bid=bid,
                    payload=payload,
                ),
                path=(),
            )
        return CrossLayerMessage(
            mtype=MessageType.SEND,
            source=self.process_id,
            bid=bid,
            payload=payload,
            path=(),
        )

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        other = self.conflicting_payload
        if other is None:
            other = self._derive_conflicting(payload)
        if len(self.neighbors) == 1:
            # No split is possible with a single witness: send the genuine
            # payload so the equivocator degenerates to a correct source.
            return [SendTo(dest=self.neighbors[0], message=self._craft_send(payload, bid))]
        commands: List[Command] = []
        # Ceil/floor split: the genuine payload goes to the first
        # ceil(n/2) neighbors, the conflicting one to the remaining
        # floor(n/2) — both non-empty for every degree >= 2.
        half = (len(self.neighbors) + 1) // 2
        for index, neighbor in enumerate(self.neighbors):
            chosen = payload if index < half else other
            commands.append(SendTo(dest=neighbor, message=self._craft_send(chosen, bid)))
        return commands


#: Behaviour names accepted by :func:`build_behaviour` (and therefore by
#: the experiment runner and the scenario engine).  Append-only: the
#: names are scenario-grid values, so reordering would change sampled
#: fuzz streams for existing seeds.
BEHAVIOUR_NAMES: Tuple[str, ...] = (
    "mute",
    "drop",
    "forge",
    "equivocate",
    "alter_sender",
    "send_empty",
    "limited_broadcast",
    "truncate_path",
)


def build_behaviour(
    behaviour: str,
    process_id: int,
    neighbors: Sequence[int],
    *,
    system: SystemConfig,
    inner_factory,
    family: str = "cross_layer",
    seed: int = 0,
    drop_probability: float = 0.5,
    conflicting_payload: Optional[bytes] = None,
):
    """Build one named Byzantine behaviour for process ``process_id``.

    ``inner_factory`` is a zero-argument callable returning a *correct*
    protocol instance for the process; it is only invoked for behaviours
    that wrap a correct protocol (every relay variant).  This is the
    single construction path shared by the experiment runner and the
    scenario engine, so a behaviour name means the same thing everywhere.
    """
    if behaviour == "mute":
        return MuteProcess(process_id, neighbors)
    if behaviour == "drop":
        return MessageDroppingRelay(
            inner_factory(), drop_probability=drop_probability, seed=seed
        )
    if behaviour == "forge":
        return PathForgingRelay(inner_factory(), system, seed=seed)
    if behaviour == "equivocate":
        return EquivocatingSource(
            process_id,
            neighbors,
            family=family,
            conflicting_payload=conflicting_payload,
            seed=seed,
        )
    if behaviour == "alter_sender":
        return SenderRewritingRelay(inner_factory(), system, seed=seed)
    if behaviour == "send_empty":
        return EmptyPayloadRelay(inner_factory())
    if behaviour == "limited_broadcast":
        return LimitedBroadcastRelay(inner_factory(), seed=seed)
    if behaviour == "truncate_path":
        return PathTruncatingRelay(inner_factory(), seed=seed)
    raise ValueError(f"unknown Byzantine behaviour: {behaviour}")


__all__ = [
    "ByzantineBehavior",
    "MuteProcess",
    "CrashingProcess",
    "MessageDroppingRelay",
    "PathForgingRelay",
    "PathTruncatingRelay",
    "SenderRewritingRelay",
    "EmptyPayloadRelay",
    "LimitedBroadcastRelay",
    "EquivocatingSource",
    "BEHAVIOUR_NAMES",
    "build_behaviour",
]
