"""Deterministic discrete-event simulation of the communication network."""

from repro.network.simulation.delays import (
    AsynchronousDelay,
    DelayModel,
    FixedDelay,
    UniformDelay,
)
from repro.network.simulation.scheduler import EventScheduler
from repro.network.simulation.network import SimulatedNetwork

__all__ = [
    "DelayModel",
    "FixedDelay",
    "AsynchronousDelay",
    "UniformDelay",
    "EventScheduler",
    "SimulatedNetwork",
]
