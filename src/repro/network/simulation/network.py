"""Discrete-event simulation of an authenticated partially connected network.

A :class:`SimulatedNetwork` hosts one protocol instance (or Byzantine
behaviour) per process of a :class:`~repro.topology.Topology`, applies a
:class:`~repro.network.simulation.delays.DelayModel` to every message and
records every send and delivery in a
:class:`~repro.metrics.MetricsCollector`.

The simulation enforces the system model of Sec. 3:

* only processes connected by an edge can exchange messages (a protocol
  trying to send to a non-neighbor is a bug and raises);
* links are authenticated — messages are never altered in transit and
  the receiver learns the true sender identity;
* links are either synchronous (fixed delay) or asynchronous (random
  delay), in which case messages can be reordered;
* links are reliable by default, but a lossy delay model
  (:class:`~repro.network.simulation.delays.LossyDelay`,
  :class:`~repro.network.simulation.delays.BurstyLossWindow`) may return
  the :data:`~repro.network.simulation.delays.DROP` sentinel for a
  message, which is then lost in transit (its bytes are still charged to
  the sender).

The network also supports an *observer* hook
(:attr:`SimulatedNetwork.observer`): every send and delivery is reported
as an :class:`~repro.core.events.Observation`, which is how the scenario
engine's adaptive adversaries watch a run and react to it (crash a
process mid-run, cut a link, swap a protocol for a Byzantine behaviour
via :meth:`SimulatedNetwork.replace_protocol`).
"""

from __future__ import annotations

import gc
import random
from heapq import heappush
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.errors import ConfigurationError, RuntimeAbort
from repro.core.events import BRBDeliver, Command, Observation, RCDeliver, SendTo
from repro.metrics.collector import MetricsCollector, RunMetrics, message_type_name
from repro.network.simulation.delays import DROP, DelayModel, FixedDelay
from repro.network.simulation.scheduler import EventScheduler
from repro.topology.generators import Topology

DeliveryCallback = Callable[[int, BRBDeliver, float], None]
ObserverCallback = Callable[[Observation], None]


class SimulatedNetwork:
    """Hosts protocol instances over a simulated partially connected network.

    Parameters
    ----------
    topology:
        The communication graph; one protocol instance per node.
    protocols:
        Mapping from process identifier to the object implementing the
        protocol interface (``on_start`` / ``broadcast`` / ``on_message``).
        Byzantine behaviours from :mod:`repro.network.adversary` implement
        the same interface.
    delay_model:
        Per-message link delay distribution (defaults to the paper's
        synchronous 50 ms setting).
    seed:
        Seed of the random number generator driving delays and any
        randomized Byzantine behaviour.
    collector:
        Metrics collector; a fresh one is created when omitted.
    on_deliver:
        Optional callback invoked on every BRB delivery, used by the
        example applications.
    shared_bandwidth_bps:
        When set, all messages additionally share a single transmission
        medium of this rate (bits per second).  This emulates the paper's
        testbed, where every Docker container runs on one desktop with a
        1 Gb/s ``netem`` cap: configurations that exchange a lot of data
        saturate the medium and see their latency grow, which is how the
        bandwidth-reducing modifications also improve latency (Sec. 7.7).
    """

    def __init__(
        self,
        topology: Topology,
        protocols: Mapping[int, object],
        *,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
        collector: Optional[MetricsCollector] = None,
        on_deliver: Optional[DeliveryCallback] = None,
        shared_bandwidth_bps: Optional[float] = None,
    ) -> None:
        missing = [node for node in topology.nodes if node not in protocols]
        if missing:
            raise ConfigurationError(f"no protocol instance for processes {missing}")
        unknown = [pid for pid in protocols if pid not in topology.adjacency]
        if unknown:
            raise ConfigurationError(f"protocol instances for unknown processes {unknown}")
        self.topology = topology
        # Plain adjacency mapping, aliased for the per-send channel check.
        self._adjacency = topology.adjacency
        self.protocols = dict(protocols)
        self.delay_model = delay_model if delay_model is not None else FixedDelay()
        self.rng = random.Random(seed)
        self.scheduler = EventScheduler()
        self.collector = collector if collector is not None else MetricsCollector()
        self.on_deliver = on_deliver
        if shared_bandwidth_bps is not None and shared_bandwidth_bps <= 0:
            raise ConfigurationError("shared_bandwidth_bps must be positive")
        self.shared_bandwidth_bps = shared_bandwidth_bps
        self._medium_free_at = 0.0
        # Per-send bound methods and scheduler internals, bypassing the
        # attribute chain (and, for the event queue, the call) in the
        # hottest loop of a run.  The scheduler instance is created above
        # and never replaced, so the aliases cannot go stale.
        self._record_send = self.collector.record_send
        # The plain (class-level) function, not a bound method: a bound
        # method stored on the instance is a reference cycle network →
        # method → network that keeps the whole finished network graph
        # alive until a cyclic-GC pass.  Scheduled entries carry ``self``
        # in the args tuple instead.
        self._deliver_cb = SimulatedNetwork._deliver
        self._sched_times = self.scheduler._times
        self._sched_buckets = self.scheduler._buckets
        # Fixed-delay fast path: the delay model is set once at
        # construction, so the per-send type dispatch collapses to a
        # None check.
        self._fixed_delay_ms = (
            self.delay_model.delay_ms
            if type(self.delay_model) is FixedDelay
            else None
        )
        self._crashed: set = set()
        self._started = False
        #: Observer of protocol events (sends/deliveries); set by the
        #: scenario engine to feed adaptive adversaries.
        self.observer: Optional[ObserverCallback] = None
        #: Messages lost to link-drop windows or a lossy delay model.
        self.dropped_messages = 0
        # Undirected link -> list of (start_ms, end_ms) drop windows;
        # ``end_ms`` is None for a window that never reopens.
        self._link_drops: Dict[Tuple[int, int], List[Tuple[float, Optional[float]]]] = {}
        # Delayed-start processes: pid -> wake-up time, plus the messages
        # buffered for them while they are dormant.
        self._start_times: Dict[int, float] = {}
        self._dormant_buffers: Dict[int, List[Tuple[int, object]]] = {}
        # Membership churn state.  ``_churn`` flips once a live graph
        # edit (leave/rewire) happens: sends onto a severed channel are
        # then counted as losses instead of raising, while the
        # no-channel RuntimeAbort stays a bug detector for static runs.
        self._unjoined: set = set()
        self._join_times: Dict[int, float] = {}
        self._departed: set = set()
        self._churn = False

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.scheduler.now

    def crash(self, pid: int) -> None:
        """Crash a process: it stops sending and ignores future messages."""
        if pid not in self.protocols:
            raise ConfigurationError(f"cannot crash unknown process {pid}")
        self._crashed.add(pid)
        self._dormant_buffers.pop(pid, None)

    def crash_at(self, pid: int, time_ms: float) -> None:
        """Schedule a crash of ``pid`` at absolute simulated time ``time_ms``.

        A crash at time 0 takes effect before the process runs its
        ``on_start`` hook or initiates any broadcast, so the process never
        participates at all (it behaves like a :class:`MuteProcess` that
        also ignores incoming messages).
        """
        if pid not in self.protocols:
            raise ConfigurationError(f"cannot crash unknown process {pid}")
        if time_ms <= self.scheduler.now:
            self.crash(pid)
        else:
            self.scheduler.schedule_at(time_ms, self.crash, pid)

    def add_link_drop_window(
        self, u: int, v: int, start_ms: float, end_ms: Optional[float] = None
    ) -> None:
        """Drop every message put on the ``{u, v}`` link during a time window.

        Messages whose send time falls in ``[start_ms, end_ms)`` are lost
        (in both directions); their bytes are still charged to the sender,
        mirroring a transmission that leaves the NIC but never arrives.
        ``end_ms=None`` models a link that goes down and never reopens.
        """
        if not self.topology.has_edge(u, v):
            raise ConfigurationError(f"no link between {u} and {v} to drop")
        if end_ms is not None and end_ms < start_ms:
            raise ConfigurationError(
                f"link-drop window ends before it starts ({start_ms}, {end_ms})"
            )
        key = (min(u, v), max(u, v))
        self._link_drops.setdefault(key, []).append((start_ms, end_ms))

    def delay_start(self, pid: int, time_ms: float) -> None:
        """Delay ``pid``'s participation until absolute time ``time_ms``.

        Until then the process neither runs ``on_start`` nor handles
        messages; incoming messages are buffered and replayed in arrival
        order when the process wakes up, modelling a node that boots late
        but misses nothing the network queued for it.
        """
        if pid not in self.protocols:
            raise ConfigurationError(f"cannot delay unknown process {pid}")
        if self._started:
            raise ConfigurationError("delay_start must be called before the run starts")
        if time_ms < 0:
            raise ConfigurationError(f"start time must be non-negative, got {time_ms}")
        self._start_times[pid] = time_ms

    # -- membership churn ----------------------------------------------
    def _materialize_adjacency(self) -> None:
        """Swap the zero-copy topology alias for a mutable per-run copy.

        The shared (lru-cached) :class:`Topology` must never be mutated;
        live graph edits operate on this network's private adjacency.
        ``_execute_commands`` re-reads ``self._adjacency`` per batch, so
        the swap is visible to every later send.  Non-churn runs never
        pay for the copy.
        """
        if self._adjacency is self.topology.adjacency:
            self._adjacency = {
                pid: set(peers) for pid, peers in self.topology.adjacency.items()
            }
        self._churn = True

    def join_at(self, pid: int, time_ms: float) -> None:
        """Process ``pid`` joins the run at absolute time ``time_ms``.

        Until then it is absent: ``on_start`` does not run and messages
        addressed to it are *dropped* (a late joiner missed the early
        traffic — contrast :meth:`delay_start`, which buffers).  Its
        topology links are unaffected.
        """
        if pid not in self.protocols:
            raise ConfigurationError(f"cannot join unknown process {pid}")
        if self._started:
            raise ConfigurationError("join_at must be called before the run starts")
        if time_ms < 0:
            raise ConfigurationError(f"join time must be non-negative, got {time_ms}")
        self._unjoined.add(pid)
        self._join_times[pid] = time_ms
        self.scheduler.schedule_at(time_ms, self._join, pid)

    def _join(self, pid: int) -> None:
        self._join_times.pop(pid, None)
        if pid not in self._unjoined:
            return
        self._unjoined.discard(pid)
        if pid in self._crashed:
            return
        protocol = self.protocols[pid]
        if hasattr(protocol, "on_start"):
            self._execute_commands(pid, protocol.on_start())

    def leave_at(self, pid: int, time_ms: float) -> None:
        """Process ``pid`` leaves the run at absolute time ``time_ms``.

        Leaving combines a fail-silent crash with a graph edit: every
        ``{pid, peer}`` link is severed, so subsequent sends toward the
        departed process are lost on a missing channel (and counted in
        :attr:`dropped_messages`) rather than reaching a dead inbox.
        """
        if pid not in self.protocols:
            raise ConfigurationError(f"cannot remove unknown process {pid}")
        if time_ms <= self.scheduler.now:
            self._leave(pid)
        else:
            self.scheduler.schedule_at(time_ms, self._leave, pid)

    def _leave(self, pid: int) -> None:
        self._materialize_adjacency()
        self._departed.add(pid)
        self.crash(pid)
        self._unjoined.discard(pid)
        self._join_times.pop(pid, None)
        for peer in tuple(self._adjacency[pid]):
            self._adjacency[peer].discard(pid)
        self._adjacency[pid] = set()

    def rewire_link_at(
        self, pid: int, old_peer: int, new_peer: int, time_ms: float
    ) -> None:
        """At ``time_ms``, replace the ``{pid, old_peer}`` link with
        ``{pid, new_peer}``.

        Validated against the *initial* topology (the edge to sever must
        exist there); at fire time the edit applies to the live adjacency,
        where earlier churn may already have removed either endpoint's
        links — missing edges are then simply skipped.
        """
        for node in (pid, old_peer, new_peer):
            if node not in self.protocols:
                raise ConfigurationError(f"cannot rewire unknown process {node}")
        if not self.topology.has_edge(pid, old_peer):
            raise ConfigurationError(f"no link between {pid} and {old_peer} to rewire")
        if time_ms <= self.scheduler.now:
            self._rewire(pid, old_peer, new_peer)
        else:
            self.scheduler.schedule_at(time_ms, self._rewire, pid, old_peer, new_peer)

    def _rewire(self, pid: int, old_peer: int, new_peer: int) -> None:
        self._materialize_adjacency()
        adjacency = self._adjacency
        adjacency[pid].discard(old_peer)
        adjacency[old_peer].discard(pid)
        adjacency[pid].add(new_peer)
        adjacency[new_peer].add(pid)

    def is_joined(self, pid: int) -> bool:
        """Whether ``pid`` has joined the run (true unless a pending JoinAt)."""
        return pid not in self._unjoined

    def has_departed(self, pid: int) -> bool:
        """Whether ``pid`` left the run via :meth:`leave_at`."""
        return pid in self._departed

    def replace_protocol(self, pid: int, protocol: object) -> None:
        """Swap process ``pid``'s protocol instance mid-run.

        Used by adaptive adversaries to turn a (so far correct) process
        Byzantine once a trigger fires: the replacement handles every
        subsequent event, while commands already scheduled from the old
        instance still deliver — a conversion cannot retract messages
        that are on the wire.
        """
        if pid not in self.protocols:
            raise ConfigurationError(f"cannot replace unknown process {pid}")
        self.protocols[pid] = protocol

    def is_crashed(self, pid: int) -> bool:
        """Whether ``pid`` has been crashed."""
        return pid in self._crashed

    def is_dormant(self, pid: int) -> bool:
        """Whether ``pid`` is a delayed-start process that has not woken yet."""
        return pid in self._start_times and self.scheduler.now < self._start_times[pid]

    def start(self) -> None:
        """Run every protocol's ``on_start`` hook once."""
        if self._started:
            return
        self._started = True
        for pid, protocol in self.protocols.items():
            if pid in self._unjoined:
                # Joins later: _join runs on_start at the join time.
                continue
            if self.is_dormant(pid):
                self._dormant_buffers.setdefault(pid, [])
                self.scheduler.schedule_at(self._start_times[pid], self._wake, pid)
            elif hasattr(protocol, "on_start"):
                self._execute_commands(pid, protocol.on_start())

    def _wake(self, pid: int) -> None:
        """Run a delayed-start process's hooks and replay its buffer."""
        if pid in self._crashed:
            return
        protocol = self.protocols[pid]
        if hasattr(protocol, "on_start"):
            self._execute_commands(pid, protocol.on_start())
        for sender, message in self._dormant_buffers.pop(pid, []):
            if pid in self._crashed:
                break
            # Re-resolved per message: an adaptive trigger firing during
            # the replay (e.g. on an observation one of these commands
            # produced) swaps the instance, and the rest of the buffer
            # must reach the replacement, not the pre-conversion one.
            self._execute_commands(pid, self.protocols[pid].on_message(sender, message))

    def broadcast(self, pid: int, payload: bytes, bid: int = 0) -> None:
        """Have process ``pid`` initiate a broadcast at the current time.

        A delayed-start process broadcasts right after it wakes up instead.
        """
        self.start()
        if pid in self._crashed:
            return
        if pid in self._unjoined:
            # The join event is already queued at the same timestamp with
            # a smaller sequence number, so on_start runs first.
            self.scheduler.schedule_at(
                self._join_times[pid], self._broadcast_after_wake, pid, payload, bid
            )
            return
        if self.is_dormant(pid):
            # The wake-up event is already queued at the same timestamp with
            # a smaller sequence number, so on_start runs first.
            self.scheduler.schedule_at(
                self._start_times[pid], self._broadcast_after_wake, pid, payload, bid
            )
            return
        self._execute_commands(pid, self.protocols[pid].broadcast(payload, bid))

    def _broadcast_after_wake(self, pid: int, payload: bytes, bid: int) -> None:
        # The protocol instance is resolved at fire time, not at schedule
        # time: an adaptive conversion between the broadcast call and the
        # wake-up must see the replacement instance broadcast.
        if pid in self._crashed:
            return
        self._execute_commands(pid, self.protocols[pid].broadcast(payload, bid))

    def broadcast_at(self, pid: int, payload: bytes, bid: int, time_ms: float) -> None:
        """Schedule a broadcast by ``pid`` at absolute simulated ``time_ms``.

        A past (or current) timestamp broadcasts immediately; otherwise
        the initiation is queued on the scheduler, so sensor-style
        workloads interleave with in-flight traffic of earlier
        broadcasts.  Crash and dormancy semantics are those of
        :meth:`broadcast` evaluated at initiation time — a source that
        crashed before ``time_ms`` never broadcasts.
        """
        self.start()
        if pid not in self.protocols:
            raise ConfigurationError(f"cannot broadcast from unknown process {pid}")
        if time_ms <= self.scheduler.now:
            self.broadcast(pid, payload, bid)
        else:
            self.scheduler.schedule_at(time_ms, self.broadcast, pid, payload, bid)

    def run(
        self,
        *,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> RunMetrics:
        """Run the simulation until no message is in flight.

        Returns the frozen metrics of the run.  ``max_events`` guards
        against unbounded message storms (see
        :class:`~repro.network.simulation.scheduler.EventScheduler`).
        """
        self.start()
        # The event loop allocates heavily and the protocol state holds
        # reference cycles (record ↔ slot), so cyclic-GC passes cost ~20%
        # of a run while reclaiming nothing that matters mid-run.  Pause
        # collection for the bounded duration of the loop.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            self.scheduler.run(max_time=max_time, max_events=max_events)
        finally:
            if gc_was_enabled:
                gc.enable()
        self.collector.record_time(self.scheduler.now)
        self._collect_state_sizes()
        return self.collector.snapshot()

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------
    def _execute_commands(self, pid: int, commands: Iterable[Command]) -> None:
        """Execute one protocol batch, with the send path inlined.

        A protocol reacting to one stimulus emits a burst of sends that
        share the sender, the timestamp and the network configuration, so
        everything the per-send path needs is hoisted to locals once per
        batch instead of re-read through ``self`` for every message.
        ``_medium_free_at`` stays an attribute: it mutates across the
        burst (shared-medium serialization).
        """
        crashed = self._crashed
        if pid in crashed:
            return
        neighbors = self._adjacency[pid]
        record_send = self._record_send
        # The memo fast path below reaches into the collector's internals,
        # so it is only valid for the stock class — a subclass overriding
        # record_send must see every send.
        collector = self.collector
        plain_collector = type(collector) is MetricsCollector
        fixed = self._fixed_delay_ms
        bandwidth = self.shared_bandwidth_bps
        link_drops = self._link_drops
        deliver_cb = self._deliver_cb
        buckets = self._sched_buckets
        times = self._sched_times
        observer = self.observer
        # The clock only advances inside EventScheduler.run, which cannot
        # re-enter while a batch is executing: one read serves the burst.
        now = self.scheduler.now
        for command in commands:
            if pid in crashed:
                # An adaptive trigger crashed the process while this
                # command batch was executing: the remaining commands
                # are suppressed, exactly like the asyncio runtime.
                return
            if type(command) is SendTo or isinstance(command, SendTo):
                dest = command.dest
                if dest not in neighbors:
                    if self._churn:
                        # A live graph edit severed the channel mid-run:
                        # the transmission is lost, not a protocol bug.
                        self.dropped_messages += 1
                        continue
                    raise RuntimeAbort(
                        f"process {pid} tried to send to {dest} without a channel"
                    )
                message = command.message
                # Inlined MetricsCollector.record_send memo-hit path: a
                # fan-out burst re-sends the same interned message object
                # from the same sender, so both memo slots hit and the
                # method call is skipped.  Any miss (new message, new
                # sender, first send) falls back to the real method,
                # which also refreshes the memos.
                if (
                    plain_collector
                    and message is collector._memo_message
                    and pid == collector._memo_sender
                ):
                    size = collector._memo_size
                    cell = collector._memo_tcell
                    cell[0] += 1
                    cell[1] += size
                    cell = collector._memo_pcell
                    cell[0] += 1
                    cell[1] += size
                    if now > collector.end_time:
                        collector.end_time = now
                else:
                    size = record_send(now, pid, dest, message)
                if fixed is not None:
                    # The dominant configuration (the paper's synchronous
                    # 50 ms links) consumes no RNG and never drops, so the
                    # virtual dispatch is skipped entirely.
                    outcome = fixed
                    dropped = False
                else:
                    outcome = self.delay_model.sample_event(
                        self.rng, pid, dest, size, now
                    )
                    dropped = outcome is DROP
                if link_drops and self._link_dropped(pid, dest, now):
                    dropped = True
                delay = 0.0 if outcome is DROP else outcome

                if bandwidth is not None:
                    # Serialize the message through the shared medium
                    # before the propagation delay starts.  A message lost
                    # to a link-drop window or the lossy delay model still
                    # left the NIC, so it occupies the medium too.
                    start = now if now > self._medium_free_at else self._medium_free_at
                    transmission_ms = (size * 8.0 / bandwidth) * 1000.0
                    self._medium_free_at = start + transmission_ms
                    if dropped:
                        self.dropped_messages += 1
                    else:
                        # Inlined EventScheduler.schedule_at (validation
                        # included): the hottest scheduling site of a
                        # bandwidth run.
                        time = self._medium_free_at + delay
                        if time != time:
                            raise ValueError(
                                "cannot schedule an event at a NaN time"
                            )
                        if time < now:
                            raise ValueError(
                                f"cannot schedule at {time}, current time is {now}"
                            )
                        entry = (deliver_cb, (self, dest, pid, message))
                        bucket = buckets.get(time)
                        if bucket is None:
                            buckets[time] = entry
                            heappush(times, time)
                        elif type(bucket) is list:
                            bucket.append(entry)
                        else:
                            buckets[time] = [bucket, entry]
                elif dropped:
                    self.dropped_messages += 1
                else:
                    # Inlined EventScheduler.schedule (validation included).
                    if delay != delay:
                        raise ValueError(
                            "cannot schedule an event with a NaN delay"
                        )
                    if delay < 0:
                        raise ValueError(
                            f"cannot schedule an event in the past (delay={delay})"
                        )
                    time = now + delay
                    entry = (deliver_cb, (self, dest, pid, message))
                    bucket = buckets.get(time)
                    if bucket is None:
                        buckets[time] = entry
                        heappush(times, time)
                    elif type(bucket) is list:
                        bucket.append(entry)
                    else:
                        buckets[time] = [bucket, entry]
                # Observed last: the message is on the wire (or provably
                # lost) before an adaptive adversary may react to it, so a
                # triggered crash of the sender cannot retract this
                # transmission.
                if observer is not None:
                    observer(
                        Observation(
                            kind="send",
                            time_ms=now,
                            pid=pid,
                            dest=dest,
                            mtype=message_type_name(message),
                            source=getattr(message, "source", None),
                            bid=getattr(message, "bid", None),
                        )
                    )
            elif isinstance(command, BRBDeliver):
                self._execute_delivery(pid, command)
            elif isinstance(command, RCDeliver):
                self._execute_rc_delivery(pid, command)
            else:  # pragma: no cover - defensive
                raise RuntimeAbort(f"unknown command {command!r} from process {pid}")

    def _link_dropped(self, u: int, v: int, time: float) -> bool:
        windows = self._link_drops.get((min(u, v), max(u, v)))
        if not windows:
            return False
        return any(
            start <= time and (end is None or time < end) for start, end in windows
        )

    def _deliver(self, dest: int, sender: int, message: object) -> None:
        """Deliver one in-flight message to its destination process.

        The reusable delivery path: scheduled with explicit arguments
        instead of a fresh closure per send.  Crash and dormancy are
        evaluated at delivery time, and the protocol instance is resolved
        here so mid-flight adaptive conversions receive the message.
        """
        if dest in self._crashed:
            return
        if self._unjoined and dest in self._unjoined:
            # Not a member yet: a late joiner misses the early traffic.
            self.dropped_messages += 1
            return
        if self._start_times and self.is_dormant(dest):
            self._dormant_buffers.setdefault(dest, []).append((sender, message))
            return
        commands = self.protocols[dest].on_message(sender, message)
        if commands:
            self._execute_commands(dest, commands)

    def _execute_delivery(self, pid: int, command: BRBDeliver) -> None:
        self.collector.record_delivery(
            self.scheduler.now, pid, command.source, command.bid, command.payload
        )
        if self.on_deliver is not None:
            self.on_deliver(pid, command, self.scheduler.now)
        if self.observer is not None:
            self.observer(
                Observation(
                    kind="deliver",
                    time_ms=self.scheduler.now,
                    pid=pid,
                    source=command.source,
                    bid=command.bid,
                )
            )

    def _execute_rc_delivery(self, pid: int, command: RCDeliver) -> None:
        source = command.source if command.source is not None else -1
        payload = command.payload if isinstance(command.payload, bytes) else b""
        self.collector.record_delivery(self.scheduler.now, pid, source, 0, payload)
        if self.observer is not None:
            self.observer(
                Observation(
                    kind="deliver",
                    time_ms=self.scheduler.now,
                    pid=pid,
                    source=source,
                    bid=0,
                )
            )

    def _notify(self, observation: Observation) -> None:
        if self.observer is not None:
            self.observer(observation)

    def _collect_state_sizes(self) -> None:
        for pid, protocol in self.protocols.items():
            estimator = getattr(protocol, "state_size_estimate", None)
            if callable(estimator):
                self.collector.record_state_size(pid, estimator())


__all__ = ["SimulatedNetwork"]
