"""Discrete-event simulation of an authenticated partially connected network.

A :class:`SimulatedNetwork` hosts one protocol instance (or Byzantine
behaviour) per process of a :class:`~repro.topology.Topology`, applies a
:class:`~repro.network.simulation.delays.DelayModel` to every message and
records every send and delivery in a
:class:`~repro.metrics.MetricsCollector`.

The simulation enforces the system model of Sec. 3:

* only processes connected by an edge can exchange messages (a protocol
  trying to send to a non-neighbor is a bug and raises);
* links are authenticated — messages are never altered in transit and
  the receiver learns the true sender identity;
* links are either synchronous (fixed delay) or asynchronous (random
  delay), in which case messages can be reordered;
* links are reliable by default, but a lossy delay model
  (:class:`~repro.network.simulation.delays.LossyDelay`,
  :class:`~repro.network.simulation.delays.BurstyLossWindow`) may return
  the :data:`~repro.network.simulation.delays.DROP` sentinel for a
  message, which is then lost in transit (its bytes are still charged to
  the sender).

The network also supports an *observer* hook
(:attr:`SimulatedNetwork.observer`): every send and delivery is reported
as an :class:`~repro.core.events.Observation`, which is how the scenario
engine's adaptive adversaries watch a run and react to it (crash a
process mid-run, cut a link, swap a protocol for a Byzantine behaviour
via :meth:`SimulatedNetwork.replace_protocol`).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.errors import ConfigurationError, RuntimeAbort
from repro.core.events import BRBDeliver, Command, Observation, RCDeliver, SendTo
from repro.metrics.collector import MetricsCollector, RunMetrics, message_type_name
from repro.network.simulation.delays import DROP, DelayModel, FixedDelay
from repro.network.simulation.scheduler import EventScheduler
from repro.topology.generators import Topology

DeliveryCallback = Callable[[int, BRBDeliver, float], None]
ObserverCallback = Callable[[Observation], None]


class SimulatedNetwork:
    """Hosts protocol instances over a simulated partially connected network.

    Parameters
    ----------
    topology:
        The communication graph; one protocol instance per node.
    protocols:
        Mapping from process identifier to the object implementing the
        protocol interface (``on_start`` / ``broadcast`` / ``on_message``).
        Byzantine behaviours from :mod:`repro.network.adversary` implement
        the same interface.
    delay_model:
        Per-message link delay distribution (defaults to the paper's
        synchronous 50 ms setting).
    seed:
        Seed of the random number generator driving delays and any
        randomized Byzantine behaviour.
    collector:
        Metrics collector; a fresh one is created when omitted.
    on_deliver:
        Optional callback invoked on every BRB delivery, used by the
        example applications.
    shared_bandwidth_bps:
        When set, all messages additionally share a single transmission
        medium of this rate (bits per second).  This emulates the paper's
        testbed, where every Docker container runs on one desktop with a
        1 Gb/s ``netem`` cap: configurations that exchange a lot of data
        saturate the medium and see their latency grow, which is how the
        bandwidth-reducing modifications also improve latency (Sec. 7.7).
    """

    def __init__(
        self,
        topology: Topology,
        protocols: Mapping[int, object],
        *,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
        collector: Optional[MetricsCollector] = None,
        on_deliver: Optional[DeliveryCallback] = None,
        shared_bandwidth_bps: Optional[float] = None,
    ) -> None:
        missing = [node for node in topology.nodes if node not in protocols]
        if missing:
            raise ConfigurationError(f"no protocol instance for processes {missing}")
        unknown = [pid for pid in protocols if pid not in topology.adjacency]
        if unknown:
            raise ConfigurationError(f"protocol instances for unknown processes {unknown}")
        self.topology = topology
        self.protocols = dict(protocols)
        self.delay_model = delay_model if delay_model is not None else FixedDelay()
        self.rng = random.Random(seed)
        self.scheduler = EventScheduler()
        self.collector = collector if collector is not None else MetricsCollector()
        self.on_deliver = on_deliver
        if shared_bandwidth_bps is not None and shared_bandwidth_bps <= 0:
            raise ConfigurationError("shared_bandwidth_bps must be positive")
        self.shared_bandwidth_bps = shared_bandwidth_bps
        self._medium_free_at = 0.0
        self._crashed: set = set()
        self._started = False
        #: Observer of protocol events (sends/deliveries); set by the
        #: scenario engine to feed adaptive adversaries.
        self.observer: Optional[ObserverCallback] = None
        #: Messages lost to link-drop windows or a lossy delay model.
        self.dropped_messages = 0
        # Undirected link -> list of (start_ms, end_ms) drop windows;
        # ``end_ms`` is None for a window that never reopens.
        self._link_drops: Dict[Tuple[int, int], List[Tuple[float, Optional[float]]]] = {}
        # Delayed-start processes: pid -> wake-up time, plus the messages
        # buffered for them while they are dormant.
        self._start_times: Dict[int, float] = {}
        self._dormant_buffers: Dict[int, List[Tuple[int, object]]] = {}

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.scheduler.now

    def crash(self, pid: int) -> None:
        """Crash a process: it stops sending and ignores future messages."""
        if pid not in self.protocols:
            raise ConfigurationError(f"cannot crash unknown process {pid}")
        self._crashed.add(pid)
        self._dormant_buffers.pop(pid, None)

    def crash_at(self, pid: int, time_ms: float) -> None:
        """Schedule a crash of ``pid`` at absolute simulated time ``time_ms``.

        A crash at time 0 takes effect before the process runs its
        ``on_start`` hook or initiates any broadcast, so the process never
        participates at all (it behaves like a :class:`MuteProcess` that
        also ignores incoming messages).
        """
        if pid not in self.protocols:
            raise ConfigurationError(f"cannot crash unknown process {pid}")
        if time_ms <= self.scheduler.now:
            self.crash(pid)
        else:
            self.scheduler.schedule_at(time_ms, lambda: self.crash(pid))

    def add_link_drop_window(
        self, u: int, v: int, start_ms: float, end_ms: Optional[float] = None
    ) -> None:
        """Drop every message put on the ``{u, v}`` link during a time window.

        Messages whose send time falls in ``[start_ms, end_ms)`` are lost
        (in both directions); their bytes are still charged to the sender,
        mirroring a transmission that leaves the NIC but never arrives.
        ``end_ms=None`` models a link that goes down and never reopens.
        """
        if not self.topology.has_edge(u, v):
            raise ConfigurationError(f"no link between {u} and {v} to drop")
        if end_ms is not None and end_ms < start_ms:
            raise ConfigurationError(
                f"link-drop window ends before it starts ({start_ms}, {end_ms})"
            )
        key = (min(u, v), max(u, v))
        self._link_drops.setdefault(key, []).append((start_ms, end_ms))

    def delay_start(self, pid: int, time_ms: float) -> None:
        """Delay ``pid``'s participation until absolute time ``time_ms``.

        Until then the process neither runs ``on_start`` nor handles
        messages; incoming messages are buffered and replayed in arrival
        order when the process wakes up, modelling a node that boots late
        but misses nothing the network queued for it.
        """
        if pid not in self.protocols:
            raise ConfigurationError(f"cannot delay unknown process {pid}")
        if self._started:
            raise ConfigurationError("delay_start must be called before the run starts")
        if time_ms < 0:
            raise ConfigurationError(f"start time must be non-negative, got {time_ms}")
        self._start_times[pid] = time_ms

    def replace_protocol(self, pid: int, protocol: object) -> None:
        """Swap process ``pid``'s protocol instance mid-run.

        Used by adaptive adversaries to turn a (so far correct) process
        Byzantine once a trigger fires: the replacement handles every
        subsequent event, while commands already scheduled from the old
        instance still deliver — a conversion cannot retract messages
        that are on the wire.
        """
        if pid not in self.protocols:
            raise ConfigurationError(f"cannot replace unknown process {pid}")
        self.protocols[pid] = protocol

    def is_crashed(self, pid: int) -> bool:
        """Whether ``pid`` has been crashed."""
        return pid in self._crashed

    def is_dormant(self, pid: int) -> bool:
        """Whether ``pid`` is a delayed-start process that has not woken yet."""
        return pid in self._start_times and self.scheduler.now < self._start_times[pid]

    def start(self) -> None:
        """Run every protocol's ``on_start`` hook once."""
        if self._started:
            return
        self._started = True
        for pid, protocol in self.protocols.items():
            if self.is_dormant(pid):
                self._dormant_buffers.setdefault(pid, [])
                self.scheduler.schedule_at(
                    self._start_times[pid], lambda pid=pid: self._wake(pid)
                )
            elif hasattr(protocol, "on_start"):
                self._execute_commands(pid, protocol.on_start())

    def _wake(self, pid: int) -> None:
        """Run a delayed-start process's hooks and replay its buffer."""
        if pid in self._crashed:
            return
        protocol = self.protocols[pid]
        if hasattr(protocol, "on_start"):
            self._execute_commands(pid, protocol.on_start())
        for sender, message in self._dormant_buffers.pop(pid, []):
            if pid in self._crashed:
                break
            self._execute_commands(pid, protocol.on_message(sender, message))

    def broadcast(self, pid: int, payload: bytes, bid: int = 0) -> None:
        """Have process ``pid`` initiate a broadcast at the current time.

        A delayed-start process broadcasts right after it wakes up instead.
        """
        self.start()
        if pid in self._crashed:
            return
        protocol = self.protocols[pid]
        if self.is_dormant(pid):
            # The wake-up event is already queued at the same timestamp with
            # a smaller sequence number, so on_start runs first.
            self.scheduler.schedule_at(
                self._start_times[pid],
                lambda: None
                if pid in self._crashed
                else self._execute_commands(pid, protocol.broadcast(payload, bid)),
            )
            return
        self._execute_commands(pid, protocol.broadcast(payload, bid))

    def broadcast_at(self, pid: int, payload: bytes, bid: int, time_ms: float) -> None:
        """Schedule a broadcast by ``pid`` at absolute simulated ``time_ms``.

        A past (or current) timestamp broadcasts immediately; otherwise
        the initiation is queued on the scheduler, so sensor-style
        workloads interleave with in-flight traffic of earlier
        broadcasts.  Crash and dormancy semantics are those of
        :meth:`broadcast` evaluated at initiation time — a source that
        crashed before ``time_ms`` never broadcasts.
        """
        self.start()
        if pid not in self.protocols:
            raise ConfigurationError(f"cannot broadcast from unknown process {pid}")
        if time_ms <= self.scheduler.now:
            self.broadcast(pid, payload, bid)
        else:
            self.scheduler.schedule_at(
                time_ms, lambda: self.broadcast(pid, payload, bid)
            )

    def run(
        self,
        *,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> RunMetrics:
        """Run the simulation until no message is in flight.

        Returns the frozen metrics of the run.  ``max_events`` guards
        against unbounded message storms (see
        :class:`~repro.network.simulation.scheduler.EventScheduler`).
        """
        self.start()
        self.scheduler.run(max_time=max_time, max_events=max_events)
        self.collector.record_time(self.scheduler.now)
        self._collect_state_sizes()
        return self.collector.snapshot()

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------
    def _execute_commands(self, pid: int, commands: Iterable[Command]) -> None:
        if pid in self._crashed:
            return
        for command in commands:
            if pid in self._crashed:
                # An adaptive trigger crashed the process while this
                # command batch was executing: the remaining commands
                # are suppressed, exactly like the asyncio runtime.
                return
            if isinstance(command, SendTo):
                self._execute_send(pid, command)
            elif isinstance(command, BRBDeliver):
                self._execute_delivery(pid, command)
            elif isinstance(command, RCDeliver):
                self._execute_rc_delivery(pid, command)
            else:  # pragma: no cover - defensive
                raise RuntimeAbort(f"unknown command {command!r} from process {pid}")

    def _link_dropped(self, u: int, v: int, time: float) -> bool:
        windows = self._link_drops.get((min(u, v), max(u, v)))
        if not windows:
            return False
        return any(
            start <= time and (end is None or time < end) for start, end in windows
        )

    def _execute_send(self, sender: int, command: SendTo) -> None:
        dest = command.dest
        if not self.topology.has_edge(sender, dest):
            raise RuntimeAbort(
                f"process {sender} tried to send to {dest} without a channel"
            )
        size = self.collector.record_send(self.scheduler.now, sender, dest, command.message)
        outcome = self.delay_model.sample_event(
            self.rng, sender, dest, size, self.scheduler.now
        )
        message = command.message
        dropped = outcome is DROP or self._link_dropped(
            sender, dest, self.scheduler.now
        )
        delay = 0.0 if outcome is DROP else outcome

        def deliver() -> None:
            if dest in self._crashed:
                return
            if self.is_dormant(dest):
                self._dormant_buffers.setdefault(dest, []).append((sender, message))
                return
            protocol = self.protocols[dest]
            self._execute_commands(dest, protocol.on_message(sender, message))

        if self.shared_bandwidth_bps is not None:
            # Serialize the message through the shared medium before the
            # propagation delay starts.  A message lost to a link-drop
            # window or the lossy delay model still left the NIC, so it
            # occupies the medium too.
            start = max(self.scheduler.now, self._medium_free_at)
            transmission_ms = (size * 8.0 / self.shared_bandwidth_bps) * 1000.0
            self._medium_free_at = start + transmission_ms
            arrival = self._medium_free_at + delay
            if dropped:
                self.dropped_messages += 1
            else:
                self.scheduler.schedule_at(arrival, deliver)
        else:
            if dropped:
                self.dropped_messages += 1
            else:
                self.scheduler.schedule(delay, deliver)
        # Observed last: the message is on the wire (or provably lost)
        # before an adaptive adversary may react to it, so a triggered
        # crash of the sender cannot retract this transmission.
        self._notify(
            Observation(
                kind="send",
                time_ms=self.scheduler.now,
                pid=sender,
                dest=dest,
                mtype=message_type_name(message),
                source=getattr(message, "source", None),
                bid=getattr(message, "bid", None),
            )
        )

    def _execute_delivery(self, pid: int, command: BRBDeliver) -> None:
        self.collector.record_delivery(
            self.scheduler.now, pid, command.source, command.bid, command.payload
        )
        if self.on_deliver is not None:
            self.on_deliver(pid, command, self.scheduler.now)
        self._notify(
            Observation(
                kind="deliver",
                time_ms=self.scheduler.now,
                pid=pid,
                source=command.source,
                bid=command.bid,
            )
        )

    def _execute_rc_delivery(self, pid: int, command: RCDeliver) -> None:
        source = command.source if command.source is not None else -1
        payload = command.payload if isinstance(command.payload, bytes) else b""
        self.collector.record_delivery(self.scheduler.now, pid, source, 0, payload)
        self._notify(
            Observation(
                kind="deliver",
                time_ms=self.scheduler.now,
                pid=pid,
                source=source,
                bid=0,
            )
        )

    def _notify(self, observation: Observation) -> None:
        if self.observer is not None:
            self.observer(observation)

    def _collect_state_sizes(self) -> None:
        for pid, protocol in self.protocols.items():
            estimator = getattr(protocol, "state_size_estimate", None)
            if callable(estimator):
                self.collector.record_state_size(pid, estimator())


__all__ = ["SimulatedNetwork"]
