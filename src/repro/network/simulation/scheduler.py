"""Minimal deterministic discrete-event scheduler.

Events are ``(time, sequence, callback)`` triples kept in a binary heap.
Ties on the timestamp are broken by insertion order, which makes a run
fully deterministic for a given seed and topology — a property the
reproducibility tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional, Tuple

from repro.core.errors import RuntimeAbort


class EventScheduler:
    """Priority queue of timed callbacks with a virtual clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        #: Number of events executed so far.
        self.executed_events = 0

    @property
    def now(self) -> float:
        """Current virtual time (milliseconds by convention)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled events not yet executed."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if math.isnan(delay):
            # ``NaN < 0`` is False, so without this check a NaN timestamp
            # would enter the heap and corrupt its ordering invariant.
            raise ValueError("cannot schedule an event with a NaN delay")
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute virtual time ``time``."""
        if math.isnan(time):
            raise ValueError("cannot schedule an event at a NaN time")
        if time < self._now:
            raise ValueError(f"cannot schedule at {time}, current time is {self._now}")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def run(
        self,
        *,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Execute events in timestamp order until the queue drains.

        Parameters
        ----------
        max_time:
            Stop (leaving later events unexecuted) once the clock would
            pass this value.
        max_events:
            Abort with :class:`RuntimeAbort` after this many events; a
            guard against protocol bugs producing infinite message storms.
        """
        while self._queue:
            time, _, callback = self._queue[0]
            if max_time is not None and time > max_time:
                break
            heapq.heappop(self._queue)
            self._now = time
            self.executed_events += 1
            if max_events is not None and self.executed_events > max_events:
                raise RuntimeAbort(
                    f"simulation exceeded {max_events} events; "
                    "the protocol is probably flooding the network"
                )
            callback()
        return self._now


__all__ = ["EventScheduler"]
