"""Minimal deterministic discrete-event scheduler.

Events are kept in timestamp buckets: a heap orders the distinct
timestamps and a dict maps each timestamp to the list of ``(callback,
args)`` pairs scheduled for it, in insertion order.  Draining a bucket
in place preserves the original contract — ties on the timestamp run in
insertion order, including events a callback schedules for the current
timestamp while the bucket is executing — which makes a run fully
deterministic for a given seed and topology, a property the
reproducibility tests rely on.

Compared to the earlier one-heap-entry-per-event layout this removes the
per-event heap churn and sequence counter from the hot path: a burst of
same-timestamp deliveries (the common case under fixed link delays)
costs one heap push however many messages it carries.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import RuntimeAbort


class EventScheduler:
    """Priority queue of timed callbacks with a virtual clock."""

    __slots__ = ("_times", "_buckets", "now", "executed_events")

    def __init__(self) -> None:
        # Heap of timestamps; one entry per *distinct* pending timestamp
        # (re-pushed if a bucket is re-created after its drain started).
        self._times: List[float] = []
        # Timestamp -> events scheduled for it, in insertion order.  A
        # bucket holding exactly one event is stored as the bare
        # ``(callback, args)`` pair — under unique arrival timestamps
        # (e.g. shared-bandwidth serialization) every bucket is a
        # singleton, and skipping the one-element list saves an
        # allocation and the iteration setup per event.  A second event
        # for the same timestamp promotes the bucket to a list.
        self._buckets: Dict[float, object] = {}
        #: Current virtual time (milliseconds by convention).  A plain
        #: attribute, not a property: the runtime reads it once per send.
        self.now = 0.0
        #: Number of events executed over the scheduler's lifetime.
        self.executed_events = 0

    @property
    def pending(self) -> int:
        """Number of scheduled events not yet executed.

        Derived from the buckets on demand: keeping a counter accurate
        costs two attribute updates per event in the hot loop, while this
        property is only read between runs.
        """
        return sum(
            len(bucket) if type(bucket) is list else 1
            for bucket in self._buckets.values()
        )

    def schedule(self, delay: float, callback: Callable[..., None], *args) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay != delay:
            # NaN (the only value unequal to itself): ``NaN < 0`` is False,
            # so without this check a NaN timestamp would enter the heap
            # and corrupt its ordering invariant.
            raise ValueError("cannot schedule an event with a NaN delay")
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        time = self.now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = (callback, args)
            heappush(self._times, time)
        elif type(bucket) is list:
            bucket.append((callback, args))
        else:
            self._buckets[time] = [bucket, (callback, args)]

    def schedule_at(self, time: float, callback: Callable[..., None], *args) -> None:
        """Schedule ``callback(*args)`` to run at absolute virtual time ``time``."""
        if time != time:
            raise ValueError("cannot schedule an event at a NaN time")
        if time < self.now:
            raise ValueError(f"cannot schedule at {time}, current time is {self.now}")
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = (callback, args)
            heappush(self._times, time)
        elif type(bucket) is list:
            bucket.append((callback, args))
        else:
            self._buckets[time] = [bucket, (callback, args)]

    def run(
        self,
        *,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Execute events in timestamp order until the queue drains.

        Parameters
        ----------
        max_time:
            Stop (leaving later events unexecuted) once the clock would
            pass this value.
        max_events:
            Abort with :class:`RuntimeAbort` after this many events of
            *this call* (resumed runs get a fresh budget); a guard
            against protocol bugs producing infinite message storms.
        """
        times = self._times
        buckets = self._buckets
        budget = math.inf if max_events is None else max_events
        stop_after = math.inf if max_time is None else max_time
        executed = 0
        while times:
            time = heappop(times)
            if time > stop_after:
                # Not executed: put the timestamp back for a resumed run.
                heappush(times, time)
                break
            self.now = time
            # The bucket is removed from the dict before draining: a
            # callback scheduling for this same timestamp creates a fresh
            # bucket (re-pushing the timestamp), which drains right after
            # this one — the same all-current-then-new insertion order the
            # live-append layout produced, with one dict op less per
            # bucket in the common no-reentry case.
            bucket = buckets.pop(time)
            if type(bucket) is not list:
                # Singleton bucket (the dominant case when every arrival
                # timestamp is distinct).  Consumed-on-abort semantics
                # match the list path: the event is counted and removed
                # whether or not its callback completes, and a same-time
                # bucket opened by the callback is already queued.
                executed += 1
                if executed > budget:
                    self.executed_events += executed
                    raise RuntimeAbort(
                        f"simulation exceeded {max_events} events; "
                        "the protocol is probably flooding the network"
                    )
                callback, args = bucket
                try:
                    callback(*args)
                except BaseException:
                    self.executed_events += executed
                    raise
                continue
            i = 0
            try:
                # Plain iteration: the popped bucket can no longer grow
                # (same-time events scheduled by a callback open a fresh
                # bucket), so no live re-reading of the length is needed.
                for callback, args in bucket:
                    i += 1
                    executed += 1
                    if executed > budget:
                        raise RuntimeAbort(
                            f"simulation exceeded {max_events} events; "
                            "the protocol is probably flooding the network"
                        )
                    callback(*args)
            except BaseException:
                # The event at ``i - 1`` was consumed (popped and counted,
                # like the pre-bucket scheduler); everything after it
                # stays pending for inspection or a resumed run, ahead of
                # any same-timestamp events scheduled during this drain.
                self.executed_events += executed
                del bucket[:i]
                reentered = buckets.get(time)
                if reentered is not None:
                    if type(reentered) is list:
                        bucket.extend(reentered)
                    else:
                        bucket.append(reentered)
                    buckets[time] = bucket
                elif bucket:
                    buckets[time] = bucket
                    heappush(times, time)
                raise
        self.executed_events += executed
        return self.now


__all__ = ["EventScheduler"]
