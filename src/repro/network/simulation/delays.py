"""Link-delay models reproducing the paper's network settings (Sec. 7.1).

The paper emulates synchronous networks by delaying every message by a
fixed 50 ms and asynchronous networks by drawing per-message delays from
a Normal(50, 50) ms distribution (negative samples are clipped), which
frequently reorders messages in flight.

Beyond the paper's reliable links, the lossy family models unreliable
networks: :class:`LossyDelay` loses each message independently with a
fixed probability and :class:`BurstyLossWindow` loses messages during
periodic outage bursts.  A lossy model's :meth:`DelayModel.sample_event`
may return the :data:`DROP` sentinel instead of a delay, which the
hosting runtime honours by never delivering the message (its bytes are
still charged to the sender — the transmission left the NIC).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Union


class _DropSentinel:
    """Singleton marker a lossy delay model returns instead of a delay."""

    _instance = None

    def __new__(cls) -> "_DropSentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "DROP"

    def __reduce__(self) -> str:
        # Pickle resolves the module-level name, preserving identity
        # (``is DROP``) across process boundaries.
        return "DROP"


#: Returned by :meth:`DelayModel.sample_event` to mean "this message is
#: lost in transit".  Compare with ``is``.
DROP = _DropSentinel()

#: What :meth:`DelayModel.sample_event` returns: a delay in milliseconds
#: or the :data:`DROP` sentinel.
DelayOutcome = Union[float, _DropSentinel]


class DelayModel(abc.ABC):
    """Per-message link delay distribution."""

    @abc.abstractmethod
    def sample(self, rng: random.Random, sender: int, dest: int, size_bytes: int) -> float:
        """Delay (in milliseconds) applied to one message on one link."""

    def sample_event(
        self,
        rng: random.Random,
        sender: int,
        dest: int,
        size_bytes: int,
        time_ms: float,
    ) -> DelayOutcome:
        """Delay for one message, or :data:`DROP` to lose it.

        ``time_ms`` is the simulated send time, which time-dependent loss
        models (bursty outages) key on.  The lossless base models simply
        delegate to :meth:`sample`, so existing subclasses keep working
        — and keep their RNG consumption byte-identical — without
        overriding anything.
        """
        return self.sample(rng, sender, dest, size_bytes)

    @property
    def lossy(self) -> bool:
        """Whether :meth:`sample_event` may ever return :data:`DROP`."""
        return False

    def describe(self) -> str:
        """Short human-readable description used in benchmark reports."""
        return type(self).__name__


@dataclass(frozen=True)
class FixedDelay(DelayModel):
    """Constant per-message delay — the paper's synchronous setting."""

    delay_ms: float = 50.0

    def sample(self, rng: random.Random, sender: int, dest: int, size_bytes: int) -> float:
        return self.delay_ms

    def describe(self) -> str:
        return f"synchronous({self.delay_ms:g} ms)"


@dataclass(frozen=True)
class AsynchronousDelay(DelayModel):
    """Normally distributed delay — the paper's asynchronous setting.

    Delays are drawn from Normal(``mean_ms``, ``std_ms``) and clipped to a
    small positive minimum so that causality is preserved.
    """

    mean_ms: float = 50.0
    std_ms: float = 50.0
    min_ms: float = 0.1

    def sample(self, rng: random.Random, sender: int, dest: int, size_bytes: int) -> float:
        return max(self.min_ms, rng.gauss(self.mean_ms, self.std_ms))

    def describe(self) -> str:
        return f"asynchronous(N({self.mean_ms:g}, {self.std_ms:g}) ms)"


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Uniformly distributed delay, used by some robustness tests."""

    low_ms: float = 10.0
    high_ms: float = 100.0

    def sample(self, rng: random.Random, sender: int, dest: int, size_bytes: int) -> float:
        return rng.uniform(self.low_ms, self.high_ms)

    def describe(self) -> str:
        return f"uniform([{self.low_ms:g}, {self.high_ms:g}] ms)"


@dataclass(frozen=True)
class BandwidthAwareDelay(DelayModel):
    """Adds a serialization term proportional to the message size.

    Models the 1 Gb/s bandwidth cap the paper applies with ``netem``: a
    message of ``size_bytes`` takes ``size_bytes * 8 / rate_bps`` seconds
    to serialize on the link, on top of a base propagation delay.
    """

    base: DelayModel = FixedDelay(50.0)
    rate_bps: float = 1e9

    def sample(self, rng: random.Random, sender: int, dest: int, size_bytes: int) -> float:
        serialization_ms = (size_bytes * 8.0 / self.rate_bps) * 1000.0
        return self.base.sample(rng, sender, dest, size_bytes) + serialization_ms

    def describe(self) -> str:
        return f"{self.base.describe()}+{self.rate_bps / 1e9:g}Gb/s"


@dataclass(frozen=True)
class LossyDelay(DelayModel):
    """Loses each message independently with ``loss_probability``.

    Surviving messages are delayed by the wrapped ``base`` model.  The
    loss draw comes from the same seeded RNG as the delays, so for a
    fixed scenario seed the exact set of lost messages is deterministic
    — the property the sweep executors' equality contract relies on.
    """

    base: DelayModel = FixedDelay(50.0)
    loss_probability: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be within [0, 1], got {self.loss_probability}"
            )

    def sample(self, rng: random.Random, sender: int, dest: int, size_bytes: int) -> float:
        return self.base.sample(rng, sender, dest, size_bytes)

    def sample_event(
        self,
        rng: random.Random,
        sender: int,
        dest: int,
        size_bytes: int,
        time_ms: float,
    ) -> DelayOutcome:
        if rng.random() < self.loss_probability:
            return DROP
        return self.base.sample_event(rng, sender, dest, size_bytes, time_ms)

    @property
    def lossy(self) -> bool:
        return self.loss_probability > 0.0

    def describe(self) -> str:
        return f"lossy({self.loss_probability:g})+{self.base.describe()}"


@dataclass(frozen=True)
class BurstyLossWindow(DelayModel):
    """Periodic outage bursts: messages sent inside a burst are lost.

    Every ``period_ms`` the link enters a burst lasting ``burst_ms``
    (phase-shifted by ``offset_ms``); a message whose send time falls
    inside a burst is lost with ``loss_probability`` (default 1.0 — a
    hard outage, which consumes no RNG and therefore leaves the delay
    stream of the surviving messages untouched).  Models the correlated
    loss real networks exhibit, as opposed to the independent loss of
    :class:`LossyDelay`.
    """

    base: DelayModel = FixedDelay(50.0)
    period_ms: float = 500.0
    burst_ms: float = 50.0
    offset_ms: float = 0.0
    loss_probability: float = 1.0

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError(f"period_ms must be positive, got {self.period_ms}")
        if not 0.0 <= self.burst_ms <= self.period_ms:
            raise ValueError(
                f"burst_ms must be within [0, period_ms], got {self.burst_ms}"
            )
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be within [0, 1], got {self.loss_probability}"
            )

    def in_burst(self, time_ms: float) -> bool:
        """Whether a message sent at ``time_ms`` falls inside a burst."""
        return (time_ms - self.offset_ms) % self.period_ms < self.burst_ms

    def sample(self, rng: random.Random, sender: int, dest: int, size_bytes: int) -> float:
        return self.base.sample(rng, sender, dest, size_bytes)

    def sample_event(
        self,
        rng: random.Random,
        sender: int,
        dest: int,
        size_bytes: int,
        time_ms: float,
    ) -> DelayOutcome:
        if self.burst_ms > 0 and self.in_burst(time_ms):
            if self.loss_probability >= 1.0 or rng.random() < self.loss_probability:
                return DROP
        return self.base.sample_event(rng, sender, dest, size_bytes, time_ms)

    @property
    def lossy(self) -> bool:
        return self.burst_ms > 0 and self.loss_probability > 0.0

    def describe(self) -> str:
        return (
            f"bursty({self.burst_ms:g}/{self.period_ms:g} ms)"
            f"+{self.base.describe()}"
        )


__all__ = [
    "DROP",
    "DelayModel",
    "DelayOutcome",
    "FixedDelay",
    "AsynchronousDelay",
    "UniformDelay",
    "BandwidthAwareDelay",
    "LossyDelay",
    "BurstyLossWindow",
]
