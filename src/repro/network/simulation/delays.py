"""Link-delay models reproducing the paper's network settings (Sec. 7.1).

The paper emulates synchronous networks by delaying every message by a
fixed 50 ms and asynchronous networks by drawing per-message delays from
a Normal(50, 50) ms distribution (negative samples are clipped), which
frequently reorders messages in flight.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass


class DelayModel(abc.ABC):
    """Per-message link delay distribution."""

    @abc.abstractmethod
    def sample(self, rng: random.Random, sender: int, dest: int, size_bytes: int) -> float:
        """Delay (in milliseconds) applied to one message on one link."""

    def describe(self) -> str:
        """Short human-readable description used in benchmark reports."""
        return type(self).__name__


@dataclass(frozen=True)
class FixedDelay(DelayModel):
    """Constant per-message delay — the paper's synchronous setting."""

    delay_ms: float = 50.0

    def sample(self, rng: random.Random, sender: int, dest: int, size_bytes: int) -> float:
        return self.delay_ms

    def describe(self) -> str:
        return f"synchronous({self.delay_ms:g} ms)"


@dataclass(frozen=True)
class AsynchronousDelay(DelayModel):
    """Normally distributed delay — the paper's asynchronous setting.

    Delays are drawn from Normal(``mean_ms``, ``std_ms``) and clipped to a
    small positive minimum so that causality is preserved.
    """

    mean_ms: float = 50.0
    std_ms: float = 50.0
    min_ms: float = 0.1

    def sample(self, rng: random.Random, sender: int, dest: int, size_bytes: int) -> float:
        return max(self.min_ms, rng.gauss(self.mean_ms, self.std_ms))

    def describe(self) -> str:
        return f"asynchronous(N({self.mean_ms:g}, {self.std_ms:g}) ms)"


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Uniformly distributed delay, used by some robustness tests."""

    low_ms: float = 10.0
    high_ms: float = 100.0

    def sample(self, rng: random.Random, sender: int, dest: int, size_bytes: int) -> float:
        return rng.uniform(self.low_ms, self.high_ms)

    def describe(self) -> str:
        return f"uniform([{self.low_ms:g}, {self.high_ms:g}] ms)"


@dataclass(frozen=True)
class BandwidthAwareDelay(DelayModel):
    """Adds a serialization term proportional to the message size.

    Models the 1 Gb/s bandwidth cap the paper applies with ``netem``: a
    message of ``size_bytes`` takes ``size_bytes * 8 / rate_bps`` seconds
    to serialize on the link, on top of a base propagation delay.
    """

    base: DelayModel = FixedDelay(50.0)
    rate_bps: float = 1e9

    def sample(self, rng: random.Random, sender: int, dest: int, size_bytes: int) -> float:
        serialization_ms = (size_bytes * 8.0 / self.rate_bps) * 1000.0
        return self.base.sample(rng, sender, dest, size_bytes) + serialization_ms

    def describe(self) -> str:
        return f"{self.base.describe()}+{self.rate_bps / 1e9:g}Gb/s"


__all__ = [
    "DelayModel",
    "FixedDelay",
    "AsynchronousDelay",
    "UniformDelay",
    "BandwidthAwareDelay",
]
