"""Length-prefixed frame codec shared by every asyncio wire protocol.

One frame is a big-endian ``u32`` byte count followed by that many
payload bytes.  The codec was born inside :class:`AsyncioNode` for the
node↔node protocol channels; the distributed sweep executor
(:mod:`repro.runner.distributed`) speaks the same framing for its
coordinator↔worker messages, so the extraction lives here where both
sides can import it without duplicating wire code.

The first frame of a node↔node connection is a fixed-size HELLO carrying
the dialing process identifier (:data:`HELLO`); higher-level protocols
such as the sweep wire format put their own tagged envelope inside
ordinary frames instead (see :mod:`repro.runner.wire`).

Truncation surfaces as :class:`asyncio.IncompleteReadError` from
:func:`read_frame` — a peer that dies mid-frame looks exactly like a
peer that closed the connection, and every reader already handles that.
A length prefix above :data:`MAX_FRAME_BYTES` raises :class:`FrameError`
instead of attempting a multi-gigabyte allocation on a corrupt or
hostile prefix.
"""

from __future__ import annotations

import asyncio
import struct

from repro.core.errors import ReproError

#: Big-endian u32 length prefix, one per frame.
LENGTH = struct.Struct(">I")

#: First frame of a node↔node connection: the dialing process id.
HELLO = struct.Struct(">I")

#: Refuse frames above this size (a corrupt length prefix otherwise
#: turns into an absurd allocation).  The largest legitimate payloads —
#: pickled :class:`~repro.scenarios.engine.ScenarioResult` snapshots with
#: full metrics — are a few megabytes at paper scale.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(ReproError):
    """A frame violated the framing layer (oversized or malformed)."""


def encode_frame(payload: bytes) -> bytes:
    """``payload`` as one length-prefixed frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return LENGTH.pack(len(payload)) + payload


def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Queue one frame on ``writer`` (call ``await writer.drain()`` after)."""
    writer.write(encode_frame(payload))


async def read_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one frame's payload.

    Raises :class:`asyncio.IncompleteReadError` when the peer closes or
    dies mid-frame and :class:`FrameError` on an oversized length prefix.
    """
    header = await reader.readexactly(LENGTH.size)
    (length,) = LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame prefix announces {length} bytes, above the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return await reader.readexactly(length)


__all__ = [
    "LENGTH",
    "HELLO",
    "MAX_FRAME_BYTES",
    "FrameError",
    "encode_frame",
    "write_frame",
    "read_frame",
]
