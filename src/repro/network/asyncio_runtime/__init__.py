"""Real-socket runtime: the protocols over asyncio TCP transports.

The discrete-event simulation is used for every benchmark; this runtime
demonstrates that the very same sans-io protocol objects also run over
real TCP connections, as the paper's C++ implementation does with the
Salticidae library.  Peers connect over localhost, frame messages with a
length prefix, encode them with :mod:`repro.core.encoding`, and treat the
connection identity as the authenticated-link sender identity.
"""

from repro.network.asyncio_runtime.framing import (
    MAX_FRAME_BYTES,
    FrameError,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.network.asyncio_runtime.node import AsyncioNode
from repro.network.asyncio_runtime.cluster import AsyncioCluster

__all__ = [
    "AsyncioNode",
    "AsyncioCluster",
    "FrameError",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "read_frame",
    "write_frame",
]
