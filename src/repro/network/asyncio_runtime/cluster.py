"""Convenience helper running a whole cluster of asyncio nodes in-process.

Used by the integration tests and the ``asyncio_cluster.py`` example: it
builds one protocol per process of a topology, wires the TCP connections
on localhost and exposes a small broadcast-and-wait API.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.config import SystemConfig
from repro.network.asyncio_runtime.node import AsyncioNode
from repro.topology.generators import Topology

ProtocolBuilder = Callable[[int, SystemConfig, Iterable[int]], object]


class AsyncioCluster:
    """A set of :class:`AsyncioNode` instances over one topology."""

    def __init__(
        self,
        topology: Topology,
        config: SystemConfig,
        builder: ProtocolBuilder,
        *,
        port_base: int = 9600,
        host: str = "127.0.0.1",
    ) -> None:
        self.topology = topology
        self.config = config
        self.nodes: Dict[int, AsyncioNode] = {}
        for pid in topology.nodes:
            protocol = builder(pid, config, sorted(topology.neighbors(pid)))
            self.nodes[pid] = AsyncioNode(protocol, host=host, port_base=port_base)

    async def start(self) -> None:
        """Start every node and establish all neighbor connections."""
        for node in self.nodes.values():
            await node.start()
        await asyncio.gather(*(node.connect_neighbors() for node in self.nodes.values()))
        # Give inbound registrations a moment to settle.
        await asyncio.sleep(0.05)

    async def stop(self) -> None:
        """Shut every node down."""
        await asyncio.gather(*(node.stop() for node in self.nodes.values()))

    async def broadcast(self, source: int, payload: bytes, bid: int = 0) -> None:
        """Broadcast ``payload`` from ``source``."""
        await self.nodes[source].broadcast(payload, bid)

    async def wait_for_all_deliveries(
        self, *, count: int = 1, timeout: float = 30.0, processes: Optional[List[int]] = None
    ) -> bool:
        """Wait until every listed process delivered ``count`` broadcasts."""
        targets = processes if processes is not None else list(self.nodes)
        results = await asyncio.gather(
            *(self.nodes[pid].wait_for_delivery(count, timeout) for pid in targets)
        )
        return all(results)

    def delivered_payloads(self, pid: int) -> List[bytes]:
        """Payloads delivered by process ``pid`` so far."""
        return [delivery.payload for delivery in self.nodes[pid].deliveries]


__all__ = ["AsyncioCluster"]
