"""Convenience helper running a whole cluster of asyncio nodes in-process.

Used by the integration tests, the ``asyncio_cluster.py`` example and the
scenario engine's :class:`~repro.scenarios.backends.AsyncioBackend`: it
builds one protocol per process of a topology (or hosts prebuilt
instances), wires the TCP connections on localhost and exposes a small
broadcast-and-wait API.

Startup is deterministic: every node binds an ephemeral port, the actual
ports are exchanged through a port map, and :meth:`AsyncioCluster.start`
returns only once the readiness barrier saw every node hold a channel to
every declared neighbor — there is no fixed settle sleep, so slow CI
machines simply take marginally longer instead of flaking.

Scenario fault events translate into cluster-level runtime actions:
:meth:`crash`/:meth:`schedule_crash`, :meth:`add_link_drop_window` and
:meth:`delay_start`.  Timed actions are armed relative to the *epoch*
(:meth:`open_epoch`), the instant the broadcast workload begins.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.network.asyncio_runtime.node import AsyncioNode
from repro.topology.generators import Topology

ProtocolBuilder = Callable[[int, SystemConfig, Iterable[int]], object]


class AsyncioCluster:
    """A set of :class:`AsyncioNode` instances over one topology.

    Parameters
    ----------
    builder:
        Either a callable ``(pid, config, neighbors) -> protocol`` or a
        ready-made mapping ``pid -> protocol`` (the scenario backend
        builds adversary-wrapped instances up front).
    port_base:
        ``None`` (default) uses ephemeral ports exchanged via a port
        map; an integer restores the legacy fixed ``port_base + pid``
        layout.
    collector:
        Optional metrics collector shared by every node.
    """

    def __init__(
        self,
        topology: Topology,
        config: SystemConfig,
        builder: Union[ProtocolBuilder, Mapping[int, object]],
        *,
        port_base: Optional[int] = None,
        host: str = "127.0.0.1",
        collector: Optional[MetricsCollector] = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.collector = collector
        self.nodes: Dict[int, AsyncioNode] = {}
        for pid in topology.nodes:
            if isinstance(builder, Mapping):
                protocol = builder[pid]
            else:
                protocol = builder(pid, config, sorted(topology.neighbors(pid)))
            self.nodes[pid] = AsyncioNode(
                protocol, host=host, port_base=port_base, collector=collector
            )
        self.epoch: Optional[float] = None
        # (delay_s, thunk) actions armed when the epoch opens.
        self._pending_actions: List[Tuple[float, Callable[[], None]]] = []
        self._timers: List[asyncio.TimerHandle] = []
        self._action_tasks: List[asyncio.Task] = []
        # pid -> actual listening port, filled by start(); churn rewires
        # need it to dial new links mid-run.
        self._port_map: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, *, connect_timeout: float = 10.0) -> None:
        """Start every node and establish all neighbor connections.

        Returns once the readiness barrier passed: every node holds a
        channel to each of its declared neighbors (dialed or accepted),
        after which each live node runs its ``on_start`` hook.
        """
        for node in self.nodes.values():
            await node.start()
        port_map = {pid: node.port for pid, node in self.nodes.items()}
        self._port_map = port_map
        await asyncio.gather(
            *(node.connect_neighbors(port_map) for node in self.nodes.values())
        )
        await asyncio.gather(
            *(
                node.wait_until_connected(
                    set(self.topology.neighbors(pid)), timeout=connect_timeout
                )
                for pid, node in self.nodes.items()
            )
        )
        for node in self.nodes.values():
            await node.run_on_start()

    async def stop(self) -> None:
        """Cancel armed timers and shut every node down."""
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        for task in self._action_tasks:
            task.cancel()
        self._action_tasks.clear()
        await asyncio.gather(*(node.stop() for node in self.nodes.values()))

    # ------------------------------------------------------------------
    # Runtime actions (scenario fault events)
    # ------------------------------------------------------------------
    def crash(self, pid: int) -> None:
        """Crash ``pid`` immediately (fail-silent from now on)."""
        self._node(pid).crash()

    def schedule_crash(self, pid: int, at_s: float) -> None:
        """Crash ``pid`` at ``at_s`` seconds after the epoch opens.

        ``at_s <= 0`` crashes right away — before the workload starts —
        matching the simulator's crash-at-time-0 semantics.
        """
        node = self._node(pid)
        if at_s <= 0:
            node.crash()
        else:
            self._pending_actions.append((at_s, node.crash))

    def add_link_drop_window(
        self, u: int, v: int, start_s: float, end_s: Optional[float] = None
    ) -> None:
        """Drop every message on the ``{u, v}`` link during the window.

        Installed symmetrically as outgoing drop filters on both
        endpoints; times are seconds relative to the epoch.
        """
        if not self.topology.has_edge(u, v):
            raise ConfigurationError(f"no link between {u} and {v} to drop")
        if end_s is not None and end_s < start_s:
            raise ConfigurationError(
                f"link-drop window ends before it starts ({start_s}, {end_s})"
            )
        self._node(u).add_drop_window(v, start_s, end_s)
        self._node(v).add_drop_window(u, start_s, end_s)

    def delay_start(self, pid: int, wake_s: float) -> None:
        """Keep ``pid`` dormant until ``wake_s`` seconds after the epoch."""
        node = self._node(pid)
        node.delay_start()
        self._pending_actions.append(
            (wake_s, lambda: self._spawn(node.wake()))
        )

    def join_at(self, pid: int, wake_s: float) -> None:
        """Process ``pid`` joins ``wake_s`` seconds after the epoch.

        Until then the node is a drop-dormant non-member: inbound
        messages are lost (the simulator's JoinAt semantics), and the
        ``on_start`` hook runs at the join instead of cluster start.
        """
        node = self._node(pid)
        node.join_late()
        self._pending_actions.append((wake_s, lambda: self._spawn(node.wake())))

    def leave(self, pid: int) -> None:
        """Process ``pid`` leaves now: fail-silent plus link teardown.

        Every ``{pid, peer}`` channel is severed on both endpoints, so
        later sends toward the departed process are lost on a missing
        channel rather than reaching a dead inbox.
        """
        node = self._node(pid)
        node.crash()
        for peer in self.topology.neighbors(pid):
            node.disconnect_peer(peer)
            self.nodes[peer].disconnect_peer(pid)

    def schedule_leave(self, pid: int, at_s: float) -> None:
        """Have ``pid`` leave ``at_s`` seconds after the epoch opens."""
        self._node(pid)
        self._pending_actions.append((at_s, lambda: self.leave(pid)))

    async def rewire_link(self, pid: int, old_peer: int, new_peer: int) -> None:
        """Replace the ``{pid, old_peer}`` channel with ``{pid, new_peer}``.

        The old channel is severed on both endpoints; both ends of the
        new link accept each other and ``pid`` dials ``new_peer`` using
        the port map exchanged at startup.
        """
        self._node(pid).disconnect_peer(old_peer)
        self._node(old_peer).disconnect_peer(pid)
        self._node(pid).allow_peer(new_peer)
        self._node(new_peer).allow_peer(pid)
        await self._node(pid).dial_peer(new_peer, self._port_map[new_peer])

    def schedule_rewire(
        self, pid: int, old_peer: int, new_peer: int, at_s: float
    ) -> None:
        """Arm a :meth:`rewire_link` ``at_s`` seconds after the epoch."""
        if not self.topology.has_edge(pid, old_peer):
            raise ConfigurationError(
                f"no link between {pid} and {old_peer} to rewire"
            )
        for node in (pid, old_peer, new_peer):
            self._node(node)
        self._pending_actions.append(
            (at_s, lambda: self._spawn(self.rewire_link(pid, old_peer, new_peer)))
        )

    def add_loss_filter(self, u: int, v: int, probability: float, seed: int) -> None:
        """Lose messages on the ``{u, v}`` link with ``probability``.

        Installed symmetrically as outgoing loss filters on both
        endpoints; each direction draws from its own RNG derived from
        ``seed``, mirroring the scenario engine's lossy delay models.
        """
        if not self.topology.has_edge(u, v):
            raise ConfigurationError(f"no link between {u} and {v} to lose on")
        self._node(u).add_loss_filter(v, probability, seed)
        self._node(v).add_loss_filter(u, probability, seed ^ 0x5DEECE66D)

    def add_periodic_drop_window(
        self, u: int, v: int, period_s: float, burst_s: float, offset_s: float = 0.0
    ) -> None:
        """Lose messages on the ``{u, v}`` link during periodic bursts."""
        if not self.topology.has_edge(u, v):
            raise ConfigurationError(f"no link between {u} and {v} to drop")
        self._node(u).add_periodic_drop_window(v, period_s, burst_s, offset_s)
        self._node(v).add_periodic_drop_window(u, period_s, burst_s, offset_s)

    def set_observer(self, observer) -> None:
        """Feed every node's send/delivery observations to ``observer``."""
        for node in self.nodes.values():
            node.observer = observer

    def replace_protocol(self, pid: int, protocol: object) -> None:
        """Swap process ``pid``'s protocol instance mid-run."""
        self._node(pid).replace_protocol(protocol)

    def elapsed_s(self) -> float:
        """Seconds since the epoch opened (0.0 before :meth:`open_epoch`)."""
        if self.epoch is None:
            return 0.0
        return asyncio.get_running_loop().time() - self.epoch

    def open_epoch(self) -> None:
        """Anchor the time base and arm the pending timed actions.

        Call right before initiating the workload; immediate actions
        (``delay <= 0``) fire synchronously so a crash at time 0 is
        already effective when the first broadcast happens.
        """
        loop = asyncio.get_running_loop()
        self.epoch = loop.time()
        for node in self.nodes.values():
            node.set_epoch(self.epoch)
        for delay_s, thunk in self._pending_actions:
            if delay_s <= 0:
                thunk()
            else:
                self._timers.append(loop.call_later(delay_s, thunk))
        self._pending_actions.clear()

    def _spawn(self, coroutine) -> None:
        self._action_tasks.append(asyncio.ensure_future(coroutine))

    def _node(self, pid: int) -> AsyncioNode:
        if pid not in self.nodes:
            raise ConfigurationError(f"unknown process {pid}")
        return self.nodes[pid]

    @property
    def dropped_messages(self) -> int:
        """Messages lost to link-drop windows across all nodes."""
        return sum(node.dropped_messages for node in self.nodes.values())

    # ------------------------------------------------------------------
    # Workload API
    # ------------------------------------------------------------------
    async def broadcast(self, source: int, payload: bytes, bid: int = 0) -> None:
        """Broadcast ``payload`` from ``source``."""
        await self.nodes[source].broadcast(payload, bid)

    async def _gather_node_waits(self, wait, processes: Optional[List[int]]) -> bool:
        """Run one per-node wait coroutine over the listed processes."""
        targets = processes if processes is not None else list(self.nodes)
        results = await asyncio.gather(*(wait(self.nodes[pid]) for pid in targets))
        return all(results)

    async def wait_for_all_deliveries(
        self, *, count: int = 1, timeout: float = 30.0, processes: Optional[List[int]] = None
    ) -> bool:
        """Wait until every listed process delivered ``count`` broadcasts."""
        return await self._gather_node_waits(
            lambda node: node.wait_for_delivery(count, timeout), processes
        )

    async def wait_for_deliveries_of(
        self,
        keys: Iterable[Tuple[int, int]],
        *,
        timeout: float = 30.0,
        processes: Optional[List[int]] = None,
    ) -> bool:
        """Wait until every listed process delivered every key in ``keys``.

        Per-broadcast totality: the scenario backend waits on the
        workload's exact ``(source, bid)`` keys, so an unscheduled
        delivery cannot satisfy the wait in place of a scheduled one.
        """
        keys = list(keys)
        return await self._gather_node_waits(
            lambda node: node.wait_for_delivery_of(keys, timeout), processes
        )

    def delivered_payloads(self, pid: int) -> List[bytes]:
        """Payloads delivered by process ``pid`` so far."""
        return [delivery.payload for delivery in self.nodes[pid].deliveries]


__all__ = ["AsyncioCluster"]
