"""A single protocol instance hosted over asyncio TCP connections.

Each node listens on a TCP port and opens one connection per neighbor
with a larger identifier (the lower-id peer always dials, which avoids
duplicate connections).  The first frame on every connection is a HELLO
carrying the dialing node's identifier; afterwards every frame is an
encoded protocol message.  Connections are only accepted from declared
neighbors, mirroring the authenticated-channel assumption.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Dict, Iterable, List, Optional

from repro.core.encoding import decode_message, encode_message
from repro.core.errors import RuntimeAbort
from repro.core.events import BRBDeliver, Command, RCDeliver, SendTo

_LENGTH = struct.Struct(">I")
_HELLO = struct.Struct(">I")


class AsyncioNode:
    """Hosts one sans-io protocol instance over TCP.

    Parameters
    ----------
    protocol:
        Any object implementing the protocol interface (``broadcast`` /
        ``on_message`` returning command lists).
    port_base:
        Node ``i`` listens on ``port_base + i`` on localhost.
    """

    def __init__(self, protocol, *, host: str = "127.0.0.1", port_base: int = 9600) -> None:
        self.protocol = protocol
        self.process_id = protocol.process_id
        self.host = host
        self.port_base = port_base
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._reader_tasks: List[asyncio.Task] = []
        self._lock = asyncio.Lock()
        #: BRB deliveries observed by this node, as (source, bid, payload).
        self.deliveries: List[BRBDeliver] = []
        self.delivery_event = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self.port_base + self.process_id

    async def start(self) -> None:
        """Start listening for inbound neighbor connections."""
        self._server = await asyncio.start_server(
            self._on_inbound, host=self.host, port=self.port
        )

    async def connect_neighbors(self) -> None:
        """Dial every neighbor with a larger identifier."""
        for neighbor in self.protocol.neighbors:
            if neighbor <= self.process_id:
                continue
            await self._dial(neighbor)

    async def _dial(self, neighbor: int, *, attempts: int = 40) -> None:
        last_error: Optional[Exception] = None
        for _ in range(attempts):
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port_base + neighbor
                )
                writer.write(_HELLO.pack(self.process_id))
                await writer.drain()
                self._register(neighbor, reader, writer)
                return
            except OSError as exc:  # the peer may not be listening yet
                last_error = exc
                await asyncio.sleep(0.05)
        raise RuntimeAbort(f"could not connect to neighbor {neighbor}: {last_error}")

    async def _on_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello = await reader.readexactly(_HELLO.size)
        except asyncio.IncompleteReadError:
            writer.close()
            return
        (peer_id,) = _HELLO.unpack(hello)
        if peer_id not in self.protocol.neighbors:
            # Only declared neighbors own an authenticated channel.
            writer.close()
            return
        self._register(peer_id, reader, writer)

    def _register(
        self, peer_id: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers[peer_id] = writer
        task = asyncio.ensure_future(self._read_loop(peer_id, reader))
        self._reader_tasks.append(task)

    async def stop(self) -> None:
        """Close the server, the connections and the reader tasks."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._reader_tasks:
            task.cancel()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    # ------------------------------------------------------------------
    # Protocol driving
    # ------------------------------------------------------------------
    async def broadcast(self, payload: bytes, bid: int = 0) -> None:
        """Initiate a broadcast from this node."""
        async with self._lock:
            commands = self.protocol.broadcast(payload, bid)
        await self._execute(commands)

    async def _read_loop(self, peer_id: int, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                header = await reader.readexactly(_LENGTH.size)
                (length,) = _LENGTH.unpack(header)
                frame = await reader.readexactly(length)
                message = decode_message(frame)
                async with self._lock:
                    commands = self.protocol.on_message(peer_id, message)
                await self._execute(commands)
        except (asyncio.IncompleteReadError, asyncio.CancelledError, ConnectionError):
            return

    async def _execute(self, commands: Iterable[Command]) -> None:
        for command in commands:
            if isinstance(command, SendTo):
                await self._send(command.dest, command.message)
            elif isinstance(command, BRBDeliver):
                self.deliveries.append(command)
                self.delivery_event.set()
            elif isinstance(command, RCDeliver):
                self.deliveries.append(
                    BRBDeliver(
                        source=command.source if command.source is not None else -1,
                        bid=0,
                        payload=command.payload
                        if isinstance(command.payload, bytes)
                        else b"",
                    )
                )
                self.delivery_event.set()

    async def _send(self, dest: int, message) -> None:
        writer = self._writers.get(dest)
        if writer is None:
            return
        frame = encode_message(message)
        writer.write(_LENGTH.pack(len(frame)) + frame)
        try:
            await writer.drain()
        except ConnectionError:
            self._writers.pop(dest, None)

    async def wait_for_delivery(self, count: int = 1, timeout: float = 30.0) -> bool:
        """Wait until at least ``count`` deliveries happened."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while len(self.deliveries) < count:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            self.delivery_event.clear()
            try:
                await asyncio.wait_for(self.delivery_event.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                return False
        return True


__all__ = ["AsyncioNode"]
