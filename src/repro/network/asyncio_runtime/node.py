"""A single protocol instance hosted over asyncio TCP connections.

Each node listens on a TCP port and opens one connection per neighbor
with a larger identifier (the lower-id peer always dials, which avoids
duplicate connections).  The first frame on every connection is a HELLO
carrying the dialing node's identifier; afterwards every frame is an
encoded protocol message.  Connections are only accepted from declared
neighbors, mirroring the authenticated-channel assumption.

Ports are ephemeral by default: a node binds port 0, learns the port the
kernel assigned and publishes it through the cluster's port map, so
concurrent clusters (pytest-xdist workers, parallel CI jobs) never race
for a fixed port range.  Passing ``port_base`` restores the legacy fixed
``port_base + process_id`` layout.

Beyond plain hosting, a node understands the runtime actions the
:class:`~repro.scenarios.backends.AsyncioBackend` translates scenario
fault events into:

* :meth:`crash` — the process goes fail-silent: it stops sending and
  ignores every future message (sockets stay open; TCP liveness is not
  process correctness);
* :meth:`delay_start` / :meth:`wake` — a dormant process buffers inbound
  messages and replays them in arrival order when it wakes, matching the
  simulator's delayed-start semantics;
* :meth:`add_drop_window` — outgoing messages to one peer are dropped
  while the wall clock (relative to the cluster epoch) falls inside a
  window, matching the simulator's link-drop windows;
* :meth:`add_loss_filter` / :meth:`add_periodic_drop_window` — the
  connection-level mirrors of the scenario engine's lossy delay models:
  outgoing messages to one peer are lost with a seeded probability, or
  during periodic outage bursts;
* :meth:`replace_protocol` — swap the hosted instance mid-run (adaptive
  adversaries turning a process Byzantine);
* an :attr:`observer` hook reporting every send/delivery as an
  :class:`~repro.core.events.Observation`, feeding adaptive triggers.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.encoding import decode_message, encode_message
from repro.core.errors import RuntimeAbort
from repro.core.events import BRBDeliver, Command, Observation, RCDeliver, SendTo
from repro.metrics.collector import MetricsCollector, message_type_name
from repro.network.asyncio_runtime.framing import (
    HELLO as _HELLO,
    FrameError,
    read_frame,
    write_frame,
)


class AsyncioNode:
    """Hosts one sans-io protocol instance over TCP.

    Parameters
    ----------
    protocol:
        Any object implementing the protocol interface (``broadcast`` /
        ``on_message`` returning command lists).
    port_base:
        ``None`` (the default) binds an ephemeral port; the actual port
        is available as :attr:`port` once :meth:`start` returned and is
        exchanged through a port map.  When set, node ``i`` listens on
        ``port_base + i`` (legacy fixed layout).
    collector:
        Optional :class:`MetricsCollector` shared by the cluster; sends
        and deliveries are recorded with wall-clock milliseconds relative
        to the cluster epoch (see :meth:`set_epoch`).
    """

    def __init__(
        self,
        protocol,
        *,
        host: str = "127.0.0.1",
        port_base: Optional[int] = None,
        collector: Optional[MetricsCollector] = None,
    ) -> None:
        self.protocol = protocol
        self.process_id = protocol.process_id
        self.host = host
        self.port_base = port_base
        self.collector = collector
        self._port: Optional[int] = None
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._reader_tasks: List[asyncio.Task] = []
        self._lock = asyncio.Lock()
        # Pulsed on every neighbor registration; wait_until_connected
        # re-checks the writer set after each pulse (readiness barrier).
        self._registered = asyncio.Event()
        self._epoch: Optional[float] = None
        # Runtime-action state (see the module docstring).
        self._crashed = False
        self._dormant = False
        # A join-late (churn) dormancy *drops* inbound messages instead
        # of buffering them: a late joiner missed the early traffic.
        self._drop_dormant = False
        self._dormant_buffer: List[Tuple[int, object]] = []
        self._pending_broadcasts: List[Tuple[bytes, int]] = []
        # Peers whose channel a churn event tore down: outgoing messages
        # to them are lost, and their redials are rejected.
        self._severed: Set[int] = set()
        # Peers granted a channel beyond the declared neighbor set
        # (RewireLinkAt brings a new link up mid-run).
        self._extra_peers: Set[int] = set()
        # peer -> [(start_s, end_s)] drop windows, relative to the epoch;
        # end_s is None for a window that never closes.
        self._drop_windows: Dict[int, List[Tuple[float, Optional[float]]]] = {}
        # peer -> [predicate(elapsed_s) -> bool] generic drop filters
        # (probabilistic loss, periodic bursts).
        self._drop_filters: Dict[int, List[Callable[[float], bool]]] = {}
        #: Observer of protocol events (sends/deliveries); set by the
        #: scenario backend to feed adaptive adversaries.
        self.observer: Optional[Callable[[Observation], None]] = None
        #: Outgoing messages lost to drop windows or loss filters.
        self.dropped_messages = 0
        #: BRB deliveries observed by this node, as (source, bid, payload).
        self.deliveries: List[BRBDeliver] = []
        self.delivery_event = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The port this node listens on.

        For ephemeral allocation the value only exists after
        :meth:`start` bound the socket.
        """
        if self._port is not None:
            return self._port
        if self.port_base is not None:
            return self.port_base + self.process_id
        raise RuntimeAbort(
            f"node {self.process_id} uses ephemeral ports and has not started yet"
        )

    async def start(self) -> None:
        """Start listening for inbound neighbor connections."""
        requested = 0 if self.port_base is None else self.port_base + self.process_id
        self._server = await asyncio.start_server(
            self._on_inbound, host=self.host, port=requested
        )
        self._port = self._server.sockets[0].getsockname()[1]

    async def connect_neighbors(self, port_map: Optional[Mapping[int, int]] = None) -> None:
        """Dial every neighbor with a larger identifier.

        ``port_map`` maps process id → actual listening port (required
        for ephemeral allocation; the cluster builds it after every node
        started).  Without a map the legacy ``port_base + id`` layout is
        assumed.
        """
        for neighbor in self.protocol.neighbors:
            if neighbor <= self.process_id:
                continue
            if port_map is not None:
                port = port_map[neighbor]
            elif self.port_base is not None:
                port = self.port_base + neighbor
            else:
                raise RuntimeAbort(
                    "ephemeral ports need a port map to dial neighbors"
                )
            await self._dial(neighbor, port)

    async def _dial(self, neighbor: int, port: int, *, attempts: int = 40) -> None:
        last_error: Optional[Exception] = None
        for _ in range(attempts):
            try:
                reader, writer = await asyncio.open_connection(self.host, port)
                writer.write(_HELLO.pack(self.process_id))
                await writer.drain()
                self._register(neighbor, reader, writer)
                return
            except OSError as exc:  # the peer may not be listening yet
                last_error = exc
                await asyncio.sleep(0.05)
        raise RuntimeAbort(f"could not connect to neighbor {neighbor}: {last_error}")

    async def _on_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello = await reader.readexactly(_HELLO.size)
        except asyncio.IncompleteReadError:
            writer.close()
            return
        (peer_id,) = _HELLO.unpack(hello)
        if (
            peer_id not in self.protocol.neighbors
            and peer_id not in self._extra_peers
        ) or peer_id in self._severed:
            # Only declared neighbors (or rewired-in peers) own an
            # authenticated channel; severed peers stay disconnected.
            writer.close()
            return
        self._register(peer_id, reader, writer)

    def _register(
        self, peer_id: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers[peer_id] = writer
        task = asyncio.ensure_future(self._read_loop(peer_id, reader))
        self._reader_tasks.append(task)
        self._registered.set()

    async def wait_until_connected(
        self, expected: Set[int], timeout: float = 10.0
    ) -> None:
        """Block until a channel to every process in ``expected`` exists.

        This is the per-node half of the cluster readiness barrier: both
        dialed and accepted connections count, so once it returns the
        node can reach — and be reached by — every declared neighbor.
        Raises :class:`RuntimeAbort` on timeout.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while not set(expected) <= set(self._writers):
            remaining = deadline - loop.time()
            if remaining <= 0:
                missing = sorted(set(expected) - set(self._writers))
                raise RuntimeAbort(
                    f"node {self.process_id} timed out waiting for "
                    f"connections from {missing}"
                )
            self._registered.clear()
            try:
                await asyncio.wait_for(self._registered.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                continue  # re-check and fail with the missing set above
        return

    async def stop(self) -> None:
        """Close the server, the connections and the reader tasks."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._reader_tasks:
            task.cancel()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    # ------------------------------------------------------------------
    # Runtime actions (scenario fault events)
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def dormant(self) -> bool:
        return self._dormant

    def set_epoch(self, epoch: float) -> None:
        """Anchor drop windows and metric timestamps at loop time ``epoch``."""
        self._epoch = epoch

    def _elapsed_s(self) -> float:
        if self._epoch is None:
            return 0.0
        return asyncio.get_running_loop().time() - self._epoch

    def crash(self) -> None:
        """Go fail-silent: never send again, ignore every future message.

        Wakes any delivery waiter: a crashed process can never satisfy a
        pending wait, so blocking on it until the timeout (e.g. after an
        adaptive trigger crashed it mid-run) would only stall the run.
        """
        self._crashed = True
        self._dormant_buffer.clear()
        self._pending_broadcasts.clear()
        self.delivery_event.set()

    def delay_start(self) -> None:
        """Become dormant: buffer inbound messages until :meth:`wake`."""
        self._dormant = True

    def join_late(self) -> None:
        """Become dormant like a pending joiner: inbound messages are
        *dropped* (and counted) until :meth:`wake`, not buffered —
        matching the simulator's JoinAt semantics where a late joiner
        missed the early traffic."""
        self._dormant = True
        self._drop_dormant = True

    def disconnect_peer(self, peer: int) -> None:
        """Tear the channel to ``peer`` down (churn link removal).

        Outgoing messages to a severed peer are lost (counted in
        :attr:`dropped_messages`) and its redials are rejected, mirroring
        the simulator dropping sends on a removed edge.
        """
        self._severed.add(peer)
        writer = self._writers.pop(peer, None)
        if writer is not None:
            writer.close()

    def allow_peer(self, peer: int) -> None:
        """Accept a channel to ``peer`` beyond the declared neighbor set
        (a rewired-in link)."""
        self._severed.discard(peer)
        self._extra_peers.add(peer)

    async def dial_peer(self, peer: int, port: int) -> None:
        """Dial ``peer`` on ``port`` mid-run (bringing a rewired link up)."""
        self._severed.discard(peer)
        await self._dial(peer, port)

    def add_drop_window(
        self, peer: int, start_s: float, end_s: Optional[float] = None
    ) -> None:
        """Drop outgoing messages to ``peer`` while inside the window.

        Times are seconds relative to the cluster epoch; ``end_s=None``
        models a link that goes down and never reopens.  The dropped
        message's bytes are still recorded as sent, mirroring the
        simulator's accounting of a transmission that leaves the NIC but
        never arrives.
        """
        self._drop_windows.setdefault(peer, []).append((start_s, end_s))

    def add_loss_filter(self, peer: int, probability: float, seed: int) -> None:
        """Lose outgoing messages to ``peer`` with ``probability``.

        The connection-level mirror of the scenario engine's
        :class:`~repro.network.simulation.delays.LossyDelay`: each
        message is dropped independently, drawn from a ``seed``-keyed RNG
        (the scenario backend derives the seed from the scenario hash,
        so the drop sequence is fixed per scenario even though wall-clock
        message ordering is not).
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be within [0, 1], got {probability}")
        rng = random.Random(seed)
        self._drop_filters.setdefault(peer, []).append(
            lambda _elapsed_s: rng.random() < probability
        )

    def add_periodic_drop_window(
        self, peer: int, period_s: float, burst_s: float, offset_s: float = 0.0
    ) -> None:
        """Lose outgoing messages to ``peer`` during periodic bursts.

        The connection-level mirror of
        :class:`~repro.network.simulation.delays.BurstyLossWindow`:
        every ``period_s`` the link is down for ``burst_s`` (times are
        seconds relative to the cluster epoch).
        """
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s}")
        if not 0.0 <= burst_s <= period_s:
            raise ValueError(f"burst_s must be within [0, period_s], got {burst_s}")
        self._drop_filters.setdefault(peer, []).append(
            lambda elapsed_s: (elapsed_s - offset_s) % period_s < burst_s
        )

    def link_dropped(self, peer: int, elapsed_s: Optional[float] = None) -> bool:
        """Whether a message to ``peer`` at ``elapsed_s`` would be dropped.

        Consults the timed drop windows first, then the generic filters
        (probabilistic loss consumes one RNG draw per consulted message).
        """
        windows = self._drop_windows.get(peer)
        filters = self._drop_filters.get(peer)
        if not windows and not filters:
            return False
        if elapsed_s is None:
            elapsed_s = self._elapsed_s()
        if windows and any(
            start <= elapsed_s and (end is None or elapsed_s < end)
            for start, end in windows
        ):
            return True
        return bool(filters) and any(
            drop_filter(elapsed_s) for drop_filter in filters
        )

    def replace_protocol(self, protocol: object) -> None:
        """Swap the hosted protocol instance mid-run.

        Used by adaptive adversaries to turn a (so far correct) process
        Byzantine once a trigger fires; messages already written to the
        sockets are not retracted.
        """
        self.protocol = protocol

    async def wake(self) -> None:
        """Wake a dormant process: run ``on_start`` and replay the buffer.

        The node stays dormant while the buffer is replayed, so messages
        arriving concurrently keep queueing behind the buffered prefix —
        replay is in strict arrival order, matching the simulator's
        atomic wake-up.
        """
        if self._crashed or not self._dormant:
            return
        self._drop_dormant = False
        hook = getattr(self.protocol, "on_start", None)
        if hook is not None:
            async with self._lock:
                commands = hook()
            await self._execute(commands)
        while self._dormant_buffer:
            if self._crashed:
                return
            sender, message = self._dormant_buffer.pop(0)
            async with self._lock:
                commands = self.protocol.on_message(sender, message)
            await self._execute(commands)
        self._dormant = False
        pending, self._pending_broadcasts = self._pending_broadcasts, []
        for payload, bid in pending:
            if self._crashed:
                return
            await self.broadcast(payload, bid)

    # ------------------------------------------------------------------
    # Protocol driving
    # ------------------------------------------------------------------
    async def run_on_start(self) -> None:
        """Run the protocol's ``on_start`` hook (once connections exist)."""
        if self._crashed or self._dormant:
            return
        hook = getattr(self.protocol, "on_start", None)
        if hook is None:
            return
        async with self._lock:
            commands = hook()
        await self._execute(commands)

    async def broadcast(self, payload: bytes, bid: int = 0) -> None:
        """Initiate a broadcast from this node.

        A crashed node does nothing; a dormant node broadcasts right
        after it wakes (the simulator's delayed-start semantics).
        """
        if self._crashed:
            return
        if self._dormant:
            self._pending_broadcasts.append((payload, bid))
            return
        async with self._lock:
            commands = self.protocol.broadcast(payload, bid)
        await self._execute(commands)

    async def handle_message(self, peer_id: int, message) -> None:
        """Feed one decoded protocol message into the hosted instance."""
        if self._crashed:
            return
        if self._dormant:
            if self._drop_dormant:
                # A pending joiner is not a member yet: the message is
                # lost, not queued for later.
                self.dropped_messages += 1
                return
            self._dormant_buffer.append((peer_id, message))
            return
        async with self._lock:
            commands = self.protocol.on_message(peer_id, message)
        await self._execute(commands)

    async def _read_loop(self, peer_id: int, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                message = decode_message(frame)
                await self.handle_message(peer_id, message)
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            ConnectionError,
            FrameError,
        ):
            return

    async def _execute(self, commands: Iterable[Command]) -> None:
        for command in commands:
            if self._crashed:
                return
            if isinstance(command, SendTo):
                await self._send(command.dest, command.message)
            elif isinstance(command, BRBDeliver):
                self._record_delivery(command)
            elif isinstance(command, RCDeliver):
                self._record_delivery(
                    BRBDeliver(
                        source=command.source if command.source is not None else -1,
                        bid=0,
                        payload=command.payload
                        if isinstance(command.payload, bytes)
                        else b"",
                    )
                )

    def _record_delivery(self, delivery: BRBDeliver) -> None:
        self.deliveries.append(delivery)
        if self.collector is not None:
            self.collector.record_delivery(
                self._elapsed_s() * 1000.0,
                self.process_id,
                delivery.source,
                delivery.bid,
                delivery.payload,
            )
        self.delivery_event.set()
        self._notify(
            Observation(
                kind="deliver",
                time_ms=self._elapsed_s() * 1000.0,
                pid=self.process_id,
                source=delivery.source,
                bid=delivery.bid,
            )
        )

    def _notify(self, observation: Observation) -> None:
        if self.observer is not None:
            self.observer(observation)

    async def _send(self, dest: int, message) -> None:
        if self._crashed:
            return
        if self.collector is not None:
            self.collector.record_send(
                self._elapsed_s() * 1000.0, self.process_id, dest, message
            )
        dropped = self.link_dropped(dest) or dest in self._severed
        if dropped:
            self.dropped_messages += 1
        else:
            writer = self._writers.get(dest)
            if writer is not None:
                frame = encode_message(message)
                try:
                    write_frame(writer, frame)
                except FrameError as exc:
                    # Outbound overflow is our own bug, not a peer
                    # disconnect: surface it instead of letting
                    # _read_loop's FrameError handling (meant for corrupt
                    # *inbound* prefixes) eat it.
                    raise RuntimeAbort(
                        f"outbound message to {dest} exceeds the frame cap: {exc}"
                    ) from exc
                try:
                    await writer.drain()
                except ConnectionError:
                    self._writers.pop(dest, None)
        # Observed last, like the simulator: the message is on the wire
        # (or provably lost) before an adaptive adversary reacts to it.
        self._notify(
            Observation(
                kind="send",
                time_ms=self._elapsed_s() * 1000.0,
                pid=self.process_id,
                dest=dest,
                mtype=message_type_name(message),
                source=getattr(message, "source", None),
                bid=getattr(message, "bid", None),
            )
        )

    async def _wait_for_deliveries(self, satisfied, timeout: float) -> bool:
        """Wait until ``satisfied()`` is true, re-checking on every delivery.

        Returns ``False`` immediately once the node crashes: its
        delivery set is final, so an unsatisfied wait can never be
        satisfied and running to the timeout would stall the caller.
        """
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while not satisfied():
            if self._crashed:
                return False
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            self.delivery_event.clear()
            try:
                await asyncio.wait_for(self.delivery_event.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                return False
        return True

    async def wait_for_delivery(self, count: int = 1, timeout: float = 30.0) -> bool:
        """Wait until at least ``count`` deliveries happened."""
        return await self._wait_for_deliveries(
            lambda: len(self.deliveries) >= count, timeout
        )

    async def wait_for_delivery_of(
        self, keys: Iterable[Tuple[int, int]], timeout: float = 30.0
    ) -> bool:
        """Wait until this node delivered every ``(source, bid)`` in ``keys``.

        Per-key waiting, unlike the count of :meth:`wait_for_delivery`:
        a delivery of an *unscheduled* broadcast (e.g. one a Byzantine
        node forged into existence) never satisfies the wait in place of
        a scheduled one.
        """
        wanted = set(keys)
        return await self._wait_for_deliveries(
            lambda: wanted <= {(d.source, d.bid) for d in self.deliveries}, timeout
        )


__all__ = ["AsyncioNode"]
