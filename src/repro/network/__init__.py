"""Network substrates hosting the protocols.

Two runtimes interpret the sans-io protocol commands:

* :mod:`repro.network.simulation` — a deterministic discrete-event
  simulation with the paper's synchronous (fixed 50 ms) and asynchronous
  (Normal(50, 50) ms) link-delay models.  All benchmarks use it.
* :mod:`repro.network.asyncio_runtime` — real TCP transports driven by
  asyncio, demonstrating that the same protocol code runs over actual
  sockets.

:mod:`repro.network.adversary` provides Byzantine process behaviours
(mute, crash, equivocation, path forging, selective dropping) usable with
either runtime.
"""

from repro.network.simulation import (
    AsynchronousDelay,
    DelayModel,
    EventScheduler,
    FixedDelay,
    SimulatedNetwork,
    UniformDelay,
)
from repro.network.adversary import (
    ByzantineBehavior,
    CrashingProcess,
    EquivocatingSource,
    MessageDroppingRelay,
    MuteProcess,
    PathForgingRelay,
)

__all__ = [
    "EventScheduler",
    "DelayModel",
    "FixedDelay",
    "AsynchronousDelay",
    "UniformDelay",
    "SimulatedNetwork",
    "ByzantineBehavior",
    "MuteProcess",
    "CrashingProcess",
    "EquivocatingSource",
    "MessageDroppingRelay",
    "PathForgingRelay",
]
