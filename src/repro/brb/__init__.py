"""Byzantine reliable broadcast protocols.

* :class:`~repro.brb.bracha.BrachaBroadcast` — Bracha's authenticated
  double-echo broadcast on fully connected networks (Algorithm 1).
* :class:`~repro.brb.dolev.DolevBroadcast` — Dolev's reliable
  communication on unknown, partially connected topologies
  (Algorithm 2), optionally with Bonomi et al.'s MD.1–5 optimizations
  (:class:`~repro.brb.dolev.OptimizedDolevBroadcast`).
* :class:`~repro.brb.bracha_dolev.BrachaDolevBroadcast` — the layered
  state-of-the-art combination of the two (*BD*), which becomes *BDopt*
  when the Dolev layer runs MD.1–5.
* :class:`~repro.brb.optimized.CrossLayerBrachaDolev` — the paper's
  contribution: the cross-layer combination supporting the MBD.1–12
  modifications.

Two extension substrates are also provided (related / future work the
paper points at):

* :class:`~repro.brb.dolev_routed.RoutedDolevBroadcast` — Dolev's
  known-topology variant using precomputed vertex-disjoint routes.
* :class:`~repro.brb.cpa.CPABroadcast` and
  :class:`~repro.brb.cpa.BrachaCPABroadcast` — the Certified Propagation
  Algorithm under the local fault model, alone and under Bracha.
"""

from repro.brb.bracha import BrachaBroadcast
from repro.brb.dolev import DolevBroadcast, OptimizedDolevBroadcast
from repro.brb.dolev_routed import RoutedDolevBroadcast
from repro.brb.cpa import BrachaCPABroadcast, CPABroadcast
from repro.brb.bracha_dolev import BrachaDolevBroadcast
from repro.brb.optimized import CrossLayerBrachaDolev

__all__ = [
    "BrachaBroadcast",
    "DolevBroadcast",
    "OptimizedDolevBroadcast",
    "RoutedDolevBroadcast",
    "CPABroadcast",
    "BrachaCPABroadcast",
    "BrachaDolevBroadcast",
    "CrossLayerBrachaDolev",
]
