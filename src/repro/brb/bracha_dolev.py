"""Layered Bracha-Dolev combination (the state-of-the-art baseline, Sec. 4.3).

Every send-to-all of Bracha's protocol is replaced by a Dolev broadcast of
the corresponding SEND / ECHO / READY message, and every Dolev delivery
feeds the Bracha quorum machinery of the receiving process, as
illustrated by Fig. 2 of the paper.  With the Dolev layer unmodified this
is the protocol the paper calls *BD*; with Bonomi et al.'s MD.1–5
optimizations enabled it is *BDopt*.

ECHO and READY messages carry the identifier of the process that created
them (Sec. 5), because MD.2 replaces paths by empty paths after delivery
and the creator can then no longer be recovered from the path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.events import Command
from repro.core.messages import BrachaMessage, DolevMessage, MessageType
from repro.core.modifications import ModificationSet
from repro.core.protocol import BroadcastProtocol
from repro.brb.bracha import BrachaAction, BrachaQuorumState
from repro.brb.dolev import DolevDisseminator

BroadcastKey = Tuple[int, int]


class BrachaDolevBroadcast(BroadcastProtocol):
    """Bracha's BRB running on top of Dolev's reliable communication.

    Parameters
    ----------
    modifications:
        The MD.1–5 toggles applied to the Dolev layer.  Use
        :meth:`ModificationSet.none` for the unmodified *BD* combination
        and :meth:`ModificationSet.dolev_optimized` for *BDopt*.
    echo_amplification:
        Enable the ``f + 1`` ECHOs ⇒ own ECHO rule (not part of the
        baseline; provided for comparison with the cross-layer protocol).
    """

    def __init__(
        self,
        process_id: int,
        config: SystemConfig,
        neighbors: Iterable[int],
        *,
        modifications: Optional[ModificationSet] = None,
        echo_amplification: bool = False,
    ) -> None:
        super().__init__(process_id, config, neighbors)
        config.require_bracha_resilience()
        self.modifications = (
            modifications if modifications is not None else ModificationSet.none()
        )
        self._echo_amplification = echo_amplification
        self._states: Dict[BroadcastKey, BrachaQuorumState] = {}
        self._disseminator = DolevDisseminator(
            process_id=process_id,
            neighbors=self.neighbors,
            required_paths=config.disjoint_paths_required,
            modifications=self.modifications,
        )

    # ------------------------------------------------------------------
    # Constructors matching the paper's terminology
    # ------------------------------------------------------------------
    @classmethod
    def bd(cls, process_id: int, config: SystemConfig, neighbors: Iterable[int]):
        """The unmodified Bracha-Dolev combination (*BD*)."""
        return cls(process_id, config, neighbors, modifications=ModificationSet.none())

    @classmethod
    def bdopt(cls, process_id: int, config: SystemConfig, neighbors: Iterable[int]):
        """Bracha over Dolev with MD.1–5 (*BDopt*)."""
        return cls(
            process_id,
            config,
            neighbors,
            modifications=ModificationSet.dolev_optimized(),
        )

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        send_message = BrachaMessage(
            mtype=MessageType.SEND, source=self.process_id, bid=bid, payload=payload
        )
        return self._originate(send_message)

    def on_message(self, sender: int, message: DolevMessage) -> List[Command]:
        if not isinstance(message, DolevMessage) or not isinstance(
            message.content, BrachaMessage
        ):
            return []
        content = message.content
        if not self.config.is_process(content.source):
            return []
        sends, delivered = self._disseminator.on_message(sender, message)
        commands: List[Command] = list(sends)
        for item in delivered:
            commands.extend(self._on_content_delivered(item))
        return commands

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _state(self, key: BroadcastKey) -> BrachaQuorumState:
        state = self._states.get(key)
        if state is None:
            state = BrachaQuorumState(
                config=self.config, echo_amplification=self._echo_amplification
            )
            self._states[key] = state
        return state

    def _originate(self, content: BrachaMessage) -> List[Command]:
        """Dolev-broadcast a locally created Bracha message."""
        sends, delivered = self._disseminator.originate(content)
        commands: List[Command] = list(sends)
        for item in delivered:
            commands.extend(self._on_content_delivered(item))
        return commands

    def _on_content_delivered(self, content: BrachaMessage) -> List[Command]:
        """Feed a Dolev-delivered Bracha message into the quorum machinery."""
        key = content.broadcast_id
        state = self._state(key)
        creator = content.creator if content.creator is not None else content.source
        if content.mtype == MessageType.SEND:
            # Only the claimed source can originate a SEND: the Dolev layer
            # authenticates the creator, so a SEND whose creator differs from
            # its source field is a forgery and is dropped.
            actions = state.on_send(content.payload) if creator == content.source else []
        elif content.mtype == MessageType.ECHO:
            actions = state.on_echo(creator, content.payload)
        elif content.mtype == MessageType.READY:
            actions = state.on_ready(creator, content.payload)
        else:
            actions = []
        return self._apply_actions(key, actions)

    def _apply_actions(self, key: BroadcastKey, actions: List[BrachaAction]) -> List[Command]:
        source, bid = key
        commands: List[Command] = []
        for action in actions:
            if action.kind == "deliver":
                commands.append(self._record_delivery(source, bid, action.payload))
                continue
            mtype = MessageType.ECHO if action.kind == "echo" else MessageType.READY
            message = BrachaMessage(
                mtype=mtype,
                source=source,
                bid=bid,
                payload=action.payload,
                creator=self.process_id,
            )
            commands.extend(self._originate(message))
        return commands

    def state_size_estimate(self) -> int:
        """Stored paths, combinations and quorum entries (memory proxy)."""
        quorums = sum(
            len(vs.echo_senders) + len(vs.ready_senders)
            for state in self._states.values()
            for vs in state.values.values()
        )
        return self._disseminator.state_size_estimate() + quorums


__all__ = ["BrachaDolevBroadcast"]
