"""Bracha's authenticated double-echo broadcast (Algorithm 1).

The protocol assumes a fully connected network of ``N`` processes with
authenticated, reliable, asynchronous point-to-point links and tolerates
``f < N/3`` Byzantine processes.  It proceeds in three phases:

1. the source sends ``SEND(m)`` to every process;
2. upon the first ``SEND`` from the source, a process sends ``ECHO(m)``
   to every process and waits for an echo quorum of ``⌈(N+f+1)/2⌉``;
3. upon an echo quorum — or ``f+1`` ``READY`` messages (amplification) —
   a process sends ``READY(m)``; upon ``2f+1`` ``READY`` messages it
   BRB-delivers ``m``.

The quorum bookkeeping is factored out into :class:`BrachaQuorumState`
so that the layered Bracha-Dolev combination
(:mod:`repro.brb.bracha_dolev`) can reuse it unchanged, with message
emission going through Dolev's protocol instead of direct links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.config import SystemConfig
from repro.core.events import Command, SendTo
from repro.core.messages import BrachaMessage, MessageType
from repro.core.protocol import BroadcastProtocol

BroadcastKey = Tuple[int, int]


@dataclass
class BrachaAction:
    """An action decided by the quorum state machine.

    ``kind`` is one of ``"echo"``, ``"ready"`` or ``"deliver"``; the
    payload is the value the action refers to.
    """

    kind: str
    payload: bytes


@dataclass
class _PerValueState:
    echo_senders: Set[int] = field(default_factory=set)
    ready_senders: Set[int] = field(default_factory=set)


@dataclass
class BrachaQuorumState:
    """Quorum bookkeeping of one broadcast ``(source, bid)``.

    Quorums are counted per payload value so that an equivocating
    Byzantine source cannot make correct processes deliver different
    values: delivering requires ``2f+1`` READYs *for the same value*.
    """

    config: SystemConfig
    #: Whether this process has sent its ECHO / READY for this broadcast.
    sent_echo: bool = False
    sent_ready: bool = False
    delivered: bool = False
    #: Whether echo amplification (f+1 ECHOs ⇒ own ECHO) is enabled.  It is
    #: not part of Algorithm 1 but is required by the cross-layer protocol
    #: (MBD.2) and harmless otherwise.
    echo_amplification: bool = False
    values: Dict[bytes, _PerValueState] = field(default_factory=dict)

    def _value_state(self, payload: bytes) -> _PerValueState:
        return self.values.setdefault(payload, _PerValueState())

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def on_send(self, payload: bytes) -> List[BrachaAction]:
        """A ``SEND`` from the source has been received (or validated)."""
        if self.sent_echo:
            return []
        self.sent_echo = True
        return [BrachaAction("echo", payload)]

    def on_echo(self, sender: int, payload: bytes) -> List[BrachaAction]:
        """An ``ECHO`` created by ``sender`` has been received."""
        state = self._value_state(payload)
        if sender in state.echo_senders:
            return []
        state.echo_senders.add(sender)
        actions: List[BrachaAction] = []
        if (
            self.echo_amplification
            and not self.sent_echo
            and len(state.echo_senders) >= self.config.echo_amplification_threshold
        ):
            self.sent_echo = True
            actions.append(BrachaAction("echo", payload))
        if not self.sent_ready and len(state.echo_senders) >= self.config.echo_quorum:
            self.sent_ready = True
            actions.append(BrachaAction("ready", payload))
        return actions

    def on_ready(self, sender: int, payload: bytes) -> List[BrachaAction]:
        """A ``READY`` created by ``sender`` has been received."""
        state = self._value_state(payload)
        if sender in state.ready_senders:
            return []
        state.ready_senders.add(sender)
        actions: List[BrachaAction] = []
        if (
            not self.sent_ready
            and len(state.ready_senders) >= self.config.ready_amplification_threshold
        ):
            self.sent_ready = True
            actions.append(BrachaAction("ready", payload))
        if not self.delivered and len(state.ready_senders) >= self.config.delivery_quorum:
            self.delivered = True
            actions.append(BrachaAction("deliver", payload))
        return actions

    # ------------------------------------------------------------------
    # Introspection helpers used by tests and by the optimized protocol
    # ------------------------------------------------------------------
    def echo_count(self, payload: bytes) -> int:
        """Number of distinct ECHO creators recorded for ``payload``."""
        state = self.values.get(payload)
        return len(state.echo_senders) if state else 0

    def ready_count(self, payload: bytes) -> int:
        """Number of distinct READY creators recorded for ``payload``."""
        state = self.values.get(payload)
        return len(state.ready_senders) if state else 0


class BrachaBroadcast(BroadcastProtocol):
    """Bracha's BRB protocol for fully connected networks.

    The process set must be fully connected: ``neighbors`` must contain
    every other process of the system.
    """

    def __init__(
        self,
        process_id: int,
        config: SystemConfig,
        neighbors=None,
        *,
        echo_amplification: bool = False,
    ) -> None:
        if neighbors is None:
            neighbors = [p for p in config.processes if p != process_id]
        super().__init__(process_id, config, neighbors)
        config.require_bracha_resilience()
        self._echo_amplification = echo_amplification
        self._states: Dict[BroadcastKey, BrachaQuorumState] = {}

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        message = BrachaMessage(
            mtype=MessageType.SEND, source=self.process_id, bid=bid, payload=payload
        )
        commands = self._send_to_all(message)
        # The source handles its own SEND locally (Algorithm 1 sends to
        # every process in Π, including the sender itself).
        commands.extend(self._handle(self.process_id, message))
        return commands

    def on_message(self, sender: int, message: BrachaMessage) -> List[Command]:
        if not isinstance(message, BrachaMessage):
            return []
        if not self.config.is_process(message.source):
            return []
        if message.mtype == MessageType.SEND and message.source != sender:
            # Authenticated links: only the source itself can issue its SEND.
            return []
        return self._handle(sender, message)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _state(self, key: BroadcastKey) -> BrachaQuorumState:
        state = self._states.get(key)
        if state is None:
            state = BrachaQuorumState(
                config=self.config, echo_amplification=self._echo_amplification
            )
            self._states[key] = state
        return state

    def _handle(self, sender: int, message: BrachaMessage) -> List[Command]:
        key = message.broadcast_id
        state = self._state(key)
        if message.mtype == MessageType.SEND:
            actions = state.on_send(message.payload)
        elif message.mtype == MessageType.ECHO:
            actions = state.on_echo(sender, message.payload)
        elif message.mtype == MessageType.READY:
            actions = state.on_ready(sender, message.payload)
        else:
            return []
        return self._apply_actions(key, actions)

    def _apply_actions(self, key: BroadcastKey, actions: List[BrachaAction]) -> List[Command]:
        source, bid = key
        commands: List[Command] = []
        for action in actions:
            if action.kind == "deliver":
                commands.append(self._record_delivery(source, bid, action.payload))
                continue
            mtype = MessageType.ECHO if action.kind == "echo" else MessageType.READY
            message = BrachaMessage(
                mtype=mtype, source=source, bid=bid, payload=action.payload
            )
            commands.extend(self._send_to_all(message))
            # Count the local copy as well: a process's own ECHO/READY
            # contributes to its quorums (it "sends to itself").
            commands.extend(self._handle(self.process_id, message))
        return commands

    def _send_to_all(self, message: BrachaMessage) -> List[Command]:
        return [SendTo(dest=q, message=message) for q in self.neighbors]

    def state_size_estimate(self) -> int:
        """Number of quorum entries stored (memory proxy)."""
        return sum(
            len(vs.echo_senders) + len(vs.ready_senders)
            for state in self._states.values()
            for vs in state.values.values()
        )


__all__ = ["BrachaBroadcast", "BrachaQuorumState", "BrachaAction"]
