"""Dolev's reliable communication with known topology (routed variant).

Dolev's original paper presents two protocol variants (Sec. 4.2 of the
reproduced paper): the flooding variant for unknown topologies — the one
the Bracha-Dolev combination builds on — and a *routed* variant for known
topologies, in which the source forwards its content along ``2f + 1``
vertex-disjoint routes to every destination and a destination delivers as
soon as ``f + 1`` copies arrived over disjoint routes.

This module implements the routed variant as an additional substrate.  It
is not used by the paper's evaluation (which assumes unknown topologies)
but provides a useful baseline: on a known topology it exchanges
``O(N · (2f+1) · path length)`` messages instead of flooding.

Routes are source routes: every message carries the full remaining route,
and intermediate processes simply pop themselves off the route and forward
to the next hop.  Intermediate Byzantine processes can drop or corrupt the
copies they relay, but since at most ``f`` of the ``2f + 1`` disjoint
routes contain a Byzantine process, ``f + 1`` genuine copies always arrive
over routes whose intermediaries are all correct, and any corrupted copy
can be outvoted exactly as in the flooding variant (delivery requires
``f + 1`` disjoint routes agreeing on the same content).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import networkx as nx

from repro.core.config import SystemConfig
from repro.core.errors import TopologyError
from repro.core.events import Command, RCDeliver, SendTo
from repro.core.messages import BrachaMessage, MessageType
from repro.core.protocol import BroadcastProtocol
from repro.core.sizes import FieldSizes, PAPER_FIELD_SIZES
from repro.paths.disjoint import DisjointPathVerifier
from repro.topology.generators import Topology


@dataclass(frozen=True)
class RoutedMessage:
    """A content travelling along a fixed source route.

    ``route`` is the remaining route: the identifiers of the processes the
    message still has to visit, ending with the destination.  ``traversed``
    lists the intermediaries already visited (excluding the source), which
    the destination uses for the disjoint-route check.
    """

    content: BrachaMessage
    route: Tuple[int, ...]
    traversed: Tuple[int, ...] = ()

    def wire_size(self, sizes: FieldSizes = PAPER_FIELD_SIZES) -> int:
        """Bytes on the wire: the content plus both route fields."""
        route_cost = sizes.path_cost(len(self.route)) + sizes.path_cost(len(self.traversed))
        return self.content.wire_size(sizes) + route_cost


def disjoint_routes(
    topology: Topology, source: int, destination: int, count: int
) -> List[Tuple[int, ...]]:
    """Up to ``count`` vertex-disjoint routes from ``source`` to ``destination``.

    Each route is the sequence of hops after the source, ending with the
    destination.  A direct edge contributes the single-hop route
    ``(destination,)``.  Raises :class:`TopologyError` when the graph does
    not contain ``count`` disjoint routes (i.e. it is not ``count``-connected
    between the two endpoints).
    """
    graph = topology.to_networkx()
    routes: List[Tuple[int, ...]] = []
    if graph.has_edge(source, destination):
        routes.append((destination,))
        graph = graph.copy()
        graph.remove_edge(source, destination)
    if nx.has_path(graph, source, destination):
        for path in nx.node_disjoint_paths(graph, source, destination):
            routes.append(tuple(path[1:]))
            if len(routes) >= count:
                break
    if len(routes) < count:
        raise TopologyError(
            f"only {len(routes)} vertex-disjoint routes between {source} and "
            f"{destination}, {count} required"
        )
    return routes[:count]


class RoutedDolevBroadcast(BroadcastProtocol):
    """Reliable communication over precomputed vertex-disjoint routes.

    Parameters
    ----------
    topology:
        The full communication graph, known to every process in this
        variant.  Routes are computed lazily per destination and cached.
    """

    def __init__(
        self,
        process_id: int,
        config: SystemConfig,
        neighbors: Iterable[int],
        topology: Topology,
    ) -> None:
        super().__init__(process_id, config, neighbors)
        if frozenset(self.neighbors) != topology.neighbors(process_id):
            raise TopologyError(
                "the declared neighbors do not match the known topology"
            )
        self.topology = topology
        self._routes_cache: Dict[int, List[Tuple[int, ...]]] = {}
        self._verifiers: Dict[BrachaMessage, DisjointPathVerifier] = {}

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        content = BrachaMessage(
            mtype=MessageType.SEND, source=self.process_id, bid=bid, payload=payload
        )
        commands: List[Command] = []
        self.delivered[(self.process_id, bid)] = payload
        commands.append(RCDeliver(payload=payload, source=self.process_id))
        for destination in self.config.processes:
            if destination == self.process_id:
                continue
            for route in self._routes_to(destination):
                commands.append(
                    SendTo(dest=route[0], message=RoutedMessage(content=content, route=route))
                )
        return commands

    def on_message(self, sender: int, message: RoutedMessage) -> List[Command]:
        if not isinstance(message, RoutedMessage) or not isinstance(
            message.content, BrachaMessage
        ):
            return []
        if not message.route or message.route[0] != self.process_id:
            # Mis-routed (or forged) message: not addressed to this process.
            return []
        remaining = message.route[1:]
        traversed = message.traversed
        if remaining:
            # Intermediate hop: forward along the route, recording ourselves.
            next_hop = remaining[0]
            if next_hop not in self.neighbors:
                return []  # the route does not follow the real topology
            forwarded = RoutedMessage(
                content=message.content,
                route=remaining,
                traversed=traversed + (self.process_id,),
            )
            return [SendTo(dest=next_hop, message=forwarded)]
        return self._deliver_attempt(sender, message)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _routes_to(self, destination: int) -> List[Tuple[int, ...]]:
        routes = self._routes_cache.get(destination)
        if routes is None:
            routes = disjoint_routes(
                self.topology, self.process_id, destination, self.config.min_connectivity
            )
            self._routes_cache[destination] = routes
        return routes

    def _deliver_attempt(self, sender: int, message: RoutedMessage) -> List[Command]:
        content = message.content
        key = (content.source, content.bid)
        if key in self.delivered:
            return []
        verifier = self._verifiers.get(content)
        if verifier is None:
            verifier = DisjointPathVerifier(self.config.disjoint_paths_required)
            self._verifiers[content] = verifier
        intermediaries = set(message.traversed)
        intermediaries.add(sender)
        intermediaries.discard(content.source)
        intermediaries.discard(self.process_id)
        direct = sender == content.source and not message.traversed
        result = verifier.add_path(() if direct else tuple(sorted(intermediaries)))
        if not result.newly_satisfied:
            return []
        self.delivered[key] = content.payload
        return [RCDeliver(payload=content.payload, source=content.source)]

    def state_size_estimate(self) -> int:
        """Stored routes and verification state (memory proxy)."""
        routes = sum(len(r) for r in self._routes_cache.values())
        verifiers = sum(v.state_size_estimate() for v in self._verifiers.values())
        return routes + verifiers


__all__ = ["RoutedDolevBroadcast", "RoutedMessage", "disjoint_routes"]
