"""The cross-layer Bracha-Dolev protocol (the paper's contribution).

The protocol merges the Bracha and Dolev layers of the state-of-the-art
combination so that the MBD.1–12 modifications of Sec. 6 can be applied:

* the *Dolev role* of the protocol disseminates *contents* — (SEND |
  ECHO | READY, creator) pairs of a payload — through the partially
  connected network, accumulating transmission paths and delivering a
  content once ``f + 1`` node-disjoint paths have been received
  (or directly from its creator, MD.1);
* the *Bracha role* counts Dolev-delivered ECHO and READY contents per
  payload value and drives the phase transitions: echo quorum
  ``⌈(N+f+1)/2⌉`` ⇒ own READY, ``f+1`` READYs ⇒ own READY
  (amplification), ``f+1`` ECHOs ⇒ own ECHO (echo amplification,
  required by MBD.2), ``2f+1`` READYs ⇒ BRB-delivery;
* cross-layer modifications change what is put on the wire: payloads are
  replaced by per-neighbor local identifiers after their first
  transmission (MBD.1), SENDs become single-hop (MBD.2), simultaneous
  relays/creations are merged into ECHO_ECHO / READY_ECHO messages
  (MBD.3/4), redundant fields are dropped (MBD.5), and several rules
  suppress messages that are no longer useful (MBD.6–10) or restrict who
  creates messages and to how many neighbors they are sent (MBD.11–12).

The defaults correspond to the *lat. & bdw.* configuration of Sec. 7.4;
pass an explicit :class:`~repro.core.modifications.ModificationSet` to
select any other combination (including the plain *BDopt* baseline).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import SystemConfig
from repro.core.events import Command, SendTo
from repro.core.messages import CrossLayerMessage, MessageType
from repro.core.modifications import ModificationSet
from repro.core.protocol import BroadcastProtocol
from repro.brb.optimized.state import (
    BroadcastSlot,
    ContentRecord,
    PayloadRecord,
    PlannedMessage,
)
from repro.paths.disjoint import DisjointPathVerifier

BroadcastKey = Tuple[int, int]

#: Upper bound on messages queued per (neighbor, unknown local id) (MBD.1).
_MAX_PENDING_PER_LOCAL_ID = 64

#: Shared empty command list returned when a message produced nothing —
#: the common case.  Callers must treat returned command lists as
#: read-only unless they made them (see :meth:`on_message`).
_NO_COMMANDS: List["Command"] = []

#: Local aliases: enum attribute access goes through a descriptor on every
#: lookup, which the per-message paths below cannot afford.
_SEND = MessageType.SEND
_ECHO = MessageType.ECHO
_READY = MessageType.READY
_ECHO_ECHO = MessageType.ECHO_ECHO
_READY_ECHO = MessageType.READY_ECHO


class CrossLayerBrachaDolev(BroadcastProtocol):
    """Byzantine reliable broadcast on partially connected networks.

    Parameters
    ----------
    process_id, config, neighbors:
        See :class:`~repro.core.protocol.BroadcastProtocol`.
    modifications:
        The MD.1–5 / MBD.1–12 toggles.  Defaults to the paper's
        *lat. & bdw.* configuration (MD.1–5 + MBD.1/7/8/9).
    """

    __slots__ = (
        "mods",
        "_slots",
        "_neighbor_local_ids",
        "_pending_local",
        "_local_id_counter",
        "_groups",
        "_deliveries",
        "_can_merge",
        "_process_set",
        "_n",
        "_delivery_quorum",
        "_dpr",
        "_mbd6",
        "_mbd7",
        "_md4",
        "_md5",
        "_md2",
    )

    def __init__(
        self,
        process_id: int,
        config: SystemConfig,
        neighbors: Iterable[int],
        *,
        modifications: Optional[ModificationSet] = None,
    ) -> None:
        super().__init__(process_id, config, neighbors)
        config.require_bracha_resilience()
        self.mods = (
            modifications
            if modifications is not None
            else ModificationSet.latency_and_bandwidth_optimized()
        )
        self._slots: Dict[BroadcastKey, BroadcastSlot] = {}
        # MBD.1: mapping, per neighbor, from the neighbor's local payload id
        # to the ``(record, slot)`` pair it refers to, plus a queue of
        # messages received before the mapping was learnt.  The slot is
        # carried alongside the record instead of as a backref on the
        # record itself, keeping the protocol state acyclic so a finished
        # run is reclaimed by reference counting, not cyclic GC.
        self._neighbor_local_ids: Dict[int, Dict[int, tuple]] = {}
        self._pending_local: Dict[Tuple[int, int], List[CrossLayerMessage]] = {}
        self._local_id_counter = 0
        # Scratch group and delivery lists reused across _process calls
        # (cleared on entry).  _process never re-enters itself and both
        # lists are fully consumed (or copied) before the call returns,
        # so reuse is safe and saves two allocations per received message.
        self._groups: List[tuple] = []
        self._deliveries: List[Command] = []
        # MBD.3/4 merging changes wire construction wholesale; precompute
        # which _finalize path applies.
        self._can_merge = self.mods.mbd3_echo_echo or self.mods.mbd4_ready_echo
        # Hot-path aliases of config-derived values (immutable per run).
        self._process_set = config._process_set
        self._n = config.n
        self._delivery_quorum = config.delivery_quorum
        self._dpr = config.disjoint_paths_required
        # Suppression-rule flags read on every received message
        # (ModificationSet is frozen, so snapshotting them is safe).
        mods = self.mods
        self._mbd6 = mods.mbd6_ignore_echo_after_ready
        self._mbd7 = mods.mbd7_ignore_echo_after_delivery
        self._md4 = mods.md4_ignore_paths_with_delivered
        self._md5 = mods.md5_stop_after_delivery
        self._md2 = mods.md2_empty_path_after_delivery

    # ------------------------------------------------------------------
    # Constructors matching the paper's named configurations
    # ------------------------------------------------------------------
    @classmethod
    def bdopt(cls, process_id: int, config: SystemConfig, neighbors: Iterable[int]):
        """Cross-layer implementation of the *BDopt* baseline (MD.1–5 only)."""
        return cls(
            process_id,
            config,
            neighbors,
            modifications=ModificationSet.dolev_optimized(),
        )

    @classmethod
    def with_all_modifications(
        cls, process_id: int, config: SystemConfig, neighbors: Iterable[int]
    ):
        """Every MD and MBD modification enabled."""
        return cls(
            process_id, config, neighbors, modifications=ModificationSet.all_enabled()
        )

    # ------------------------------------------------------------------
    # Public protocol interface
    # ------------------------------------------------------------------
    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        slot = self._slot(self.process_id, bid)
        record = slot.payload_record(payload)
        groups: List[tuple] = []
        deliveries: List[Command] = []

        # The source's own SEND content is trivially Dolev-delivered.
        send_record = record.content(
            MessageType.SEND, self.process_id, self.config.disjoint_paths_required
        )
        if not send_record.delivered:
            send_record.delivered = True
            send_record.relayed_empty = True
            targets = self._origination_targets(slot, record, MessageType.SEND)
            path: Optional[Tuple[int, ...]] = None if self.mods.mbd2_single_hop_send else ()
            groups.append((targets, MessageType.SEND, self.process_id, record, path, None))
            # The source reacts to its own SEND (Algorithm 1 sends to Π,
            # which includes the sender itself).
            self._bracha_on_send(slot, record, groups, deliveries)
        return self._finalize(groups) + deliveries

    def on_message(self, sender: int, message: CrossLayerMessage) -> List[Command]:
        if type(message) is not CrossLayerMessage and not isinstance(
            message, CrossLayerMessage
        ):
            return []
        # Fast path — the bulk of a run's traffic after MBD.1 announcement:
        # a payload-free message whose local id is already mapped.  Direct
        # indexing with one KeyError handler beats the chained ``.get``
        # calls because the lookups almost always hit; an unknown sender,
        # an unmapped id and a ``None`` id all miss into the handler.
        if message.payload is None:
            local_id = message.local_payload_id
            try:
                record, slot = self._neighbor_local_ids[sender][local_id]
            except KeyError:
                if local_id is None:
                    # Neither payload nor local id: cannot be interpreted.
                    return []
                queue = self._pending_local.setdefault((sender, local_id), [])
                if len(queue) < _MAX_PENDING_PER_LOCAL_ID:
                    queue.append(message)
                return []
            return self._process(sender, message, record, slot)

        source = message.source if message.source is not None else sender
        bid = message.bid if message.bid is not None else 0
        if not self.config.is_process(source):
            return []
        slot = self._slot(source, bid)
        record = slot.payload_record(message.payload)
        if message.local_payload_id is None:
            return self._process(sender, message, record, slot)
        # MBD.1: learn the sender's local id mapping and unblock whatever
        # was queued on it.
        mapping = self._neighbor_local_ids.setdefault(sender, {})
        mapping.setdefault(message.local_payload_id, (record, slot))
        commands = self._process(sender, message, record, slot)
        pending = self._pending_local.pop((sender, message.local_payload_id), None)
        if pending:
            if commands is _NO_COMMANDS:
                # _process returns a shared empty list; never mutate it.
                commands = []
            for queued in pending:
                commands.extend(self._process(sender, queued, record, slot))
        return commands

    # ------------------------------------------------------------------
    # Message processing
    # ------------------------------------------------------------------
    def _process(
        self,
        sender: int,
        message: CrossLayerMessage,
        record: PayloadRecord,
        slot: BroadcastSlot,
    ) -> List[Command]:
        mtype = message.mtype
        if mtype is _SEND or mtype is _ECHO or mtype is _READY:
            # Single-content messages skip the decomposition list — the
            # merged ECHO_ECHO / READY_ECHO kinds are the rare case.
            if mtype is _SEND:
                creator = record.source
            else:
                creator = message.creator
                if creator is None:
                    creator = sender
            wire_path = message.path or ()
            process_set = self._process_set
            if creator not in process_set or (
                wire_path
                and (
                    len(wire_path) > self._n
                    or not process_set.issuperset(wire_path)
                )
            ):
                # Forged creator or path referencing unknown processes.
                return _NO_COMMANDS
            # MBD.9 bookkeeping: READYs received with an empty path.
            if mtype is _READY and not wire_path:
                seen = record.neighbor_empty_readys.get(sender)
                if seen is None:
                    seen = record.neighbor_empty_readys[sender] = set()
                seen.add(creator)
                if len(seen) >= self._delivery_quorum:
                    slot.neighbors_bd_delivered.add(sender)
            # Inlined prefix of _handle_content: resolve the content
            # record and apply the cheap suppression rules without a
            # call — the vast majority of received messages stop here
            # (MD.5: the content is delivered and announced).
            ckey = (mtype, creator)
            content = record.contents.get(ckey)
            if content is None:
                content = ContentRecord(verifier=DisjointPathVerifier(self._dpr))
                record.contents[ckey] = content
            if not wire_path:
                content.neighbors_delivered.add(sender)
            if mtype is _ECHO and (
                (self._mbd6 and creator in record.delivered_ready_creators)
                or (self._mbd7 and slot.delivered)
            ):
                return _NO_COMMANDS
            if (
                wire_path
                and self._md4
                and not content.neighbors_delivered.isdisjoint(wire_path)
            ):
                return _NO_COMMANDS
            if (
                content.delivered
                and self._md5
                and (content.relayed_empty or not self._md2)
            ):
                return _NO_COMMANDS
            groups = self._groups
            groups.clear()
            deliveries = self._deliveries
            deliveries.clear()
            self._deliver_content(
                sender,
                slot,
                record,
                mtype,
                creator,
                wire_path,
                content,
                groups,
                deliveries,
            )
        else:
            process_set = self._process_set
            groups = self._groups
            groups.clear()
            deliveries = self._deliveries
            deliveries.clear()
            for kind, creator, wire_path in self._decompose(sender, message, record):
                if creator not in process_set:
                    continue
                if wire_path and (
                    len(wire_path) > self._n
                    or not process_set.issuperset(wire_path)
                ):
                    # Forged path referencing unknown processes or absurd
                    # length.
                    continue
                # MBD.9 bookkeeping: READYs received with an empty path.
                if kind is _READY and not wire_path:
                    seen = record.neighbor_empty_readys.get(sender)
                    if seen is None:
                        seen = record.neighbor_empty_readys[sender] = set()
                    seen.add(creator)
                    if len(seen) >= self._delivery_quorum:
                        slot.neighbors_bd_delivered.add(sender)
                self._handle_content(
                    sender, slot, record, kind, creator, wire_path, groups, deliveries
                )
        if groups:
            commands = self._finalize(groups)
            commands.extend(deliveries)
            return commands
        if deliveries:
            return list(deliveries)
        return _NO_COMMANDS

    def _decompose(
        self, sender: int, message: CrossLayerMessage, record: PayloadRecord
    ) -> List[Tuple[MessageType, int, Tuple[int, ...]]]:
        """Split a wire message into its constituent content receptions."""
        path = message.path
        if path is None:
            path = ()
        mtype = message.mtype
        if mtype is _SEND:
            # A SEND is always created by the source of the broadcast.
            return [(_SEND, record.source, path)]
        creator = message.creator if message.creator is not None else sender
        if mtype is _ECHO:
            return [(_ECHO, creator, path)]
        if mtype is _READY:
            return [(_READY, creator, path)]
        embedded = message.embedded_creator
        if embedded is None:
            return []
        if mtype is _ECHO_ECHO:
            return [
                (_ECHO, creator, path),
                (_ECHO, embedded, path + (creator,)),
            ]
        if mtype is _READY_ECHO:
            return [
                (_READY, creator, path),
                (_ECHO, embedded, path + (creator,)),
            ]
        return []

    def _handle_content(
        self,
        sender: int,
        slot: BroadcastSlot,
        record: PayloadRecord,
        kind: MessageType,
        creator: int,
        wire_path: Tuple[int, ...],
        groups: List[tuple],
        deliveries: List[Command],
    ) -> None:
        """Full content reception: suppression prefix plus delivery tail.

        The single-content fast path of :meth:`_process` inlines the
        prefix below and calls :meth:`_deliver_content` directly; this
        method serves the decomposed (merged-kind) receptions.
        """
        mods = self.mods
        ckey = (kind, creator)
        content = record.contents.get(ckey)
        if content is None:
            content = ContentRecord(
                verifier=DisjointPathVerifier(self.config.disjoint_paths_required)
            )
            record.contents[ckey] = content

        if not wire_path:
            # The sender created the content or relayed it after delivering
            # (MD.2); either way it has the content.
            content.neighbors_delivered.add(sender)

        if kind is _ECHO:
            # MBD.6: ignore ECHOs of a process whose READY has been delivered.
            if mods.mbd6_ignore_echo_after_ready and self._ready_delivered(
                record, creator
            ):
                return
            # MBD.7: ignore ECHOs once the broadcast has been BRB-delivered.
            if mods.mbd7_ignore_echo_after_delivery and slot.delivered:
                return
        # MD.4: ignore paths that contain a neighbor that already delivered.
        if (
            wire_path
            and mods.md4_ignore_paths_with_delivered
            and not content.neighbors_delivered.isdisjoint(wire_path)
        ):
            return
        # MD.5: stop relaying a content once delivered and announced (or
        # right after delivery when MD.2's empty-path relay is disabled).
        if (
            content.delivered
            and mods.md5_stop_after_delivery
            and (content.relayed_empty or not mods.md2_empty_path_after_delivery)
        ):
            return

        self._deliver_content(
            sender, slot, record, kind, creator, wire_path, content, groups, deliveries
        )

    def _deliver_content(
        self,
        sender: int,
        slot: BroadcastSlot,
        record: PayloadRecord,
        kind: MessageType,
        creator: int,
        wire_path: Tuple[int, ...],
        content: ContentRecord,
        groups: List[tuple],
        deliveries: List[Command],
    ) -> None:
        """Path accounting, Dolev relay and Bracha transitions of a content."""
        mods = self.mods
        if not wire_path:
            # Empty wire path: the only candidate intermediary is the
            # sender itself (a process never sends to itself, so the
            # ``process_id`` discard cannot apply).
            direct = sender == creator
            intermediaries: Tuple[int, ...] = () if direct else (sender,)
        else:
            direct = False
            members = set(wire_path)
            members.add(sender)
            members.discard(creator)
            members.discard(self.process_id)
            intermediaries = tuple(sorted(members))

        result = content.verifier.add_path(intermediaries)
        newly_delivered = False
        if not content.delivered:
            if (direct and mods.md1_deliver_from_source) or result.newly_satisfied:
                newly_delivered = True
                content.delivered = True
                if kind is _READY:
                    record.delivered_ready_creators.add(creator)
                if mods.md2_empty_path_after_delivery:
                    content.verifier.discard_paths()

        # MBD.2: any ECHO/READY also certifies a path for the SEND content,
        # because in BDopt the relayed (empty-path) SEND would have travelled
        # along the same route as the creator's ECHO.
        send_newly_delivered = False
        if mods.mbd2_single_hop_send and kind is not _SEND:
            send_newly_delivered = self._extract_send_path(
                record, creator, intermediaries, direct
            )

        # Plan the Dolev relay of this content.
        self._plan_relay(
            sender,
            slot,
            record,
            kind,
            creator,
            wire_path,
            content,
            result.stored,
            newly_delivered,
            direct,
            groups,
        )

        # Bracha phase transitions.
        if send_newly_delivered:
            self._bracha_on_send(slot, record, groups, deliveries)
        if newly_delivered:
            if kind is _SEND:
                self._bracha_on_send(slot, record, groups, deliveries)
            elif kind is _ECHO:
                self._bracha_on_echo(slot, record, creator, groups, deliveries)
            elif kind is _READY:
                self._bracha_on_ready(slot, record, creator, groups, deliveries)

    def _extract_send_path(
        self,
        record: PayloadRecord,
        creator: int,
        intermediaries: Tuple[int, ...],
        direct: bool,
    ) -> bool:
        """MBD.2: feed an extracted SEND path and report new delivery."""
        send_record = record.content(
            MessageType.SEND, record.source, self.config.disjoint_paths_required
        )
        if send_record.delivered:
            return False
        if creator == record.source:
            extracted = intermediaries
            extracted_direct = direct
        else:
            extracted = tuple(sorted(set(intermediaries) | {creator}))
            extracted_direct = False
        result = send_record.verifier.add_path(extracted)
        newly = result.newly_satisfied or (
            extracted_direct and self.mods.md1_deliver_from_source
        )
        if newly:
            send_record.delivered = True
            if self.mods.md2_empty_path_after_delivery:
                send_record.verifier.discard_paths()
        return newly

    # ------------------------------------------------------------------
    # Dolev relaying
    # ------------------------------------------------------------------
    def _plan_relay(
        self,
        sender: int,
        slot: BroadcastSlot,
        record: PayloadRecord,
        kind: MessageType,
        creator: int,
        wire_path: Tuple[int, ...],
        content,
        path_stored: bool,
        newly_delivered: bool,
        direct: bool,
        groups: List[tuple],
    ) -> None:
        # MBD.2: SEND messages are single-hop and are never relayed.
        if kind is _SEND and self.mods.mbd2_single_hop_send:
            return

        if newly_delivered and self.mods.md2_empty_path_after_delivery:
            # MD.2: announce the delivery once, with an empty path.  The
            # original sender is *not* excluded from the announcement.
            relay_path: Tuple[int, ...] = ()
            content.relayed_empty = True
            targets = self._relay_targets(slot, record, kind, creator, content, (), None)
        else:
            # MBD.10: a dominated path adds no information — do not relay it.
            if (
                self.mods.mbd10_ignore_superpaths
                and not path_stored
                and not direct
                and not newly_delivered
            ):
                return
            relay_path = wire_path + (sender,)
            targets = self._relay_targets(
                slot, record, kind, creator, content, wire_path, sender
            )
        if targets:
            groups.append((targets, kind, creator, record, relay_path, None))

    def _relay_targets(
        self,
        slot: BroadcastSlot,
        record: PayloadRecord,
        kind: MessageType,
        creator: int,
        content,
        wire_path: Tuple[int, ...],
        sender: Optional[int],
    ) -> List[int]:
        # Allocation-free target selection: instead of building the union
        # of the exclusion sets per relay, each candidate neighbor is
        # checked against the (C-level) memberships directly.
        mods = self.mods
        pid = self.process_id
        nd = content.neighbors_delivered if mods.md3_skip_delivered_neighbors else ()
        bd = slot.neighbors_bd_delivered if mods.mbd9_skip_delivered_neighbors else ()
        rd = (
            record.delivered_ready_creators
            if kind is _ECHO and mods.mbd8_skip_echo_to_ready_neighbors
            else ()
        )
        return [
            q
            for q in self.neighbors
            if q != creator
            and q != pid
            and q != sender
            and q not in wire_path
            and q not in nd
            and q not in bd
            and q not in rd
        ]

    def _origination_targets(
        self, slot: BroadcastSlot, record: PayloadRecord, kind: MessageType
    ) -> List[int]:
        excluded: Set[int] = set()
        if self.mods.mbd9_skip_delivered_neighbors:
            excluded |= slot.neighbors_bd_delivered
        if kind is _ECHO and self.mods.mbd8_skip_echo_to_ready_neighbors:
            excluded |= record.delivered_ready_creators
        targets = [q for q in self.neighbors if q not in excluded]
        if self.mods.mbd12_reduced_fanout:
            limit = self.config.delivery_quorum  # 2f + 1
            if len(targets) > limit:
                targets = self._preferred_targets(record.source, targets, limit)
        return targets

    def _preferred_targets(
        self, source: int, targets: Sequence[int], limit: int
    ) -> List[int]:
        """MBD.12 target selection, preferring MBD.11 role holders if enabled."""
        if not self.mods.mbd11_role_restriction:
            return list(targets)[:limit]
        roles = self.config.echo_generators(source) | self.config.ready_generators(source)
        preferred = [q for q in targets if q in roles]
        others = [q for q in targets if q not in roles]
        return (preferred + others)[:limit]

    # ------------------------------------------------------------------
    # Bracha phase transitions
    # ------------------------------------------------------------------
    def _ready_delivered(self, record: PayloadRecord, creator: int) -> bool:
        return creator in record.delivered_ready_creators

    def _bracha_on_send(
        self,
        slot: BroadcastSlot,
        record: PayloadRecord,
        groups: List[tuple],
        deliveries: List[Command],
    ) -> None:
        if slot.sent_echo:
            return
        self._create_own_echo(slot, record, groups, deliveries)

    def _bracha_on_echo(
        self,
        slot: BroadcastSlot,
        record: PayloadRecord,
        creator: int,
        groups: List[tuple],
        deliveries: List[Command],
    ) -> None:
        if creator in record.echo_creators:
            return
        record.echo_creators.add(creator)
        echo_count = len(record.echo_creators)
        wants_ready = (
            not slot.sent_ready and echo_count >= self.config.echo_quorum
        )
        wants_echo = (
            not slot.sent_echo
            and echo_count >= self.config.echo_amplification_threshold
        )
        # When both an ECHO and a READY become possible, only the READY is
        # sent (Sec. 6.2).
        if wants_ready:
            self._create_own_ready(slot, record, groups, deliveries)
        elif wants_echo:
            self._create_own_echo(slot, record, groups, deliveries)

    def _bracha_on_ready(
        self,
        slot: BroadcastSlot,
        record: PayloadRecord,
        creator: int,
        groups: List[tuple],
        deliveries: List[Command],
    ) -> None:
        if creator not in record.ready_creators:
            record.ready_creators.add(creator)
            # A READY implies its creator's ECHO (Sec. 6.2).
            self._bracha_on_echo(slot, record, creator, groups, deliveries)
        ready_count = len(record.ready_creators)
        if (
            not slot.sent_ready
            and ready_count >= self.config.ready_amplification_threshold
        ):
            self._create_own_ready(slot, record, groups, deliveries)
        if not slot.delivered and ready_count >= self.config.delivery_quorum:
            slot.delivered = True
            deliveries.append(
                self._record_delivery(record.source, record.bid, record.payload)
            )

    def _create_own_echo(
        self,
        slot: BroadcastSlot,
        record: PayloadRecord,
        groups: List[tuple],
        deliveries: List[Command],
    ) -> None:
        if slot.sent_echo:
            return
        if (
            self.mods.mbd11_role_restriction
            and self.process_id not in self.config.echo_generators(record.source)
        ):
            return
        slot.sent_echo = True
        content = record.content(
            MessageType.ECHO, self.process_id, self.config.disjoint_paths_required
        )
        content.delivered = True
        content.relayed_empty = True
        targets = self._origination_targets(slot, record, MessageType.ECHO)
        groups.append((targets, MessageType.ECHO, self.process_id, record, (), None))
        self._bracha_on_echo(slot, record, self.process_id, groups, deliveries)

    def _create_own_ready(
        self,
        slot: BroadcastSlot,
        record: PayloadRecord,
        groups: List[tuple],
        deliveries: List[Command],
    ) -> None:
        if slot.sent_ready:
            return
        if (
            self.mods.mbd11_role_restriction
            and self.process_id not in self.config.ready_generators(record.source)
        ):
            return
        slot.sent_ready = True
        # The READY subsumes this process's ECHO (Sec. 6.2): do not send a
        # separate ECHO afterwards.
        slot.sent_echo = True
        content = record.content(
            MessageType.READY, self.process_id, self.config.disjoint_paths_required
        )
        content.delivered = True
        content.relayed_empty = True
        record.delivered_ready_creators.add(self.process_id)
        targets = self._origination_targets(slot, record, MessageType.READY)
        groups.append((targets, MessageType.READY, self.process_id, record, (), None))
        self._bracha_on_ready(slot, record, self.process_id, groups, deliveries)

    # ------------------------------------------------------------------
    # Wire construction, MBD.3/4 merging and MBD.1/5 field selection
    # ------------------------------------------------------------------
    def _finalize(self, groups: List[tuple]) -> List[Command]:
        if not groups:
            return []
        if self._can_merge:
            planned = [
                PlannedMessage(dest, kind, creator, record, path, embedded)
                for dests, kind, creator, record, path, embedded in groups
                for dest in dests
            ]
            if not planned:
                return []
            if len(planned) > 1:
                planned = self._merge_planned(planned)
            make_wire = self._make_wire
            return [SendTo(p.dest, make_wire(p)) for p in planned]

        # Merging disabled (every named configuration but *all enabled*):
        # emit wire messages group-wise.  ``embedded_creator`` is always
        # None here — merged kinds only exist under MBD.3/4 — so the
        # field-selection logic of _make_wire collapses to two wire
        # variants per group (payload announcement vs. local-id only),
        # each built or fetched from the record's cache at most once.
        commands: List[Command] = []
        mods = self.mods
        mbd1 = mods.mbd1_local_payload_ids
        mbd5 = mods.mbd5_optional_fields
        pid = self.process_id
        for dests, kind, creator, record, path, _embedded in groups:
            if not dests:
                continue
            if mbd1:
                local_id = record.my_local_id
                if local_id is None:
                    local_id = self._local_id_counter
                    record.my_local_id = local_id
                    self._local_id_counter += 1
            else:
                local_id = None
            if kind is _SEND or (mbd5 and creator == pid and path == ()):
                # SENDs never carry a creator; a newly created message's
                # creator is implied by the authenticated link (Sec. 6.3).
                creator_field = None
            else:
                creator_field = creator
            wire_cache = record.wire_cache
            announced = record.announced_to
            wire_payload = wire_bare = None
            for dest in dests:
                if mbd1 and dest in announced:
                    wire = wire_bare
                    if wire is None:
                        key = (kind, creator_field, None, False, path)
                        wire = wire_cache.get(key)
                        if wire is None:
                            wire = CrossLayerMessage(
                                mtype=kind,
                                source=None if mbd5 else record.source,
                                bid=None if mbd5 else record.bid,
                                creator=creator_field,
                                embedded_creator=None,
                                payload=None,
                                local_payload_id=local_id,
                                path=path,
                            )
                            wire_cache[key] = wire
                        wire_bare = wire
                else:
                    if mbd1:
                        announced.add(dest)
                    wire = wire_payload
                    if wire is None:
                        key = (kind, creator_field, None, True, path)
                        wire = wire_cache.get(key)
                        if wire is None:
                            source_field = record.source
                            if kind is _SEND and mods.mbd2_single_hop_send and mbd5:
                                source_field = None
                            wire = CrossLayerMessage(
                                mtype=kind,
                                source=source_field,
                                bid=record.bid,
                                creator=creator_field,
                                embedded_creator=None,
                                payload=record.payload,
                                local_payload_id=local_id,
                                path=path,
                            )
                            wire_cache[key] = wire
                        wire_payload = wire
                commands.append(SendTo(dest, wire))
        return commands

    def _merge_planned(self, planned: List[PlannedMessage]) -> List[PlannedMessage]:
        if len(planned) == 1 or not (
            self.mods.mbd3_echo_echo or self.mods.mbd4_ready_echo
        ):
            return planned
        result: List[PlannedMessage] = []
        consumed = [False] * len(planned)
        for i, first in enumerate(planned):
            if consumed[i]:
                continue
            if first.embedded_creator is not None or first.kind is _SEND:
                result.append(first)
                continue
            partner_index = None
            for j in range(i + 1, len(planned)):
                second = planned[j]
                if consumed[j] or second.embedded_creator is not None:
                    continue
                if (
                    second.dest != first.dest
                    or second.record is not first.record
                    or second.path != first.path
                    or second.path is None
                    or second.kind is _SEND
                ):
                    continue
                kinds = {first.kind, second.kind}
                if kinds == {_ECHO, _READY}:
                    if not self.mods.mbd4_ready_echo:
                        continue
                elif kinds == {_ECHO}:
                    if not self.mods.mbd3_echo_echo:
                        continue
                    if first.creator == second.creator:
                        continue
                else:
                    continue
                partner_index = j
                break
            if partner_index is None:
                result.append(first)
                continue
            second = planned[partner_index]
            consumed[partner_index] = True
            if first.kind is _READY or second.kind is _READY:
                outer, inner = (
                    (first, second) if first.kind is _READY else (second, first)
                )
            else:
                # Prefer this process's own (newly created) ECHO as the outer
                # message, mirroring the ECHO_ECHO definition of MBD.3.
                outer, inner = (
                    (first, second)
                    if first.creator == self.process_id
                    else (second, first)
                )
            result.append(
                PlannedMessage(
                    dest=outer.dest,
                    kind=outer.kind,
                    creator=outer.creator,
                    record=outer.record,
                    path=outer.path,
                    embedded_creator=inner.creator,
                )
            )
        return result

    def _make_wire(self, planned: PlannedMessage) -> CrossLayerMessage:
        record = planned.record
        mods = self.mods
        include_payload = True
        local_id: Optional[int] = None
        if mods.mbd1_local_payload_ids:
            if record.my_local_id is None:
                record.my_local_id = self._local_id_counter
                self._local_id_counter += 1
            local_id = record.my_local_id
            if planned.dest in record.announced_to:
                include_payload = False
            else:
                record.announced_to.add(planned.dest)

        source_field: Optional[int] = record.source
        bid_field: Optional[int] = record.bid
        payload_field: Optional[bytes] = record.payload if include_payload else None
        if not include_payload and mods.mbd5_optional_fields:
            source_field = None
            bid_field = None

        creator_field: Optional[int] = planned.creator
        if planned.kind is _SEND:
            creator_field = None
            if mods.mbd2_single_hop_send and mods.mbd5_optional_fields:
                source_field = None
        elif (
            mods.mbd5_optional_fields
            and planned.embedded_creator is None
            and planned.creator == self.process_id
            and planned.path == ()
        ):
            # A newly created message: the authenticated link identifies the
            # creator, so the field can be omitted (Sec. 6.3).
            creator_field = None

        if planned.embedded_creator is None:
            mtype = planned.kind
        elif planned.kind is _READY:
            mtype = _READY_ECHO
        else:
            mtype = _ECHO_ECHO

        # Intern the wire message per payload record: the MBD.1 side
        # effects above (local-id allocation, payload announcement) stay
        # outside the cache, but the resulting frozen message is shared
        # between every destination it is byte-identical for.
        # The key omits fields that are constant per record — the payload,
        # local id (allocated once above), and the source/bid pair, which
        # is a pure function of ``include_payload`` and the message type.
        key = (
            mtype,
            creator_field,
            planned.embedded_creator,
            include_payload,
            planned.path,
        )
        cached = record.wire_cache.get(key)
        if cached is None:
            cached = CrossLayerMessage(
                mtype=mtype,
                source=source_field,
                bid=bid_field,
                creator=creator_field,
                embedded_creator=planned.embedded_creator,
                payload=payload_field,
                local_payload_id=local_id,
                path=planned.path,
            )
            record.wire_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _slot(self, source: int, bid: int) -> BroadcastSlot:
        slot = self._slots.get((source, bid))
        if slot is None:
            slot = BroadcastSlot(source=source, bid=bid)
            self._slots[(source, bid)] = slot
        return slot

    def state_size_estimate(self) -> int:
        """Stored paths, combinations and quorum entries (memory proxy)."""
        slots = sum(slot.state_size_estimate() for slot in self._slots.values())
        pending = sum(len(queue) for queue in self._pending_local.values())
        mappings = sum(len(m) for m in self._neighbor_local_ids.values())
        return slots + pending + mappings


__all__ = ["CrossLayerBrachaDolev"]
