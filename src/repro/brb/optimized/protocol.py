"""The cross-layer Bracha-Dolev protocol (the paper's contribution).

The protocol merges the Bracha and Dolev layers of the state-of-the-art
combination so that the MBD.1–12 modifications of Sec. 6 can be applied:

* the *Dolev role* of the protocol disseminates *contents* — (SEND |
  ECHO | READY, creator) pairs of a payload — through the partially
  connected network, accumulating transmission paths and delivering a
  content once ``f + 1`` node-disjoint paths have been received
  (or directly from its creator, MD.1);
* the *Bracha role* counts Dolev-delivered ECHO and READY contents per
  payload value and drives the phase transitions: echo quorum
  ``⌈(N+f+1)/2⌉`` ⇒ own READY, ``f+1`` READYs ⇒ own READY
  (amplification), ``f+1`` ECHOs ⇒ own ECHO (echo amplification,
  required by MBD.2), ``2f+1`` READYs ⇒ BRB-delivery;
* cross-layer modifications change what is put on the wire: payloads are
  replaced by per-neighbor local identifiers after their first
  transmission (MBD.1), SENDs become single-hop (MBD.2), simultaneous
  relays/creations are merged into ECHO_ECHO / READY_ECHO messages
  (MBD.3/4), redundant fields are dropped (MBD.5), and several rules
  suppress messages that are no longer useful (MBD.6–10) or restrict who
  creates messages and to how many neighbors they are sent (MBD.11–12).

The defaults correspond to the *lat. & bdw.* configuration of Sec. 7.4;
pass an explicit :class:`~repro.core.modifications.ModificationSet` to
select any other combination (including the plain *BDopt* baseline).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import SystemConfig
from repro.core.events import Command, SendTo
from repro.core.messages import CrossLayerMessage, MessageType
from repro.core.modifications import ModificationSet
from repro.core.protocol import BroadcastProtocol
from repro.brb.optimized.state import (
    BroadcastSlot,
    OutgoingBatch,
    PayloadRecord,
    PlannedMessage,
)

BroadcastKey = Tuple[int, int]

#: Upper bound on messages queued per (neighbor, unknown local id) (MBD.1).
_MAX_PENDING_PER_LOCAL_ID = 64


class CrossLayerBrachaDolev(BroadcastProtocol):
    """Byzantine reliable broadcast on partially connected networks.

    Parameters
    ----------
    process_id, config, neighbors:
        See :class:`~repro.core.protocol.BroadcastProtocol`.
    modifications:
        The MD.1–5 / MBD.1–12 toggles.  Defaults to the paper's
        *lat. & bdw.* configuration (MD.1–5 + MBD.1/7/8/9).
    """

    def __init__(
        self,
        process_id: int,
        config: SystemConfig,
        neighbors: Iterable[int],
        *,
        modifications: Optional[ModificationSet] = None,
    ) -> None:
        super().__init__(process_id, config, neighbors)
        config.require_bracha_resilience()
        self.mods = (
            modifications
            if modifications is not None
            else ModificationSet.latency_and_bandwidth_optimized()
        )
        self._slots: Dict[BroadcastKey, BroadcastSlot] = {}
        # MBD.1: mapping, per neighbor, from the neighbor's local payload id
        # to the payload it refers to, plus a queue of messages received
        # before the mapping was learnt.
        self._neighbor_local_ids: Dict[int, Dict[int, Tuple[int, int, bytes]]] = {}
        self._pending_local: Dict[Tuple[int, int], List[CrossLayerMessage]] = {}
        self._local_id_counter = 0

    # ------------------------------------------------------------------
    # Constructors matching the paper's named configurations
    # ------------------------------------------------------------------
    @classmethod
    def bdopt(cls, process_id: int, config: SystemConfig, neighbors: Iterable[int]):
        """Cross-layer implementation of the *BDopt* baseline (MD.1–5 only)."""
        return cls(
            process_id,
            config,
            neighbors,
            modifications=ModificationSet.dolev_optimized(),
        )

    @classmethod
    def with_all_modifications(
        cls, process_id: int, config: SystemConfig, neighbors: Iterable[int]
    ):
        """Every MD and MBD modification enabled."""
        return cls(
            process_id, config, neighbors, modifications=ModificationSet.all_enabled()
        )

    # ------------------------------------------------------------------
    # Public protocol interface
    # ------------------------------------------------------------------
    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        slot = self._slot(self.process_id, bid)
        record = slot.payload_record(payload)
        batch = OutgoingBatch()
        deliveries: List[Command] = []

        # The source's own SEND content is trivially Dolev-delivered.
        send_record = record.content(
            MessageType.SEND, self.process_id, self.config.disjoint_paths_required
        )
        if not send_record.delivered:
            send_record.delivered = True
            send_record.relayed_empty = True
            targets = self._origination_targets(slot, record, MessageType.SEND)
            path: Optional[Tuple[int, ...]] = None if self.mods.mbd2_single_hop_send else ()
            batch.add(targets, MessageType.SEND, self.process_id, record, path)
            # The source reacts to its own SEND (Algorithm 1 sends to Π,
            # which includes the sender itself).
            self._bracha_on_send(slot, record, batch, deliveries)
        return self._finalize(batch) + deliveries

    def on_message(self, sender: int, message: CrossLayerMessage) -> List[Command]:
        if not isinstance(message, CrossLayerMessage):
            return []
        commands: List[Command] = []
        for resolved_sender, resolved in self._resolve(sender, message):
            record = resolved[0]
            wire = resolved[1]
            commands.extend(self._process(resolved_sender, wire, record))
        return commands

    # ------------------------------------------------------------------
    # MBD.1: payload resolution and queueing
    # ------------------------------------------------------------------
    def _resolve(
        self, sender: int, message: CrossLayerMessage
    ) -> List[Tuple[int, Tuple[PayloadRecord, CrossLayerMessage]]]:
        """Resolve the payload a message refers to.

        Returns a list of ``(sender, (payload record, message))`` pairs:
        the current message when resolvable, plus any queued messages that
        the current one unblocks by revealing the sender's local id
        mapping.  An unresolvable message is queued and yields nothing.
        """
        results: List[Tuple[int, Tuple[PayloadRecord, CrossLayerMessage]]] = []
        if message.payload is not None:
            source = message.source if message.source is not None else sender
            bid = message.bid if message.bid is not None else 0
            if not self.config.is_process(source):
                return []
            slot = self._slot(source, bid)
            record = slot.payload_record(message.payload)
            if message.local_payload_id is not None:
                mapping = self._neighbor_local_ids.setdefault(sender, {})
                mapping.setdefault(message.local_payload_id, record.key)
                results.append((sender, (record, message)))
                # Unblock messages queued on this (sender, local id).
                pending = self._pending_local.pop((sender, message.local_payload_id), [])
                results.extend((sender, (record, queued)) for queued in pending)
            else:
                results.append((sender, (record, message)))
            return results

        if message.local_payload_id is not None:
            mapping = self._neighbor_local_ids.get(sender, {})
            key = mapping.get(message.local_payload_id)
            if key is None:
                queue = self._pending_local.setdefault(
                    (sender, message.local_payload_id), []
                )
                if len(queue) < _MAX_PENDING_PER_LOCAL_ID:
                    queue.append(message)
                return []
            source, bid, payload = key
            record = self._slot(source, bid).payload_record(payload)
            return [(sender, (record, message))]

        # Neither payload nor local id: the message cannot be interpreted.
        return []

    # ------------------------------------------------------------------
    # Message processing
    # ------------------------------------------------------------------
    def _process(
        self, sender: int, message: CrossLayerMessage, record: PayloadRecord
    ) -> List[Command]:
        slot = self._slot(record.source, record.bid)
        batch = OutgoingBatch()
        deliveries: List[Command] = []

        for kind, creator, wire_path in self._decompose(sender, message, record):
            if not self.config.is_process(creator):
                continue
            if len(wire_path) > self.config.n or any(
                not self.config.is_process(p) for p in wire_path
            ):
                # Forged path referencing unknown processes or absurd length.
                continue
            # MBD.9 bookkeeping: READYs received with an empty path.
            if kind == MessageType.READY and not wire_path:
                seen = record.neighbor_empty_readys.setdefault(sender, set())
                seen.add(creator)
                if len(seen) >= self.config.delivery_quorum:
                    slot.neighbors_bd_delivered.add(sender)
            self._handle_content(
                sender, slot, record, kind, creator, wire_path, batch, deliveries
            )
        return self._finalize(batch) + deliveries

    def _decompose(
        self, sender: int, message: CrossLayerMessage, record: PayloadRecord
    ) -> List[Tuple[MessageType, int, Tuple[int, ...]]]:
        """Split a wire message into its constituent content receptions."""
        path = message.effective_path
        creator = message.creator if message.creator is not None else sender
        if message.mtype == MessageType.SEND:
            # A SEND is always created by the source of the broadcast.
            return [(MessageType.SEND, record.source, path)]
        if message.mtype == MessageType.ECHO:
            return [(MessageType.ECHO, creator, path)]
        if message.mtype == MessageType.READY:
            return [(MessageType.READY, creator, path)]
        embedded = message.embedded_creator
        if embedded is None:
            return []
        if message.mtype == MessageType.ECHO_ECHO:
            return [
                (MessageType.ECHO, creator, path),
                (MessageType.ECHO, embedded, path + (creator,)),
            ]
        if message.mtype == MessageType.READY_ECHO:
            return [
                (MessageType.READY, creator, path),
                (MessageType.ECHO, embedded, path + (creator,)),
            ]
        return []

    def _handle_content(
        self,
        sender: int,
        slot: BroadcastSlot,
        record: PayloadRecord,
        kind: MessageType,
        creator: int,
        wire_path: Tuple[int, ...],
        batch: OutgoingBatch,
        deliveries: List[Command],
    ) -> None:
        content = record.content(kind, creator, self.config.disjoint_paths_required)

        if not wire_path:
            # The sender created the content or relayed it after delivering
            # (MD.2); either way it has the content.
            content.neighbors_delivered.add(sender)

        # MBD.6: ignore ECHOs of a process whose READY has been delivered.
        if (
            kind == MessageType.ECHO
            and self.mods.mbd6_ignore_echo_after_ready
            and self._ready_delivered(record, creator)
        ):
            return
        # MBD.7: ignore ECHOs once the broadcast has been BRB-delivered.
        if (
            kind == MessageType.ECHO
            and self.mods.mbd7_ignore_echo_after_delivery
            and slot.delivered
        ):
            return
        # MD.4: ignore paths that contain a neighbor that already delivered.
        if (
            self.mods.md4_ignore_paths_with_delivered
            and wire_path
            and set(wire_path) & content.neighbors_delivered
        ):
            return
        # MD.5: stop relaying a content once delivered and announced (or
        # right after delivery when MD.2's empty-path relay is disabled).
        if (
            content.delivered
            and self.mods.md5_stop_after_delivery
            and (content.relayed_empty or not self.mods.md2_empty_path_after_delivery)
        ):
            return

        direct = not wire_path and sender == creator
        if direct:
            intermediaries: Tuple[int, ...] = ()
        else:
            members = set(wire_path)
            members.add(sender)
            members.discard(creator)
            members.discard(self.process_id)
            intermediaries = tuple(sorted(members))

        result = content.verifier.add_path(intermediaries)
        newly_delivered = False
        if not content.delivered:
            if (direct and self.mods.md1_deliver_from_source) or result.newly_satisfied:
                newly_delivered = True
                content.delivered = True
                if self.mods.md2_empty_path_after_delivery:
                    content.verifier.discard_paths()

        # MBD.2: any ECHO/READY also certifies a path for the SEND content,
        # because in BDopt the relayed (empty-path) SEND would have travelled
        # along the same route as the creator's ECHO.
        send_newly_delivered = False
        if (
            self.mods.mbd2_single_hop_send
            and kind in (MessageType.ECHO, MessageType.READY)
        ):
            send_newly_delivered = self._extract_send_path(
                record, creator, intermediaries, direct
            )

        # Plan the Dolev relay of this content.
        self._plan_relay(
            sender,
            slot,
            record,
            kind,
            creator,
            wire_path,
            content,
            result.stored,
            newly_delivered,
            direct,
            batch,
        )

        # Bracha phase transitions.
        if send_newly_delivered:
            self._bracha_on_send(slot, record, batch, deliveries)
        if newly_delivered:
            if kind == MessageType.SEND:
                self._bracha_on_send(slot, record, batch, deliveries)
            elif kind == MessageType.ECHO:
                self._bracha_on_echo(slot, record, creator, batch, deliveries)
            elif kind == MessageType.READY:
                self._bracha_on_ready(slot, record, creator, batch, deliveries)

    def _extract_send_path(
        self,
        record: PayloadRecord,
        creator: int,
        intermediaries: Tuple[int, ...],
        direct: bool,
    ) -> bool:
        """MBD.2: feed an extracted SEND path and report new delivery."""
        send_record = record.content(
            MessageType.SEND, record.source, self.config.disjoint_paths_required
        )
        if send_record.delivered:
            return False
        if creator == record.source:
            extracted = intermediaries
            extracted_direct = direct
        else:
            extracted = tuple(sorted(set(intermediaries) | {creator}))
            extracted_direct = False
        result = send_record.verifier.add_path(extracted)
        newly = result.newly_satisfied or (
            extracted_direct and self.mods.md1_deliver_from_source
        )
        if newly:
            send_record.delivered = True
            if self.mods.md2_empty_path_after_delivery:
                send_record.verifier.discard_paths()
        return newly

    # ------------------------------------------------------------------
    # Dolev relaying
    # ------------------------------------------------------------------
    def _plan_relay(
        self,
        sender: int,
        slot: BroadcastSlot,
        record: PayloadRecord,
        kind: MessageType,
        creator: int,
        wire_path: Tuple[int, ...],
        content,
        path_stored: bool,
        newly_delivered: bool,
        direct: bool,
        batch: OutgoingBatch,
    ) -> None:
        # MBD.2: SEND messages are single-hop and are never relayed.
        if kind == MessageType.SEND and self.mods.mbd2_single_hop_send:
            return

        if newly_delivered and self.mods.md2_empty_path_after_delivery:
            # MD.2: announce the delivery once, with an empty path.
            relay_path: Tuple[int, ...] = ()
            content.relayed_empty = True
            exclude: Set[int] = set()
        else:
            # MBD.10: a dominated path adds no information — do not relay it.
            if (
                self.mods.mbd10_ignore_superpaths
                and not path_stored
                and not direct
                and not newly_delivered
            ):
                return
            relay_path = wire_path + (sender,)
            exclude = set(wire_path) | {sender}

        targets = self._relay_targets(slot, record, kind, creator, content, exclude)
        if targets:
            batch.add(targets, kind, creator, record, relay_path)

    def _relay_targets(
        self,
        slot: BroadcastSlot,
        record: PayloadRecord,
        kind: MessageType,
        creator: int,
        content,
        exclude: Set[int],
    ) -> List[int]:
        excluded = set(exclude)
        excluded.add(creator)
        excluded.add(self.process_id)
        if self.mods.md3_skip_delivered_neighbors:
            excluded |= content.neighbors_delivered
        if self.mods.mbd9_skip_delivered_neighbors:
            excluded |= slot.neighbors_bd_delivered
        if kind == MessageType.ECHO and self.mods.mbd8_skip_echo_to_ready_neighbors:
            excluded |= record.ready_delivered_neighbors(self.neighbors)
        return [q for q in self.neighbors if q not in excluded]

    def _origination_targets(
        self, slot: BroadcastSlot, record: PayloadRecord, kind: MessageType
    ) -> List[int]:
        excluded: Set[int] = set()
        if self.mods.mbd9_skip_delivered_neighbors:
            excluded |= slot.neighbors_bd_delivered
        if kind == MessageType.ECHO and self.mods.mbd8_skip_echo_to_ready_neighbors:
            excluded |= record.ready_delivered_neighbors(self.neighbors)
        targets = [q for q in self.neighbors if q not in excluded]
        if self.mods.mbd12_reduced_fanout:
            limit = self.config.delivery_quorum  # 2f + 1
            if len(targets) > limit:
                targets = self._preferred_targets(record.source, targets, limit)
        return targets

    def _preferred_targets(
        self, source: int, targets: Sequence[int], limit: int
    ) -> List[int]:
        """MBD.12 target selection, preferring MBD.11 role holders if enabled."""
        if not self.mods.mbd11_role_restriction:
            return list(targets)[:limit]
        roles = self.config.echo_generators(source) | self.config.ready_generators(source)
        preferred = [q for q in targets if q in roles]
        others = [q for q in targets if q not in roles]
        return (preferred + others)[:limit]

    # ------------------------------------------------------------------
    # Bracha phase transitions
    # ------------------------------------------------------------------
    def _ready_delivered(self, record: PayloadRecord, creator: int) -> bool:
        ready = record.existing_content(MessageType.READY, creator)
        return ready is not None and ready.delivered

    def _bracha_on_send(
        self,
        slot: BroadcastSlot,
        record: PayloadRecord,
        batch: OutgoingBatch,
        deliveries: List[Command],
    ) -> None:
        if slot.sent_echo:
            return
        self._create_own_echo(slot, record, batch, deliveries)

    def _bracha_on_echo(
        self,
        slot: BroadcastSlot,
        record: PayloadRecord,
        creator: int,
        batch: OutgoingBatch,
        deliveries: List[Command],
    ) -> None:
        if creator in record.echo_creators:
            return
        record.echo_creators.add(creator)
        echo_count = len(record.echo_creators)
        wants_ready = (
            not slot.sent_ready and echo_count >= self.config.echo_quorum
        )
        wants_echo = (
            not slot.sent_echo
            and echo_count >= self.config.echo_amplification_threshold
        )
        # When both an ECHO and a READY become possible, only the READY is
        # sent (Sec. 6.2).
        if wants_ready:
            self._create_own_ready(slot, record, batch, deliveries)
        elif wants_echo:
            self._create_own_echo(slot, record, batch, deliveries)

    def _bracha_on_ready(
        self,
        slot: BroadcastSlot,
        record: PayloadRecord,
        creator: int,
        batch: OutgoingBatch,
        deliveries: List[Command],
    ) -> None:
        if creator not in record.ready_creators:
            record.ready_creators.add(creator)
            # A READY implies its creator's ECHO (Sec. 6.2).
            self._bracha_on_echo(slot, record, creator, batch, deliveries)
        ready_count = len(record.ready_creators)
        if (
            not slot.sent_ready
            and ready_count >= self.config.ready_amplification_threshold
        ):
            self._create_own_ready(slot, record, batch, deliveries)
        if not slot.delivered and ready_count >= self.config.delivery_quorum:
            slot.delivered = True
            deliveries.append(
                self._record_delivery(record.source, record.bid, record.payload)
            )

    def _create_own_echo(
        self,
        slot: BroadcastSlot,
        record: PayloadRecord,
        batch: OutgoingBatch,
        deliveries: List[Command],
    ) -> None:
        if slot.sent_echo:
            return
        if (
            self.mods.mbd11_role_restriction
            and self.process_id not in self.config.echo_generators(record.source)
        ):
            return
        slot.sent_echo = True
        content = record.content(
            MessageType.ECHO, self.process_id, self.config.disjoint_paths_required
        )
        content.delivered = True
        content.relayed_empty = True
        targets = self._origination_targets(slot, record, MessageType.ECHO)
        batch.add(targets, MessageType.ECHO, self.process_id, record, ())
        self._bracha_on_echo(slot, record, self.process_id, batch, deliveries)

    def _create_own_ready(
        self,
        slot: BroadcastSlot,
        record: PayloadRecord,
        batch: OutgoingBatch,
        deliveries: List[Command],
    ) -> None:
        if slot.sent_ready:
            return
        if (
            self.mods.mbd11_role_restriction
            and self.process_id not in self.config.ready_generators(record.source)
        ):
            return
        slot.sent_ready = True
        # The READY subsumes this process's ECHO (Sec. 6.2): do not send a
        # separate ECHO afterwards.
        slot.sent_echo = True
        content = record.content(
            MessageType.READY, self.process_id, self.config.disjoint_paths_required
        )
        content.delivered = True
        content.relayed_empty = True
        targets = self._origination_targets(slot, record, MessageType.READY)
        batch.add(targets, MessageType.READY, self.process_id, record, ())
        self._bracha_on_ready(slot, record, self.process_id, batch, deliveries)

    # ------------------------------------------------------------------
    # Wire construction, MBD.3/4 merging and MBD.1/5 field selection
    # ------------------------------------------------------------------
    def _finalize(self, batch: OutgoingBatch) -> List[Command]:
        merged = self._merge_planned(batch.planned)
        return [
            SendTo(dest=planned.dest, message=self._make_wire(planned))
            for planned in merged
        ]

    def _merge_planned(self, planned: List[PlannedMessage]) -> List[PlannedMessage]:
        if not (self.mods.mbd3_echo_echo or self.mods.mbd4_ready_echo):
            return planned
        result: List[PlannedMessage] = []
        consumed = [False] * len(planned)
        for i, first in enumerate(planned):
            if consumed[i]:
                continue
            if first.embedded_creator is not None or first.kind == MessageType.SEND:
                result.append(first)
                continue
            partner_index = None
            for j in range(i + 1, len(planned)):
                second = planned[j]
                if consumed[j] or second.embedded_creator is not None:
                    continue
                if (
                    second.dest != first.dest
                    or second.record is not first.record
                    or second.path != first.path
                    or second.path is None
                    or second.kind == MessageType.SEND
                ):
                    continue
                kinds = {first.kind, second.kind}
                if kinds == {MessageType.ECHO, MessageType.READY}:
                    if not self.mods.mbd4_ready_echo:
                        continue
                elif kinds == {MessageType.ECHO}:
                    if not self.mods.mbd3_echo_echo:
                        continue
                    if first.creator == second.creator:
                        continue
                else:
                    continue
                partner_index = j
                break
            if partner_index is None:
                result.append(first)
                continue
            second = planned[partner_index]
            consumed[partner_index] = True
            if MessageType.READY in (first.kind, second.kind):
                outer, inner = (
                    (first, second) if first.kind == MessageType.READY else (second, first)
                )
            else:
                # Prefer this process's own (newly created) ECHO as the outer
                # message, mirroring the ECHO_ECHO definition of MBD.3.
                outer, inner = (
                    (first, second)
                    if first.creator == self.process_id
                    else (second, first)
                )
            result.append(
                PlannedMessage(
                    dest=outer.dest,
                    kind=outer.kind,
                    creator=outer.creator,
                    record=outer.record,
                    path=outer.path,
                    embedded_creator=inner.creator,
                )
            )
        return result

    def _make_wire(self, planned: PlannedMessage) -> CrossLayerMessage:
        record = planned.record
        mods = self.mods
        include_payload = True
        local_id: Optional[int] = None
        if mods.mbd1_local_payload_ids:
            if record.my_local_id is None:
                record.my_local_id = self._local_id_counter
                self._local_id_counter += 1
            local_id = record.my_local_id
            if planned.dest in record.announced_to:
                include_payload = False
            else:
                record.announced_to.add(planned.dest)

        source_field: Optional[int] = record.source
        bid_field: Optional[int] = record.bid
        payload_field: Optional[bytes] = record.payload if include_payload else None
        if not include_payload and mods.mbd5_optional_fields:
            source_field = None
            bid_field = None

        creator_field: Optional[int] = planned.creator
        if planned.kind == MessageType.SEND:
            creator_field = None
            if mods.mbd2_single_hop_send and mods.mbd5_optional_fields:
                source_field = None
        elif (
            mods.mbd5_optional_fields
            and planned.embedded_creator is None
            and planned.creator == self.process_id
            and planned.path == ()
        ):
            # A newly created message: the authenticated link identifies the
            # creator, so the field can be omitted (Sec. 6.3).
            creator_field = None

        if planned.embedded_creator is None:
            mtype = planned.kind
        elif planned.kind == MessageType.READY:
            mtype = MessageType.READY_ECHO
        else:
            mtype = MessageType.ECHO_ECHO

        return CrossLayerMessage(
            mtype=mtype,
            source=source_field,
            bid=bid_field,
            creator=creator_field,
            embedded_creator=planned.embedded_creator,
            payload=payload_field,
            local_payload_id=local_id,
            path=planned.path,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _slot(self, source: int, bid: int) -> BroadcastSlot:
        slot = self._slots.get((source, bid))
        if slot is None:
            slot = BroadcastSlot(source=source, bid=bid)
            self._slots[(source, bid)] = slot
        return slot

    def state_size_estimate(self) -> int:
        """Stored paths, combinations and quorum entries (memory proxy)."""
        slots = sum(slot.state_size_estimate() for slot in self._slots.values())
        pending = sum(len(queue) for queue in self._pending_local.values())
        mappings = sum(len(m) for m in self._neighbor_local_ids.values())
        return slots + pending + mappings


__all__ = ["CrossLayerBrachaDolev"]
