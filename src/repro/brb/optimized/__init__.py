"""Cross-layer Bracha-Dolev protocol with the MBD.1–12 modifications.

This subpackage implements the paper's main contribution (Sec. 5 and 6):
a single protocol that collapses the Bracha and Dolev layers so that
cross-layer optimizations can be applied.  Every modification MBD.1–12 is
individually toggleable through a
:class:`~repro.core.modifications.ModificationSet`, as are Bonomi et
al.'s MD.1–5 Dolev-layer optimizations, which allows the benchmarks to
reproduce the per-modification impact study of the evaluation.
"""

from repro.brb.optimized.protocol import CrossLayerBrachaDolev

__all__ = ["CrossLayerBrachaDolev"]
