"""State kept by the cross-layer Bracha-Dolev protocol.

The protocol tracks three levels of state:

* one :class:`BroadcastSlot` per ``(source, bid)`` pair — the Bracha-level
  flags (``sent_echo`` / ``sent_ready`` / ``delivered``) that a correct
  process sets at most once per broadcast identifier;
* one :class:`PayloadRecord` per distinct payload observed for a slot —
  quorum bookkeeping is per payload value so that an equivocating
  Byzantine source cannot split correct processes (BRB-Agreement);
* one :class:`ContentRecord` per Dolev *content* — a (SEND/ECHO/READY,
  creator) pair of a payload — holding the disjoint-path verifier and the
  per-content dissemination flags of MD.1–5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.messages import MessageType
from repro.paths.disjoint import DisjointPathVerifier

#: Identifies a Dolev content within a payload: (kind, creator).
ContentKey = Tuple[MessageType, int]

#: Identifies a payload: (source, bid, payload bytes).
PayloadKey = Tuple[int, int, bytes]


@dataclass(slots=True)
class ContentRecord:
    """Dissemination state of one (kind, creator) content of a payload."""

    verifier: DisjointPathVerifier
    delivered: bool = False
    relayed_empty: bool = False
    #: Neighbors that sent an empty path for this content (they have it).
    neighbors_delivered: Set[int] = field(default_factory=set)

    def state_size_estimate(self) -> int:
        return self.verifier.state_size_estimate() + len(self.neighbors_delivered)


@dataclass(slots=True)
class PayloadRecord:
    """Per-payload quorum and dissemination bookkeeping."""

    source: int
    bid: int
    payload: bytes
    #: Dolev contents of this payload, keyed by (kind, creator).
    contents: Dict[ContentKey, ContentRecord] = field(default_factory=dict)
    #: Creators whose ECHO has been Dolev-delivered (or implied by a READY).
    echo_creators: Set[int] = field(default_factory=set)
    #: Creators whose READY has been Dolev-delivered.
    ready_creators: Set[int] = field(default_factory=set)
    #: Local identifier chosen by this process for the payload (MBD.1).
    my_local_id: Optional[int] = None
    #: Neighbors that have been sent the payload together with our local id.
    announced_to: Set[int] = field(default_factory=set)
    #: Per neighbor, the READY creators received with an empty path (MBD.9).
    neighbor_empty_readys: Dict[int, Set[int]] = field(default_factory=dict)
    #: Creators whose READY *content* is Dolev-delivered, maintained
    #: incrementally as contents transition to delivered.  MBD.8 consults
    #: this on every ECHO relay instead of probing the contents dict per
    #: neighbor.
    delivered_ready_creators: Set[int] = field(default_factory=set)
    #: Interned wire messages, keyed by every field that varies between
    #: them (the payload bytes are fixed per record).  A fan-out of the
    #: same content to many neighbors reuses one frozen message object.
    wire_cache: Dict[Tuple, object] = field(default_factory=dict)

    @property
    def key(self) -> PayloadKey:
        return (self.source, self.bid, self.payload)

    def content(self, kind: MessageType, creator: int, required_paths: int) -> ContentRecord:
        """Get or create the content record for ``(kind, creator)``."""
        record = self.contents.get((kind, creator))
        if record is None:
            record = ContentRecord(verifier=DisjointPathVerifier(required_paths))
            self.contents[(kind, creator)] = record
        return record

    def existing_content(self, kind: MessageType, creator: int) -> Optional[ContentRecord]:
        """The content record for ``(kind, creator)`` if it exists."""
        return self.contents.get((kind, creator))

    def ready_delivered_neighbors(self, neighbors) -> Set[int]:
        """Neighbors whose own READY content has been Dolev-delivered (MBD.8)."""
        delivered = self.delivered_ready_creators
        return {neighbor for neighbor in neighbors if neighbor in delivered}

    def state_size_estimate(self) -> int:
        contents = sum(record.state_size_estimate() for record in self.contents.values())
        quorums = len(self.echo_creators) + len(self.ready_creators)
        empties = sum(len(creators) for creators in self.neighbor_empty_readys.values())
        return contents + quorums + empties


@dataclass(slots=True)
class BroadcastSlot:
    """Per ``(source, bid)`` Bracha flags shared by all payload values."""

    source: int
    bid: int
    sent_echo: bool = False
    sent_ready: bool = False
    delivered: bool = False
    #: Payload records keyed by the payload bytes.
    payloads: Dict[bytes, PayloadRecord] = field(default_factory=dict)
    #: Neighbors that Bracha-delivered this broadcast (MBD.9).
    neighbors_bd_delivered: Set[int] = field(default_factory=set)

    def payload_record(self, payload: bytes) -> PayloadRecord:
        """Get or create the record of one payload value."""
        record = self.payloads.get(payload)
        if record is None:
            # No backref to the slot: the protocol carries the slot
            # alongside the record wherever both are needed, keeping the
            # record graph acyclic (reclaimable by reference counting).
            record = PayloadRecord(source=self.source, bid=self.bid, payload=payload)
            self.payloads[payload] = record
        return record

    def state_size_estimate(self) -> int:
        return sum(record.state_size_estimate() for record in self.payloads.values())


@dataclass(slots=True)
class PlannedMessage:
    """An outgoing message decided while handling one stimulus.

    The protocol accumulates fan-out *groups* — plain ``(dests, kind,
    creator, record, path, embedded_creator)`` tuples — while handling a
    stimulus; when MBD.3 / MBD.4 merging is enabled the groups are
    expanded into per-destination planned messages, merged, and only then
    turned into wire :class:`~repro.core.messages.CrossLayerMessage`
    objects (which is when MBD.1 / MBD.5 decide which fields to include
    for each destination).
    """

    dest: int
    kind: MessageType  # SEND, ECHO or READY (base kind before merging)
    creator: int
    record: PayloadRecord
    #: ``None`` means the wire message carries no path field (MBD.2 SENDs).
    path: Optional[Tuple[int, ...]]
    embedded_creator: Optional[int] = None


__all__ = [
    "ContentKey",
    "PayloadKey",
    "ContentRecord",
    "PayloadRecord",
    "BroadcastSlot",
    "PlannedMessage",
]
