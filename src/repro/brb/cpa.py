"""The Certified Propagation Algorithm (CPA) under the local fault model.

The paper's related work (Sec. 2) and conclusion point at the CPA line of
work — Koo's broadcast algorithm for the *t-locally bounded* fault model,
later named CPA by Pelc and Peleg — as the alternative reliable
communication substrate one can combine with Bracha's protocol, and lists
it as future work.  This module implements that substrate:

* a process delivers a content when it receives it **directly from the
  source**, or when it has received it from at least ``t + 1`` distinct
  neighbors (under the t-locally bounded model at most ``t`` neighbors of
  any correct process are Byzantine, so ``t + 1`` agreeing neighbors
  contain at least one correct one);
* upon delivering, a process relays the content once to all its neighbors.

CPA solves reliable communication (honest dealer) like Dolev's protocol,
but its liveness depends on a topology-specific parameter rather than on
plain vertex connectivity; :func:`cpa_can_complete` provides a sufficient
check based on iterated certification, which the tests use to select
topologies on which CPA terminates.

:class:`BrachaCPABroadcast` layers Bracha's quorum machinery on top of CPA
exactly as the Bracha-Dolev combination does, giving BRB under the local
fault model (footnote 2 of the paper notes the combination requires the
local condition to hold, which is the stronger requirement).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.config import SystemConfig
from repro.core.events import Command, RCDeliver, SendTo
from repro.core.messages import BrachaMessage, DolevMessage, MessageType
from repro.core.protocol import BroadcastProtocol
from repro.topology.generators import Topology
from repro.brb.bracha import BrachaAction, BrachaQuorumState


def cpa_can_complete(topology: Topology, source: int, t: int) -> bool:
    """Sufficient condition for CPA to reach every process from ``source``.

    Simulates fault-free certified propagation: a process is certified when
    it is the source, a neighbor of the source, or has at least ``t + 1``
    certified neighbors.  If every process ends up certified, CPA delivers
    everywhere whenever the fault model holds (Byzantine neighbors can only
    delay certification in the fault-free closure, not prevent it, because
    the closure already requires ``t + 1`` distinct neighbors).
    """
    certified: Set[int] = {source} | set(topology.neighbors(source))
    changed = True
    while changed:
        changed = False
        for node in topology.nodes:
            if node in certified:
                continue
            if len(topology.neighbors(node) & certified) >= t + 1:
                certified.add(node)
                changed = True
    return certified == set(topology.nodes)


class CPABroadcast(BroadcastProtocol):
    """Certified Propagation Algorithm (reliable communication, honest dealer).

    Parameters
    ----------
    t:
        The local fault bound: at most ``t`` Byzantine processes in any
        correct process's neighborhood.  Defaults to ``config.f``.
    """

    def __init__(
        self,
        process_id: int,
        config: SystemConfig,
        neighbors: Iterable[int],
        *,
        t: Optional[int] = None,
    ) -> None:
        super().__init__(process_id, config, neighbors)
        self.t = config.f if t is None else t
        if self.t < 0:
            raise ValueError("the local fault bound t must be non-negative")
        # Per content: the set of neighbors it has been received from.
        self._witnesses: Dict[BrachaMessage, Set[int]] = defaultdict(set)
        self._relayed: Set[BrachaMessage] = set()

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        content = BrachaMessage(
            mtype=MessageType.SEND, source=self.process_id, bid=bid, payload=payload
        )
        commands = self._relay(content)
        commands.extend(self._deliver(content))
        return commands

    def on_message(self, sender: int, message: DolevMessage) -> List[Command]:
        if not isinstance(message, DolevMessage) or not isinstance(
            message.content, BrachaMessage
        ):
            return []
        content = message.content
        if not self.config.is_process(content.source):
            return []
        self._witnesses[content].add(sender)
        commands: List[Command] = []
        if self._certified(sender, content):
            commands.extend(self._on_certified(content))
        return commands

    # ------------------------------------------------------------------
    # CPA rules
    # ------------------------------------------------------------------
    def _certified(self, sender: int, content: BrachaMessage) -> bool:
        origin = content.creator if content.creator is not None else content.source
        if sender == origin:
            return True
        return len(self._witnesses[content]) >= self.t + 1

    def _on_certified(self, content: BrachaMessage) -> List[Command]:
        commands: List[Command] = []
        if content not in self._relayed:
            commands.extend(self._relay(content))
        commands.extend(self._deliver(content))
        return commands

    def _relay(self, content: BrachaMessage) -> List[Command]:
        self._relayed.add(content)
        message = DolevMessage(content=content, path=())
        return [SendTo(dest=q, message=message) for q in self.neighbors]

    def _deliver(self, content: BrachaMessage) -> List[Command]:
        key = (content.source, content.bid)
        if key in self.delivered:
            return []
        self.delivered[key] = content.payload
        return [RCDeliver(payload=content.payload, source=content.source)]

    def state_size_estimate(self) -> int:
        """Stored witness sets (memory proxy)."""
        return sum(len(w) for w in self._witnesses.values())


class BrachaCPABroadcast(BroadcastProtocol):
    """Bracha's BRB over CPA dissemination (local fault model).

    Every SEND / ECHO / READY message is certified-propagated instead of
    being Dolev-flooded; the quorum machinery is the standard Bracha one.
    Compared to Bracha-Dolev this requires the *t-locally bounded* fault
    assumption and a CPA-completable topology, but avoids the exponential
    path bookkeeping entirely.
    """

    def __init__(
        self,
        process_id: int,
        config: SystemConfig,
        neighbors: Iterable[int],
        *,
        t: Optional[int] = None,
    ) -> None:
        super().__init__(process_id, config, neighbors)
        config.require_bracha_resilience()
        self.t = config.f if t is None else t
        self._states: Dict[Tuple[int, int], BrachaQuorumState] = {}
        self._witnesses: Dict[BrachaMessage, Set[int]] = defaultdict(set)
        self._relayed: Set[BrachaMessage] = set()
        self._cpa_delivered: Set[BrachaMessage] = set()

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        content = BrachaMessage(
            mtype=MessageType.SEND, source=self.process_id, bid=bid, payload=payload
        )
        return self._originate(content)

    def on_message(self, sender: int, message: DolevMessage) -> List[Command]:
        if not isinstance(message, DolevMessage) or not isinstance(
            message.content, BrachaMessage
        ):
            return []
        content = message.content
        if not self.config.is_process(content.source):
            return []
        self._witnesses[content].add(sender)
        origin = content.creator if content.creator is not None else content.source
        certified = sender == origin or len(self._witnesses[content]) >= self.t + 1
        if not certified or content in self._cpa_delivered:
            return []
        self._cpa_delivered.add(content)
        commands: List[Command] = []
        if content not in self._relayed:
            self._relayed.add(content)
            relay = DolevMessage(content=content, path=())
            commands.extend(SendTo(dest=q, message=relay) for q in self.neighbors)
        commands.extend(self._on_content_certified(content))
        return commands

    # ------------------------------------------------------------------
    # Bracha layer
    # ------------------------------------------------------------------
    def _state(self, key: Tuple[int, int]) -> BrachaQuorumState:
        state = self._states.get(key)
        if state is None:
            state = BrachaQuorumState(config=self.config)
            self._states[key] = state
        return state

    def _originate(self, content: BrachaMessage) -> List[Command]:
        self._cpa_delivered.add(content)
        self._relayed.add(content)
        message = DolevMessage(content=content, path=())
        commands: List[Command] = [SendTo(dest=q, message=message) for q in self.neighbors]
        commands.extend(self._on_content_certified(content))
        return commands

    def _on_content_certified(self, content: BrachaMessage) -> List[Command]:
        key = content.broadcast_id
        state = self._state(key)
        creator = content.creator if content.creator is not None else content.source
        if content.mtype == MessageType.SEND:
            actions = state.on_send(content.payload) if creator == content.source else []
        elif content.mtype == MessageType.ECHO:
            actions = state.on_echo(creator, content.payload)
        elif content.mtype == MessageType.READY:
            actions = state.on_ready(creator, content.payload)
        else:
            actions = []
        return self._apply_actions(key, actions)

    def _apply_actions(
        self, key: Tuple[int, int], actions: List[BrachaAction]
    ) -> List[Command]:
        source, bid = key
        commands: List[Command] = []
        for action in actions:
            if action.kind == "deliver":
                commands.append(self._record_delivery(source, bid, action.payload))
                continue
            mtype = MessageType.ECHO if action.kind == "echo" else MessageType.READY
            message = BrachaMessage(
                mtype=mtype,
                source=source,
                bid=bid,
                payload=action.payload,
                creator=self.process_id,
            )
            commands.extend(self._originate(message))
        return commands

    def state_size_estimate(self) -> int:
        """Witness sets plus quorum entries (memory proxy)."""
        witnesses = sum(len(w) for w in self._witnesses.values())
        quorums = sum(
            len(vs.echo_senders) + len(vs.ready_senders)
            for state in self._states.values()
            for vs in state.values.values()
        )
        return witnesses + quorums


__all__ = ["CPABroadcast", "BrachaCPABroadcast", "cpa_can_complete"]
