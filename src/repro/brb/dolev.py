"""Dolev's reliable communication on unknown topologies (Algorithm 2).

Dolev's protocol floods a content through the network while accumulating,
in each message, the path of processes it traversed.  A process delivers
a content once it has received it through ``f + 1`` node-disjoint paths,
which is guaranteed to happen when the communication graph is at least
``2f + 1``-vertex-connected (Menger's theorem + pigeonhole).

Two classes are provided:

* :class:`DolevDisseminator` — the reusable dissemination engine: it
  manages the per-content path bookkeeping, the relaying rules and
  Bonomi et al.'s MD.1–5 optimizations.  The layered Bracha-Dolev
  combination (:mod:`repro.brb.bracha_dolev`) reuses it for each
  Bracha message it disseminates.
* :class:`DolevBroadcast` — the reliable-communication protocol exposed
  through the standard :class:`~repro.core.protocol.BroadcastProtocol`
  interface (honest-dealer broadcast).  :class:`OptimizedDolevBroadcast`
  is the same protocol with MD.1–5 enabled by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.config import SystemConfig
from repro.core.events import Command, RCDeliver, SendTo
from repro.core.messages import BrachaMessage, DolevMessage, MessageType, Path
from repro.core.modifications import ModificationSet
from repro.core.protocol import BroadcastProtocol
from repro.paths.disjoint import DisjointPathVerifier


def content_origin(content) -> Optional[int]:
    """The process that created a disseminated content.

    For a :class:`BrachaMessage` this is the ``creator`` field when
    present (ECHO/READY messages) and the ``source`` otherwise (SEND
    messages).  Raw byte contents have no known origin.
    """
    if isinstance(content, BrachaMessage):
        return content.creator if content.creator is not None else content.source
    return None


@dataclass
class ContentState:
    """Dissemination state of one content at one process."""

    verifier: DisjointPathVerifier
    delivered: bool = False
    relayed_empty: bool = False
    #: Neighbors known to have delivered the content (they sent an empty path).
    neighbors_delivered: Set[int] = field(default_factory=set)

    def state_size_estimate(self) -> int:
        return self.verifier.state_size_estimate() + len(self.neighbors_delivered)


class DolevDisseminator:
    """Per-content flooding with path accumulation and MD.1–5 support.

    Parameters
    ----------
    process_id / neighbors:
        Identity and direct neighbors of the hosting process.
    required_paths:
        Number of node-disjoint paths required for delivery (``f + 1``).
    modifications:
        The MD.1–5 (and MBD.10) toggles honoured by the disseminator.
    extra_exclusions:
        Optional hook returning additional neighbors to exclude when
        relaying a given content; the layered combination uses it for the
        cross-layer exclusions (e.g. MBD.9).
    """

    def __init__(
        self,
        process_id: int,
        neighbors: Iterable[int],
        required_paths: int,
        modifications: Optional[ModificationSet] = None,
        *,
        extra_exclusions: Optional[Callable[[object], Set[int]]] = None,
    ) -> None:
        self.process_id = process_id
        self.neighbors: Tuple[int, ...] = tuple(sorted(set(neighbors)))
        self.required_paths = required_paths
        self.mods = modifications if modifications is not None else ModificationSet.none()
        self.extra_exclusions = extra_exclusions
        self._contents: Dict[object, ContentState] = {}

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    def _state(self, content) -> ContentState:
        state = self._contents.get(content)
        if state is None:
            state = ContentState(verifier=DisjointPathVerifier(self.required_paths))
            self._contents[content] = state
        return state

    def has_delivered(self, content) -> bool:
        """Whether ``content`` has been Dolev-delivered locally."""
        state = self._contents.get(content)
        return state.delivered if state else False

    def neighbors_that_delivered(self, content) -> FrozenSet[int]:
        """Neighbors known to have Dolev-delivered ``content``."""
        state = self._contents.get(content)
        return frozenset(state.neighbors_delivered) if state else frozenset()

    def state_size_estimate(self) -> int:
        """Stored paths and combinations over all contents (memory proxy)."""
        return sum(state.state_size_estimate() for state in self._contents.values())

    # ------------------------------------------------------------------
    # Dissemination
    # ------------------------------------------------------------------
    def originate(self, content) -> Tuple[List[SendTo], List[object]]:
        """Start the dissemination of a locally created content.

        The creator delivers its own content immediately (Algorithm 2,
        lines 12–13) and sends it with an empty path to its neighbors.
        """
        state = self._state(content)
        if state.delivered:
            return [], []
        state.delivered = True
        state.relayed_empty = True
        targets = self._relay_targets(content, state, exclude=set())
        sends = [SendTo(dest=q, message=DolevMessage(content=content, path=())) for q in targets]
        return sends, [content]

    def on_message(
        self, sender: int, message: DolevMessage
    ) -> Tuple[List[SendTo], List[object]]:
        """Handle a Dolev message received from direct neighbor ``sender``.

        Returns the relays to emit and the contents newly Dolev-delivered
        by this reception.
        """
        content = message.content
        state = self._state(content)
        wire_path: Path = message.path
        origin = content_origin(content)

        if not wire_path:
            # An empty path means the sender created the content or
            # delivered it and is relaying per MD.2: either way it has it.
            state.neighbors_delivered.add(sender)

        direct = not wire_path and sender == origin
        if direct:
            intermediaries: Tuple[int, ...] = ()
        else:
            members = set(wire_path)
            members.add(sender)
            members.discard(origin)
            members.discard(self.process_id)
            intermediaries = tuple(sorted(members))

        # MD.4: ignore paths that contain a neighbor that already delivered.
        if (
            self.mods.md4_ignore_paths_with_delivered
            and wire_path
            and set(wire_path) & state.neighbors_delivered
        ):
            return [], []

        # Drop messages with forged paths referencing absurd identifiers.
        if len(wire_path) > 4096 or any(p < 0 or p >= 2 ** 20 for p in wire_path):
            return [], []

        # MD.5: after delivering and relaying the empty path, stop relaying
        # (or right after delivery when MD.2's empty-path relay is disabled).
        if (
            state.delivered
            and self.mods.md5_stop_after_delivery
            and (state.relayed_empty or not self.mods.md2_empty_path_after_delivery)
        ):
            return [], []

        result = state.verifier.add_path(intermediaries)

        newly_delivered = False
        if not state.delivered:
            if direct and self.mods.md1_deliver_from_source:
                newly_delivered = True
            elif result.newly_satisfied:
                newly_delivered = True
            if newly_delivered:
                state.delivered = True
                if self.mods.md2_empty_path_after_delivery:
                    state.verifier.discard_paths()

        sends = self._plan_relays(
            content, state, sender, wire_path, result.stored, newly_delivered, direct
        )
        return sends, ([content] if newly_delivered else [])

    # ------------------------------------------------------------------
    # Relay planning
    # ------------------------------------------------------------------
    def _plan_relays(
        self,
        content,
        state: ContentState,
        sender: int,
        wire_path: Path,
        path_stored: bool,
        newly_delivered: bool,
        direct: bool,
    ) -> List[SendTo]:
        if newly_delivered and self.mods.md2_empty_path_after_delivery:
            # MD.2: announce the delivery once, with an empty path.
            relay_path: Path = ()
            state.relayed_empty = True
            exclude: Set[int] = set()
        else:
            # MBD.10: a dominated path adds no information — do not relay it.
            if (
                self.mods.mbd10_ignore_superpaths
                and not path_stored
                and not direct
                and not newly_delivered
            ):
                return []
            relay_path = wire_path + (sender,)
            exclude = set(wire_path) | {sender}

        targets = self._relay_targets(content, state, exclude=exclude)
        message = DolevMessage(content=content, path=relay_path)
        return [SendTo(dest=q, message=message) for q in targets]

    def _relay_targets(self, content, state: ContentState, *, exclude: Set[int]) -> List[int]:
        origin = content_origin(content)
        excluded = set(exclude)
        if origin is not None:
            excluded.add(origin)
        excluded.add(self.process_id)
        if self.mods.md3_skip_delivered_neighbors:
            excluded |= state.neighbors_delivered
        if self.extra_exclusions is not None:
            excluded |= set(self.extra_exclusions(content))
        return [q for q in self.neighbors if q not in excluded]


class DolevBroadcast(BroadcastProtocol):
    """Reliable communication (honest-dealer broadcast) on generic networks.

    The broadcast content carries its source and broadcast identifier (as
    required by Bonomi et al.'s optimized variant, Sec. 3), so deliveries
    report the claimed source of the payload.
    """

    def __init__(
        self,
        process_id: int,
        config: SystemConfig,
        neighbors: Iterable[int],
        *,
        modifications: Optional[ModificationSet] = None,
    ) -> None:
        super().__init__(process_id, config, neighbors)
        self.modifications = (
            modifications if modifications is not None else ModificationSet.none()
        )
        self._disseminator = DolevDisseminator(
            process_id=process_id,
            neighbors=self.neighbors,
            required_paths=config.disjoint_paths_required,
            modifications=self.modifications,
        )

    def broadcast(self, payload: bytes, bid: int = 0) -> List[Command]:
        content = BrachaMessage(
            mtype=MessageType.SEND, source=self.process_id, bid=bid, payload=payload
        )
        sends, delivered = self._disseminator.originate(content)
        commands: List[Command] = list(sends)
        commands.extend(self._deliver_contents(delivered))
        return commands

    def on_message(self, sender: int, message: DolevMessage) -> List[Command]:
        if not isinstance(message, DolevMessage) or not isinstance(
            message.content, BrachaMessage
        ):
            return []
        sends, delivered = self._disseminator.on_message(sender, message)
        commands: List[Command] = list(sends)
        commands.extend(self._deliver_contents(delivered))
        return commands

    def _deliver_contents(self, contents: List[object]) -> List[Command]:
        commands: List[Command] = []
        for content in contents:
            key = (content.source, content.bid)
            if key in self.delivered:
                continue
            self.delivered[key] = content.payload
            commands.append(RCDeliver(payload=content.payload, source=content.source))
        return commands

    def state_size_estimate(self) -> int:
        """Stored paths and combinations (memory proxy, Sec. 7.3)."""
        return self._disseminator.state_size_estimate()


class OptimizedDolevBroadcast(DolevBroadcast):
    """Dolev's protocol with Bonomi et al.'s MD.1–5 optimizations enabled."""

    def __init__(
        self,
        process_id: int,
        config: SystemConfig,
        neighbors: Iterable[int],
        *,
        modifications: Optional[ModificationSet] = None,
    ) -> None:
        mods = modifications if modifications is not None else ModificationSet.dolev_optimized()
        super().__init__(process_id, config, neighbors, modifications=mods)


__all__ = [
    "DolevDisseminator",
    "DolevBroadcast",
    "OptimizedDolevBroadcast",
    "ContentState",
    "content_origin",
]
