"""Communication-graph generation and analysis.

The paper evaluates the protocols on random regular graphs generated with
NetworkX and filtered so that their vertex connectivity is at least
``2f + 1``.  This package provides that workload generator plus a few
deterministic topologies (Harary graphs, rings, complete graphs, …) used
by the tests, and analysis helpers (vertex connectivity, disjoint-path
counts) used to validate that a topology meets the protocol requirements.
"""

from repro.topology.generators import (
    Topology,
    complete_topology,
    harary_topology,
    line_topology,
    random_regular_topology,
    ring_topology,
    torus_topology,
)
from repro.topology.analysis import (
    articulation_points,
    disjoint_path_count,
    meets_connectivity_requirement,
    vertex_connectivity,
)

__all__ = [
    "Topology",
    "random_regular_topology",
    "harary_topology",
    "complete_topology",
    "ring_topology",
    "line_topology",
    "torus_topology",
    "vertex_connectivity",
    "disjoint_path_count",
    "articulation_points",
    "meets_connectivity_requirement",
]
