"""Topology generators used by the tests, examples and benchmarks.

The central type is :class:`Topology`, an immutable view of an undirected
communication graph: each node is a process and each edge an authenticated
point-to-point channel (Sec. 3 of the paper).  The evaluation workload of
the paper — random regular graphs whose vertex connectivity is at least
``2f + 1`` — is produced by :func:`random_regular_topology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

import networkx as nx

from repro.core.errors import TopologyError


@dataclass(frozen=True)
class Topology:
    """An undirected communication graph over integer process identifiers."""

    adjacency: Mapping[int, FrozenSet[int]]
    name: str = "topology"
    _connectivity_cache: list = field(
        default_factory=lambda: [None], init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, nodes: Iterable[int], edges: Iterable[Tuple[int, int]], name: str = "topology"
    ) -> "Topology":
        """Build a topology from an explicit node and edge list."""
        adjacency: Dict[int, set] = {node: set() for node in nodes}
        for u, v in edges:
            if u == v:
                raise TopologyError(f"self-loop on process {u} is not allowed")
            if u not in adjacency or v not in adjacency:
                raise TopologyError(f"edge ({u}, {v}) references an unknown process")
            adjacency[u].add(v)
            adjacency[v].add(u)
        frozen = {node: frozenset(neigh) for node, neigh in adjacency.items()}
        return cls(adjacency=frozen, name=name)

    @classmethod
    def from_networkx(cls, graph: nx.Graph, name: str = "topology") -> "Topology":
        """Build a topology from a NetworkX graph with integer node labels."""
        return cls.from_edges(graph.nodes(), graph.edges(), name=name)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[int, ...]:
        """Sorted tuple of process identifiers."""
        return tuple(sorted(self.adjacency))

    @property
    def n(self) -> int:
        """Number of processes."""
        return len(self.adjacency)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(neigh) for neigh in self.adjacency.values()) // 2

    def neighbors(self, node: int) -> FrozenSet[int]:
        """Neighbors of ``node``."""
        try:
            return self.adjacency[node]
        except KeyError as exc:
            raise TopologyError(f"unknown process {node}") from exc

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return len(self.neighbors(node))

    def min_degree(self) -> int:
        """Smallest degree over the graph."""
        return min(len(neigh) for neigh in self.adjacency.values())

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` share an authenticated channel."""
        return v in self.adjacency.get(u, frozenset())

    def to_networkx(self) -> nx.Graph:
        """Return an equivalent NetworkX graph."""
        graph = nx.Graph()
        graph.add_nodes_from(self.adjacency)
        for node, neigh in self.adjacency.items():
            graph.add_edges_from((node, other) for other in neigh if node < other)
        return graph

    def vertex_connectivity(self) -> int:
        """Vertex connectivity of the graph (cached after the first call)."""
        if self._connectivity_cache[0] is None:
            graph = self.to_networkx()
            if self.n <= 1:
                value = 0
            elif self.is_fully_connected():
                value = self.n - 1
            else:
                value = nx.node_connectivity(graph)
            self._connectivity_cache[0] = value
        return self._connectivity_cache[0]

    def is_fully_connected(self) -> bool:
        """Whether every pair of processes shares a channel."""
        return all(len(neigh) == self.n - 1 for neigh in self.adjacency.values())

    def __iter__(self):
        return iter(self.nodes)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def complete_topology(n: int) -> Topology:
    """Fully connected topology over ``n`` processes (Bracha's assumption)."""
    return Topology.from_networkx(nx.complete_graph(n), name=f"complete-{n}")


def ring_topology(n: int) -> Topology:
    """Cycle over ``n`` processes (2-connected; tolerates no Byzantine relay)."""
    if n < 3:
        raise TopologyError("a ring needs at least 3 processes")
    return Topology.from_networkx(nx.cycle_graph(n), name=f"ring-{n}")


def line_topology(n: int) -> Topology:
    """Path graph over ``n`` processes (1-connected; used by negative tests)."""
    if n < 2:
        raise TopologyError("a line needs at least 2 processes")
    return Topology.from_networkx(nx.path_graph(n), name=f"line-{n}")


def torus_topology(rows: int, cols: int) -> Topology:
    """2-D torus grid (4-connected for ``rows, cols >= 3``)."""
    if rows < 3 or cols < 3:
        raise TopologyError("a torus needs at least 3 rows and 3 columns")
    graph = nx.grid_2d_graph(rows, cols, periodic=True)
    relabeled = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    return Topology.from_networkx(relabeled, name=f"torus-{rows}x{cols}")


def harary_topology(n: int, k: int) -> Topology:
    """Harary graph ``H(k, n)``: the minimal-edge ``k``-connected graph.

    Useful in tests because its vertex connectivity is exactly ``k`` by
    construction, which exercises the tight case of the ``2f + 1``
    connectivity requirement.
    """
    if k >= n:
        raise TopologyError(f"connectivity k={k} requires more than {k} processes")
    if k < 2:
        raise TopologyError("a Harary graph needs k >= 2")
    graph = nx.hkn_harary_graph(k, n)
    return Topology.from_networkx(graph, name=f"harary-{k}-{n}")


def random_regular_topology(
    n: int,
    k: int,
    *,
    seed: Optional[int] = None,
    min_connectivity: Optional[int] = None,
    max_attempts: int = 50,
) -> Topology:
    """Random ``k``-regular graph with vertex connectivity at least ``min_connectivity``.

    This reproduces the paper's workload generator (Sec. 7.1): a random
    regular graph built with NetworkX [36, 37], regenerated until it meets
    the required connectivity.  By default the required connectivity is
    ``k`` itself, which random regular graphs achieve with overwhelming
    probability for the sizes used in the evaluation.

    Parameters
    ----------
    n:
        Number of processes.
    k:
        Degree of every process (the paper calls this the network
        connectivity).
    seed:
        Seed of the generator; each retry derives a new seed from it so
        the function stays deterministic for a given ``seed``.
    min_connectivity:
        Minimum acceptable vertex connectivity (defaults to ``k``).
    max_attempts:
        Number of regeneration attempts before giving up.
    """
    if k >= n:
        raise TopologyError(f"degree k={k} must be smaller than n={n}")
    if (n * k) % 2 != 0:
        raise TopologyError(f"n*k must be even to build a k-regular graph (n={n}, k={k})")
    target = k if min_connectivity is None else min_connectivity
    if target > k:
        raise TopologyError(
            f"required connectivity {target} cannot exceed the degree k={k}"
        )
    base_seed = 0 if seed is None else seed
    last_connectivity = -1
    for attempt in range(max_attempts):
        graph = nx.random_regular_graph(k, n, seed=base_seed + attempt * 7919)
        topology = Topology.from_networkx(graph, name=f"regular-{n}-{k}-s{base_seed}")
        last_connectivity = topology.vertex_connectivity()
        if last_connectivity >= target:
            return topology
    raise TopologyError(
        f"could not generate a {target}-connected {k}-regular graph with n={n} "
        f"after {max_attempts} attempts (last connectivity: {last_connectivity})"
    )


__all__ = [
    "Topology",
    "complete_topology",
    "ring_topology",
    "line_topology",
    "torus_topology",
    "harary_topology",
    "random_regular_topology",
]
