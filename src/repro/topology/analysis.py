"""Topology analysis helpers.

These functions validate that a communication graph meets the requirements
of the protocols: Dolev's reliable communication requires the graph to be
at least ``2f + 1``-vertex-connected (by Menger's theorem this guarantees
``2f + 1`` vertex-disjoint paths between any two processes), while
Bracha's protocol requires full connectivity.
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx

from repro.core.config import SystemConfig
from repro.core.errors import TopologyError
from repro.topology.generators import Topology


def vertex_connectivity(topology: Topology) -> int:
    """Vertex connectivity of the communication graph."""
    return topology.vertex_connectivity()


def meets_connectivity_requirement(topology: Topology, config: SystemConfig) -> bool:
    """Whether the graph is at least ``2f + 1``-vertex-connected."""
    if config.f == 0:
        return nx.is_connected(topology.to_networkx()) if topology.n > 1 else True
    return topology.vertex_connectivity() >= config.min_connectivity


def require_connectivity(topology: Topology, config: SystemConfig) -> None:
    """Raise :class:`TopologyError` unless the graph is ``2f + 1``-connected."""
    if not meets_connectivity_requirement(topology, config):
        raise TopologyError(
            f"the topology has vertex connectivity {topology.vertex_connectivity()} "
            f"but f={config.f} requires at least {config.min_connectivity}"
        )


def disjoint_path_count(topology: Topology, source: int, target: int) -> int:
    """Number of vertex-disjoint paths between ``source`` and ``target``.

    A direct edge counts as one path.  Used by tests to validate the
    premise of Dolev's correctness argument (Menger's theorem).
    """
    if source == target:
        raise TopologyError("source and target must differ")
    graph = topology.to_networkx()
    if graph.has_edge(source, target):
        # ``node_disjoint_paths`` requires non-adjacent endpoints; remove the
        # edge, count internally-disjoint paths, then add the direct edge back.
        graph = graph.copy()
        graph.remove_edge(source, target)
        if not nx.has_path(graph, source, target):
            return 1
        return 1 + len(list(nx.node_disjoint_paths(graph, source, target)))
    return len(list(nx.node_disjoint_paths(graph, source, target)))


def articulation_points(topology: Topology) -> Tuple[int, ...]:
    """Processes whose removal disconnects the graph, sorted.

    Empty for every biconnected graph — in particular for any topology
    meeting the ``2f + 1``-connectivity requirement with ``f >= 1``.  The
    adversary placement strategies use these as the highest-leverage spots
    for Byzantine processes on weakly connected graphs.
    """
    return tuple(sorted(nx.articulation_points(topology.to_networkx())))


def all_pairs_min_disjoint_paths(topology: Topology) -> Tuple[int, List[Tuple[int, int]]]:
    """Minimum number of vertex-disjoint paths over all process pairs.

    Returns the minimum and the list of pairs achieving it.  Expensive
    (all-pairs max-flow); intended for tests and small graphs.
    """
    minimum = None
    witnesses: List[Tuple[int, int]] = []
    nodes = topology.nodes
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            count = disjoint_path_count(topology, u, v)
            if minimum is None or count < minimum:
                minimum = count
                witnesses = [(u, v)]
            elif count == minimum:
                witnesses.append((u, v))
    return (minimum if minimum is not None else 0), witnesses


__all__ = [
    "vertex_connectivity",
    "meets_connectivity_requirement",
    "require_connectivity",
    "disjoint_path_count",
    "articulation_points",
    "all_pairs_min_disjoint_paths",
]
