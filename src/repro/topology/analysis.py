"""Topology analysis helpers.

These functions validate that a communication graph meets the requirements
of the protocols: Dolev's reliable communication requires the graph to be
at least ``2f + 1``-vertex-connected (by Menger's theorem this guarantees
``2f + 1`` vertex-disjoint paths between any two processes), while
Bracha's protocol requires full connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import networkx as nx

from repro.core.config import SystemConfig
from repro.core.errors import TopologyError
from repro.topology.generators import Topology


def vertex_connectivity(topology: Topology) -> int:
    """Vertex connectivity of the communication graph."""
    return topology.vertex_connectivity()


def meets_connectivity_requirement(topology: Topology, config: SystemConfig) -> bool:
    """Whether the graph is at least ``2f + 1``-vertex-connected."""
    if config.f == 0:
        return nx.is_connected(topology.to_networkx()) if topology.n > 1 else True
    return topology.vertex_connectivity() >= config.min_connectivity


def require_connectivity(topology: Topology, config: SystemConfig) -> None:
    """Raise :class:`TopologyError` unless the graph is ``2f + 1``-connected."""
    if not meets_connectivity_requirement(topology, config):
        raise TopologyError(
            f"the topology has vertex connectivity {topology.vertex_connectivity()} "
            f"but f={config.f} requires at least {config.min_connectivity}"
        )


def disjoint_path_count(topology: Topology, source: int, target: int) -> int:
    """Number of vertex-disjoint paths between ``source`` and ``target``.

    A direct edge counts as one path.  Used by tests to validate the
    premise of Dolev's correctness argument (Menger's theorem).
    """
    if source == target:
        raise TopologyError("source and target must differ")
    graph = topology.to_networkx()
    if graph.has_edge(source, target):
        # ``node_disjoint_paths`` requires non-adjacent endpoints; remove the
        # edge, count internally-disjoint paths, then add the direct edge back.
        graph = graph.copy()
        graph.remove_edge(source, target)
        if not nx.has_path(graph, source, target):
            return 1
        return 1 + len(list(nx.node_disjoint_paths(graph, source, target)))
    return len(list(nx.node_disjoint_paths(graph, source, target)))


def articulation_points(topology: Topology) -> Tuple[int, ...]:
    """Processes whose removal disconnects the graph, sorted.

    Empty for every biconnected graph — in particular for any topology
    meeting the ``2f + 1``-connectivity requirement with ``f >= 1``.  The
    adversary placement strategies use these as the highest-leverage spots
    for Byzantine processes on weakly connected graphs.
    """
    return tuple(sorted(nx.articulation_points(topology.to_networkx())))


def all_pairs_min_disjoint_paths(topology: Topology) -> Tuple[int, List[Tuple[int, int]]]:
    """Minimum number of vertex-disjoint paths over all process pairs.

    Returns the minimum and the list of pairs achieving it.  Expensive
    (all-pairs max-flow); intended for tests and small graphs.
    """
    minimum = None
    witnesses: List[Tuple[int, int]] = []
    nodes = topology.nodes
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            count = disjoint_path_count(topology, u, v)
            if minimum is None or count < minimum:
                minimum = count
                witnesses = [(u, v)]
            elif count == minimum:
                witnesses.append((u, v))
    return (minimum if minimum is not None else 0), witnesses


@dataclass(frozen=True)
class ChurnSnapshot:
    """Connectivity of the live graph right after one churn event."""

    time_ms: float
    event: str
    connectivity: int
    meets_bound: bool


@dataclass(frozen=True)
class ChurnConnectivityReport:
    """Whether the ``2f + 1`` bound survived every churn edit of a run.

    ``snapshots[0]`` describes the initial graph (pending joiners
    excluded — they are not members yet); each later snapshot is taken
    immediately after one churn event applied in time order.  ``held``
    is the conjunction of every snapshot's ``meets_bound``.
    """

    required: int
    snapshots: Tuple[ChurnSnapshot, ...]

    @property
    def held(self) -> bool:
        return all(snapshot.meets_bound for snapshot in self.snapshots)


def _live_connectivity(graph: nx.Graph) -> int:
    if graph.number_of_nodes() <= 1:
        return graph.number_of_nodes()
    if not nx.is_connected(graph):
        return 0
    if graph.number_of_nodes() == 2:
        return 1
    return nx.node_connectivity(graph)


def connectivity_under_churn(
    topology: Topology, faults: Sequence[object], f: int
) -> ChurnConnectivityReport:
    """Replay a spec's churn events on a graph copy and check the bound.

    ``faults`` may be any spec fault list; only the churn events
    (``JoinAt``/``LeaveAt``/``RewireLinkAt``) edit the graph — the rest
    are ignored.  Events apply in ``time_ms`` order (spec order breaks
    ties), mirroring the simulator's scheduler.  The paper's bound asks
    for ``2f + 1`` vertex connectivity among the *member* processes; a
    report with ``held=False`` means reliable communication was not
    guaranteed for some portion of the run, so delivery gaps there are
    a topology property, not a protocol bug.
    """
    from repro.scenarios.faults import JoinAt, LeaveAt, RewireLinkAt

    if f < 0:
        raise TopologyError(f"f must be non-negative, got {f}")
    required = 2 * f + 1
    churn = sorted(
        (
            (fault.time_ms, index, fault)
            for index, fault in enumerate(faults)
            if isinstance(fault, (JoinAt, LeaveAt, RewireLinkAt))
        ),
        key=lambda item: (item[0], item[1]),
    )
    graph = topology.to_networkx().copy()
    # Pending joiners are not members of the initial graph.
    for _, _, fault in churn:
        if isinstance(fault, JoinAt):
            graph.remove_node(fault.pid)
    snapshots = [
        ChurnSnapshot(
            time_ms=0.0,
            event="initial",
            connectivity=_live_connectivity(graph),
            meets_bound=_live_connectivity(graph) >= required,
        )
    ]
    for time_ms, _, fault in churn:
        if isinstance(fault, JoinAt):
            graph.add_node(fault.pid)
            for peer in topology.neighbors(fault.pid):
                if graph.has_node(peer):
                    graph.add_edge(fault.pid, peer)
            event = f"join({fault.pid})"
        elif isinstance(fault, LeaveAt):
            if graph.has_node(fault.pid):
                graph.remove_node(fault.pid)
            event = f"leave({fault.pid})"
        else:
            if graph.has_edge(fault.pid, fault.old_peer):
                graph.remove_edge(fault.pid, fault.old_peer)
            if graph.has_node(fault.pid) and graph.has_node(fault.new_peer):
                graph.add_edge(fault.pid, fault.new_peer)
            event = f"rewire({fault.pid}: {fault.old_peer}->{fault.new_peer})"
        connectivity = _live_connectivity(graph)
        snapshots.append(
            ChurnSnapshot(
                time_ms=time_ms,
                event=event,
                connectivity=connectivity,
                meets_bound=connectivity >= required,
            )
        )
    return ChurnConnectivityReport(required=required, snapshots=tuple(snapshots))


__all__ = [
    "vertex_connectivity",
    "meets_connectivity_requirement",
    "require_connectivity",
    "disjoint_path_count",
    "articulation_points",
    "all_pairs_min_disjoint_paths",
    "ChurnSnapshot",
    "ChurnConnectivityReport",
    "connectivity_under_churn",
]
