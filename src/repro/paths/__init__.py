"""Disjoint-path bookkeeping used by the Dolev reliable-communication layer.

A process Dolev-delivers a content once it has received it through at
least ``f + 1`` node-disjoint paths (Sec. 4.2).  Deciding this
incrementally as paths arrive is the computational bottleneck of the
protocol; :class:`DisjointPathVerifier` implements the dynamic-programming
combination scheme the paper describes in Sec. 6.6, and
:class:`PathStore` implements the subpath filtering of MBD.10.
The :mod:`repro.paths.oracle` module provides an exhaustive reference
implementation used by the property-based tests.
"""

from repro.paths.disjoint import DisjointPathVerifier, PathAddResult
from repro.paths.pathset import PathStore
from repro.paths.oracle import max_disjoint_selection

__all__ = ["DisjointPathVerifier", "PathAddResult", "PathStore", "max_disjoint_selection"]
