"""Storage of received transmission paths with subpath filtering.

MBD.10 observes that a path whose node set is a superset of an
already-received path carries no additional information: it cannot help
build a larger set of disjoint paths and its relayed extension would also
be redundant.  :class:`PathStore` keeps the set of received paths as node
bit-sets, rejects dominated (super-)paths, and evicts dominated paths when
a smaller one arrives.

The paper notes that processes represent paths as bit arrays stored in a
list; we do the same, using arbitrary-precision integers as bit sets.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


def path_to_bits(path: Iterable[int]) -> int:
    """Encode a collection of process identifiers as a bit set."""
    bits = 0
    for node in path:
        bits |= 1 << node
    return bits


def bits_to_nodes(bits: int) -> Tuple[int, ...]:
    """Decode a bit set back into a sorted tuple of process identifiers."""
    nodes = []
    index = 0
    while bits:
        if bits & 1:
            nodes.append(index)
        bits >>= 1
        index += 1
    return tuple(nodes)


class PathStore:
    """Set of received paths (as node bit-sets) with dominance filtering."""

    def __init__(self) -> None:
        self._paths: List[int] = []
        self._seen_exact: set = set()
        #: Number of paths offered to the store, including rejected ones.
        self.offered = 0
        #: Number of paths rejected because a sub-path was already stored.
        self.rejected_superpaths = 0

    def __len__(self) -> int:
        return len(self._paths)

    def __contains__(self, path: Iterable[int]) -> bool:
        return path_to_bits(path) in self._seen_exact

    @property
    def paths(self) -> Tuple[int, ...]:
        """The stored paths as bit sets."""
        return tuple(self._paths)

    def node_sets(self) -> Tuple[Tuple[int, ...], ...]:
        """The stored paths as tuples of process identifiers."""
        return tuple(bits_to_nodes(bits) for bits in self._paths)

    def add(self, path: Iterable[int]) -> bool:
        """Add a path; return ``False`` when it is dominated by a stored one.

        A path is dominated when a stored path uses a subset of its nodes
        (MBD.10).  When the new path dominates stored paths, those are
        evicted so the store stays minimal.
        """
        return self.add_bits(path_to_bits(path))

    def add_bits(self, bits: int) -> bool:
        """:meth:`add` for a path already encoded as a node bit-set.

        The disjoint-path verifier computes the bit encoding anyway;
        accepting it directly avoids encoding the same path twice per
        reception.
        """
        self.offered += 1
        if bits in self._seen_exact:
            self.rejected_superpaths += 1
            return False
        for stored in self._paths:
            if stored & bits == stored:  # stored ⊆ new: new path is redundant
                self.rejected_superpaths += 1
                return False
        # Evict stored paths dominated by the new, smaller path.
        self._paths = [stored for stored in self._paths if stored & bits != bits]
        self._paths.append(bits)
        self._seen_exact = {p for p in self._seen_exact if p & bits != bits}
        self._seen_exact.add(bits)
        return True

    def is_dominated(self, path: Iterable[int]) -> bool:
        """Whether a stored path uses a subset of ``path``'s nodes."""
        bits = path_to_bits(path)
        return any(stored & bits == stored for stored in self._paths)

    def clear(self) -> None:
        """Discard every stored path (used by MD.2 after delivery)."""
        self._paths.clear()
        self._seen_exact.clear()


__all__ = ["PathStore", "path_to_bits", "bits_to_nodes"]
