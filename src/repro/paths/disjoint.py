"""Incremental verification that ``f + 1`` node-disjoint paths were received.

The Dolev layer must decide, every time a new transmission path arrives,
whether the set of received paths now contains ``f + 1`` pairwise
node-disjoint paths.  The decision problem over an arbitrary set of paths
is a set-packing problem; the paper (Sec. 6.6) keeps it tractable in
practice with two ideas that this module implements:

* paths are represented as node bit-sets, and a newly received path is
  combined with the *previously explored combinations* of disjoint paths
  (dynamic programming) instead of recomputing all combinations;
* dominated information is pruned — a path whose node set is a superset
  of an already-received path is ignored, and a combination that uses a
  superset of the nodes of another combination of the same cardinality is
  dropped.

Paths are given to the verifier as their set of *intermediary* processes:
the processes that relayed the content, excluding the content's creator
and the receiving process.  An empty set therefore means the content was
received directly from its creator over the authenticated link; such a
path is disjoint from every other path.

The verifier is *incremental* and *monotonic*: once ``satisfied`` becomes
true it stays true, and adding paths never lowers the best count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.paths.pathset import PathStore, path_to_bits


@dataclass(frozen=True, slots=True)
class PathAddResult:
    """Outcome of feeding one path to the verifier.

    Attributes
    ----------
    stored:
        ``False`` when the path was redundant (already satisfied, already
        seen, or dominated by a previously stored path — the situation
        MBD.10 exploits to stop relaying).
    newly_satisfied:
        ``True`` when this path made the disjoint-path requirement
        satisfied for the first time.
    """

    stored: bool
    newly_satisfied: bool


#: The four possible outcomes, prebuilt: ``add_path`` runs once per
#: received path and the result is immutable, so allocating is waste.
_REDUNDANT = PathAddResult(stored=False, newly_satisfied=False)
_STORED = PathAddResult(stored=True, newly_satisfied=False)
_STORED_SATISFIED = PathAddResult(stored=True, newly_satisfied=True)


class DisjointPathVerifier:
    """Decides whether ``required`` node-disjoint paths have been received.

    Parameters
    ----------
    required:
        The number of pairwise node-disjoint paths needed (``f + 1``).
    max_combinations:
        Safety cap on the number of memoized disjoint-path combinations
        per cardinality.  When the cap is hit the verifier becomes
        conservative: it may detect the disjoint paths later than an
        exhaustive search would, but it never reports a false positive.
    """

    def __init__(self, required: int, *, max_combinations: int = 4096) -> None:
        if required < 1:
            raise ValueError("at least one disjoint path must be required")
        self.required = required
        self.max_combinations = max_combinations
        self._store = PathStore()
        self._has_direct = False
        # _frontier[c] = list of node-union bit-sets achievable with c
        # pairwise-disjoint received (non-empty) paths.
        self._frontier: Dict[int, List[int]] = {}
        self._best_indirect = 0
        self._satisfied = False
        #: Number of combination operations performed (CPU proxy metric).
        self.combination_operations = 0

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def satisfied(self) -> bool:
        """True once ``required`` pairwise-disjoint paths have been received."""
        return self._satisfied

    @property
    def best_count(self) -> int:
        """Largest number of pairwise-disjoint received paths found so far."""
        return self._best_indirect + (1 if self._has_direct else 0)

    @property
    def has_direct_path(self) -> bool:
        """Whether the content was received directly from its creator."""
        return self._has_direct

    @property
    def stored_path_count(self) -> int:
        """Number of (non-dominated) paths currently stored."""
        return len(self._store) + (1 if self._has_direct else 0)

    @property
    def stored_combination_count(self) -> int:
        """Number of disjoint-path combinations currently memoized."""
        return sum(len(unions) for unions in self._frontier.values())

    def state_size_estimate(self) -> int:
        """Rough memory footprint proxy: stored paths plus combinations."""
        return self.stored_path_count + self.stored_combination_count

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_path(self, intermediaries: Iterable[int]) -> PathAddResult:
        """Record a received path given by its set of intermediary processes.

        Returns a :class:`PathAddResult` describing whether the path was
        stored (i.e. was not redundant) and whether it made the
        requirement satisfied for the first time.
        """
        if self._satisfied:
            return _REDUNDANT
        bits = path_to_bits(intermediaries)
        if bits == 0:
            if self._has_direct:
                return _REDUNDANT
            self._has_direct = True
            return _STORED_SATISFIED if self._check_satisfied() else _STORED
        if not self._store.add_bits(bits):
            return _REDUNDANT

        new_entries: Dict[int, List[int]] = {1: [bits]}
        for count in sorted(self._frontier, reverse=True):
            for union in self._frontier[count]:
                self.combination_operations += 1
                if union & bits == 0:
                    new_entries.setdefault(count + 1, []).append(union | bits)

        for count, unions in sorted(new_entries.items()):
            existing = self._frontier.setdefault(count, [])
            for union in unions:
                if not _is_dominated(union, existing):
                    existing.append(union)
            if len(existing) > self.max_combinations:
                existing.sort(key=_popcount)
                del existing[self.max_combinations :]
            if count > self._best_indirect:
                self._best_indirect = count
        return _STORED_SATISFIED if self._check_satisfied() else _STORED

    def _check_satisfied(self) -> bool:
        """Return ``True`` when the requirement is met for the first time."""
        if not self._satisfied and self.best_count >= self.required:
            self._satisfied = True
            return True
        return False

    def discard_paths(self) -> None:
        """Drop stored paths and combinations (MD.2, after delivery)."""
        self._store.clear()
        self._frontier.clear()


def _popcount(bits: int) -> int:
    return bits.bit_count()


def _is_dominated(union: int, existing: List[int]) -> bool:
    """True when an existing union of the same cardinality uses ⊆ nodes."""
    return any(other & union == other for other in existing)


__all__ = ["DisjointPathVerifier", "PathAddResult"]
