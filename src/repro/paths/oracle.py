"""Reference implementations used to validate the incremental verifier.

These functions are exponential-time and intended for tests only:

* :func:`max_disjoint_selection` — exhaustive search for the maximum
  number of pairwise node-disjoint paths in a set of received paths
  (the quantity the incremental :class:`~repro.paths.disjoint.DisjointPathVerifier`
  tracks).
* :func:`graph_disjoint_paths` — vertex-disjoint paths between two nodes
  of a graph, computed with NetworkX's max-flow machinery (Menger's
  theorem), used to validate topology requirements.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Tuple

import networkx as nx

from repro.topology.generators import Topology


def max_disjoint_selection(paths: Sequence[Iterable[int]]) -> int:
    """Maximum number of pairwise node-disjoint paths among ``paths``.

    Each path is the set of its intermediary processes; the empty path is
    disjoint from every other path.  Exhaustive branch-and-bound search.
    """
    frozen: List[FrozenSet[int]] = [frozenset(p) for p in paths]
    # Empty paths are disjoint from everything but count only once each.
    has_direct = any(not p for p in frozen)
    nonempty = tuple(sorted({p for p in frozen if p}, key=sorted))
    best = _search(nonempty, frozenset())
    return best + (1 if has_direct else 0)


def _search(paths: Tuple[FrozenSet[int], ...], used: FrozenSet[int]) -> int:
    best = 0
    for index, path in enumerate(paths):
        if path & used:
            continue
        candidate = 1 + _search(paths[index + 1 :], used | path)
        if candidate > best:
            best = candidate
    return best


def graph_disjoint_paths(topology: Topology, source: int, target: int) -> List[List[int]]:
    """Vertex-disjoint paths between ``source`` and ``target`` in the graph.

    A direct edge is returned as the two-node path ``[source, target]``.
    """
    graph = topology.to_networkx()
    paths: List[List[int]] = []
    if graph.has_edge(source, target):
        paths.append([source, target])
        graph = graph.copy()
        graph.remove_edge(source, target)
    if nx.has_path(graph, source, target):
        paths.extend(list(p) for p in nx.node_disjoint_paths(graph, source, target))
    return paths


__all__ = ["max_disjoint_selection", "graph_disjoint_paths"]
