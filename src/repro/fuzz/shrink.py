"""Delta-debugging shrinker for oracle-violating scenario specs.

Given a spec whose run violates the safety oracle,
:func:`shrink_failing_spec` greedily walks the reduction operators of
:mod:`repro.scenarios.reduce` — drop fault events, shrink the topology
toward the ``2f + 1`` bound, shorten the workload, simplify the delay
model — re-evaluating the oracle after every step and keeping a
reduction only when the original violation survives (the reduced run
must violate at least every invariant the original run violated).  The
loop restarts from the first operator after each accepted reduction and
stops at a fixpoint: a spec none of whose reductions still violates —
the minimal reproducer, the way hypothesis shrinks failing examples.

Everything is deterministic: operators and their candidates come in a
fixed order, evaluation is memoized by scenario hash (a simulation run
is a pure function of the spec), and the accepted steps are recorded so
a shrink can be audited and replayed.  :func:`regression_stub` renders
the minimal spec as a ready-to-paste pytest test.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.scenarios.conformance import run_conformance
from repro.scenarios.engine import ScenarioResult, run_scenario
from repro.scenarios.jsonio import dumps_spec_json
from repro.scenarios.oracle import OracleViolation, check_result
from repro.scenarios.reduce import reduction_candidates, spec_size
from repro.scenarios.spec import ScenarioSpec

#: ``evaluate(spec) -> violations`` — the shrinker's only view of a run.
SpecEvaluator = Callable[[ScenarioSpec], Sequence[OracleViolation]]

#: Attempt ceiling: candidate evaluations, not accepted steps.  Shrinks
#: converge in far fewer; the ceiling turns a pathological interaction
#: into a truncated-but-valid result instead of an endless loop.
DEFAULT_MAX_ATTEMPTS = 2000


def oracle_evaluator(
    evaluate_result: Optional[Callable[[ScenarioResult], Sequence[OracleViolation]]] = None,
) -> SpecEvaluator:
    """The default evaluator: run the spec, check the safety oracle.

    ``evaluate_result`` replaces the oracle check (the fuzz farm passes
    its own — possibly instrumented — result checker through here, and
    the tests inject crafted violation detectors).  Evaluations are
    memoized by scenario hash: the simulation backend is deterministic,
    so re-running an already-judged candidate could only waste time.
    """
    check = check_result if evaluate_result is None else evaluate_result
    memo: Dict[str, Tuple[OracleViolation, ...]] = {}

    def evaluate(spec: ScenarioSpec) -> Tuple[OracleViolation, ...]:
        key = spec.scenario_hash()
        if key not in memo:
            memo[key] = tuple(check(run_scenario(spec)))
        return memo[key]

    return evaluate


def conformance_evaluator(
    backends: Sequence[str] = ("simulation", "asyncio"),
    *,
    mode: str = "auto",
    overrides: Optional[Dict[str, object]] = None,
    run: Optional[Callable[..., object]] = None,
) -> SpecEvaluator:
    """An evaluator that treats a cross-backend divergence as the bug.

    Runs each candidate on every backend via
    :func:`~repro.scenarios.conformance.run_conformance` and maps each
    verdict mismatch to an ``OracleViolation`` with invariant
    ``"conformance"`` — so :func:`shrink_failing_spec` minimizes
    divergence specs with the exact machinery it uses for single-backend
    oracle violations (a candidate is kept only while the backends still
    disagree).  ``run`` replaces the conformance runner (tests inject
    deterministic fakes; the real one re-executes on live sockets).
    Memoized by scenario hash like :func:`oracle_evaluator`.
    """
    runner = run_conformance if run is None else run
    backends = tuple(backends)
    memo: Dict[str, Tuple[OracleViolation, ...]] = {}

    def evaluate(spec: ScenarioSpec) -> Tuple[OracleViolation, ...]:
        key = spec.scenario_hash()
        if key not in memo:
            report = runner(spec, backends, overrides=overrides, mode=mode)
            memo[key] = tuple(
                OracleViolation(invariant="conformance", detail=mismatch)
                for mismatch in report.mismatches()
            )
        return memo[key]

    return evaluate


@dataclass(frozen=True)
class ShrinkStep:
    """One accepted reduction."""

    operator: str
    scenario_hash: str
    size: int


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink: the minimal spec and how it was reached."""

    original: ScenarioSpec
    minimal: ScenarioSpec
    #: Violations of the *minimal* spec (a superset of the original's
    #: violated invariants, by the acceptance rule).
    violations: Tuple[OracleViolation, ...]
    steps: Tuple[ShrinkStep, ...]
    #: Candidate evaluations spent (accepted + rejected).
    attempts: int
    #: Whether the shrink stopped at a true fixpoint (False: attempt
    #: ceiling hit first; the result is still valid, just maybe not
    #: minimal).
    at_fixpoint: bool

    @property
    def reduced(self) -> bool:
        return bool(self.steps)

    @property
    def size_before(self) -> int:
        return spec_size(self.original)

    @property
    def size_after(self) -> int:
        return spec_size(self.minimal)


def _invariants(violations: Sequence[OracleViolation]) -> frozenset:
    return frozenset(violation.invariant for violation in violations)


def shrink_failing_spec(
    spec: ScenarioSpec,
    evaluate: Optional[SpecEvaluator] = None,
    *,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> ShrinkResult:
    """Greedily reduce ``spec`` while its oracle violation survives.

    ``evaluate`` defaults to :func:`oracle_evaluator` (run + safety
    oracle, memoized).  Raises ``ValueError`` when ``spec`` does not
    violate under ``evaluate`` — shrinking a passing spec is a caller
    bug, not an empty result.

    A candidate is accepted when evaluation succeeds (a reduction that
    makes the spec unrunnable is discarded) and the candidate violates
    at least every invariant the original did.  Greedy first-accept with
    operators in fixed order + deterministic evaluation ⇒ the same spec
    shrinks through the same steps every time.
    """
    if evaluate is None:
        evaluate = oracle_evaluator()
    baseline = tuple(evaluate(spec))
    if not baseline:
        raise ValueError(
            f"spec {spec.name!r} (hash {spec.scenario_hash()[:12]}) does not "
            "violate the oracle; nothing to shrink"
        )
    required = _invariants(baseline)

    current = spec
    current_violations = baseline
    steps = []
    attempts = 0
    at_fixpoint = False
    while True:
        progressed = False
        for operator, candidate in reduction_candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                violations = tuple(evaluate(candidate))
            except Exception:
                # The reduction produced a spec the engine rejects
                # (e.g. a cut link the smaller topology no longer has):
                # not a violation-preserving candidate, move on.
                continue
            if violations and required <= _invariants(violations):
                steps.append(
                    ShrinkStep(
                        operator=operator,
                        scenario_hash=candidate.scenario_hash(),
                        size=spec_size(candidate),
                    )
                )
                current = candidate
                current_violations = violations
                progressed = True
                break
        else:
            at_fixpoint = True
        if not progressed:
            break
    return ShrinkResult(
        original=spec,
        minimal=current,
        violations=current_violations,
        steps=tuple(steps),
        attempts=attempts,
        at_fixpoint=at_fixpoint,
    )


def regression_stub(
    spec: ScenarioSpec,
    violations: Sequence[OracleViolation],
    *,
    test_name: Optional[str] = None,
) -> str:
    """A ready-to-paste pytest regression test for a minimal reproducer.

    The stub embeds the spec as JSON (code-refactor-proof via
    :mod:`repro.scenarios.jsonio`), re-runs it and asserts the violated
    invariants are *gone* — paste it once the bug is fixed, or flip the
    assertion to pin the violation while triaging.
    """
    short_hash = spec.scenario_hash()[:12]
    name = test_name or f"test_regression_{short_hash}"
    invariants = sorted(_invariants(violations))
    spec_json = dumps_spec_json(spec)
    body = textwrap.dedent(
        '''\
        def {name}():
            """Shrunk fuzz reproducer {short_hash} (violated: {invariants})."""
            from repro.scenarios import run_scenario
            from repro.scenarios.jsonio import loads_spec_json
            from repro.scenarios.oracle import check_result

            spec = loads_spec_json(SPEC_JSON_{short_hash})
            violations = check_result(run_scenario(spec))
            assert violations == [], [
                (v.invariant, v.detail) for v in violations
            ]
        '''
    ).format(name=name, short_hash=short_hash, invariants=", ".join(invariants))
    spec_literal = f'SPEC_JSON_{short_hash} = r"""\n{spec_json}\n"""\n'
    return spec_literal + "\n\n" + body


__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "SpecEvaluator",
    "oracle_evaluator",
    "conformance_evaluator",
    "ShrinkStep",
    "ShrinkResult",
    "shrink_failing_spec",
    "regression_stub",
]
