"""``python -m repro.fuzz`` — the uninstalled form of ``repro-fuzz``."""

import sys

from repro.fuzz.cli import main

if __name__ == "__main__":
    sys.exit(main())
