"""The fuzzing farm's corpus: interesting specs persisted as JSON.

One record per scenario hash, written atomically to
``<corpus_dir>/<scenario_hash>.json`` — the hash *is* the dedupe key, so
a spec rediscovered by a later fuzz round (or another worker sharing the
directory) is recorded once.  A ``manifest.json`` summarizing the
records (and hashed into the CI corpus cache key) is rewritten after
every farm run.

Record categories (:data:`CATEGORIES`):

* ``oracle_violation`` — the safety oracle fired; the record carries the
  violations, the shrunk minimal spec and a ready-to-paste regression
  test stub;
* ``conformance_divergence`` — the same scenario produced different
  safety verdicts on two execution backends;
* ``near_f_bound`` — a safe run whose Byzantine roster saturated the
  spec's ``f`` budget (the interesting survivors: one more fault and the
  paper's bound is gone);
* ``latency_outlier`` — a delivered run far above the stream's running
  mean latency.

Records are plain JSON on purpose: they diff in review, survive code
refactors (the spec codec of :mod:`repro.scenarios.jsonio` is
closed-world and versioned by construction) and replay from the hash
alone — :meth:`Corpus.replay` re-runs the stored spec through
:func:`~repro.scenarios.engine.run_scenario`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.scenarios.engine import ScenarioResult, run_scenario
from repro.scenarios.jsonio import (
    SpecJSONError,
    spec_from_jsonable,
    spec_to_jsonable,
)
from repro.scenarios.spec import ScenarioSpec

#: Bump when the record layout changes; old records fail validation and
#: are reported (never silently reinterpreted).
RECORD_SCHEMA_VERSION = 1

CATEGORIES = (
    "oracle_violation",
    "conformance_divergence",
    "near_f_bound",
    "latency_outlier",
)

#: Categories :meth:`Corpus.prune` may age out.  Oracle violations and
#: conformance divergences are *bugs* and are kept forever; the survivor
#: tiers below are telemetry whose unbounded growth would make the
#: ``actions/cache`` manifest-hash key churn on every nightly run.
TRANSIENT_CATEGORIES = (
    "near_f_bound",
    "latency_outlier",
)

#: Default per-category cap applied by the fuzz farm after each run.
DEFAULT_TRANSIENT_CAP = 64

_MANIFEST_NAME = "manifest.json"

_TMP_COUNTER = itertools.count()


@dataclass(frozen=True)
class CorpusRecord:
    """One interesting spec, with everything needed to act on it."""

    category: str
    spec: ScenarioSpec
    #: ``(invariant, detail)`` pairs of the oracle violations (empty for
    #: non-violation categories).
    violations: Tuple[Tuple[str, str], ...] = ()
    #: Deterministic run statistics (latency, messages, drops, ...).
    stats: Dict[str, object] = field(default_factory=dict)
    #: The shrunk minimal reproducer, when the shrinker ran.
    shrunk_spec: Optional[ScenarioSpec] = None
    #: Violations of the shrunk spec (they preserve the original's).
    shrunk_violations: Tuple[Tuple[str, str], ...] = ()
    #: Ready-to-paste pytest regression stub for the minimal spec.
    regression_stub: Optional[str] = None
    #: Free-form discovery context (stream seed, cell index, backend...).
    discovery: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(
                f"unknown corpus category {self.category!r}; "
                f"expected one of {CATEGORIES}"
            )

    @property
    def scenario_hash(self) -> str:
        return self.spec.scenario_hash()

    def to_jsonable(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "schema": RECORD_SCHEMA_VERSION,
            "hash": self.scenario_hash,
            "category": self.category,
            "spec": spec_to_jsonable(self.spec),
            "violations": [list(item) for item in self.violations],
            "stats": dict(self.stats),
            "discovery": dict(self.discovery),
            "shrunk_spec": (
                None if self.shrunk_spec is None else spec_to_jsonable(self.shrunk_spec)
            ),
            "shrunk_violations": [list(item) for item in self.shrunk_violations],
            "regression_stub": self.regression_stub,
        }
        return data

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "CorpusRecord":
        problems = validate_record_data(data)
        if problems:
            raise SpecJSONError(
                "invalid corpus record: " + "; ".join(problems)
            )
        shrunk = data.get("shrunk_spec")
        return cls(
            category=data["category"],
            spec=spec_from_jsonable(data["spec"]),
            violations=tuple(
                (str(inv), str(detail)) for inv, detail in data.get("violations", [])
            ),
            stats=dict(data.get("stats", {})),
            shrunk_spec=None if shrunk is None else spec_from_jsonable(shrunk),
            shrunk_violations=tuple(
                (str(inv), str(detail))
                for inv, detail in data.get("shrunk_violations", [])
            ),
            regression_stub=data.get("regression_stub"),
            discovery=dict(data.get("discovery", {})),
        )


def validate_record_data(data: object) -> List[str]:
    """Schema problems of one raw record document (empty = valid).

    This is what the CI fuzz lanes assert over every corpus file: the
    record parses, carries the current schema version, a known category,
    a decodable spec, and a ``hash`` that actually matches the spec.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"record must be a JSON object, got {type(data).__name__}"]
    if data.get("schema") != RECORD_SCHEMA_VERSION:
        problems.append(
            f"schema must be {RECORD_SCHEMA_VERSION}, got {data.get('schema')!r}"
        )
    if data.get("category") not in CATEGORIES:
        problems.append(f"unknown category {data.get('category')!r}")
    for key in ("violations", "shrunk_violations"):
        value = data.get(key, [])
        if not isinstance(value, list) or not all(
            isinstance(item, list) and len(item) == 2 for item in value
        ):
            problems.append(f"{key} must be a list of [invariant, detail] pairs")
    for key in ("stats", "discovery"):
        if not isinstance(data.get(key, {}), dict):
            problems.append(f"{key} must be a JSON object")
    spec = None
    if "spec" not in data:
        problems.append("record lacks a spec")
    else:
        try:
            spec = spec_from_jsonable(data["spec"])
        except SpecJSONError as exc:
            problems.append(f"spec does not decode: {exc}")
        else:
            if not isinstance(spec, ScenarioSpec):
                problems.append("spec decodes to a non-ScenarioSpec")
                spec = None
    if spec is not None and data.get("hash") != spec.scenario_hash():
        problems.append(
            f"hash {data.get('hash')!r} does not match the spec's scenario hash"
        )
    shrunk = data.get("shrunk_spec")
    if shrunk is not None:
        try:
            decoded = spec_from_jsonable(shrunk)
            if not isinstance(decoded, ScenarioSpec):
                problems.append("shrunk_spec decodes to a non-ScenarioSpec")
        except SpecJSONError as exc:
            problems.append(f"shrunk_spec does not decode: {exc}")
    return problems


class Corpus:
    """Directory-backed corpus of :class:`CorpusRecord` keyed by hash."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- paths ----------------------------------------------------------
    def path_for(self, scenario_hash: str) -> Path:
        return self.root / f"{scenario_hash}.json"

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    # -- membership / IO ------------------------------------------------
    def __contains__(self, scenario_hash: str) -> bool:
        return self.path_for(scenario_hash).exists()

    def hashes(self) -> Tuple[str, ...]:
        """Every stored scenario hash, sorted (manifest order)."""
        if not self.root.is_dir():
            return ()
        return tuple(
            sorted(
                path.stem
                for path in self.root.glob("*.json")
                if path.name != _MANIFEST_NAME
            )
        )

    def add(self, record: CorpusRecord) -> bool:
        """Persist ``record`` unless its hash is already present.

        Returns whether a new file was written.  The write is atomic
        (unique temp file renamed into place), so corpora shared between
        concurrent farm processes never hold a half-written record.
        """
        path = self.path_for(record.scenario_hash)
        if path.exists():
            return False
        self.root.mkdir(parents=True, exist_ok=True)
        document = json.dumps(record.to_jsonable(), indent=2, sort_keys=True)
        tmp = path.with_suffix(f".{os.getpid()}.{next(_TMP_COUNTER)}.tmp")
        try:
            tmp.write_text(document + "\n", encoding="utf-8")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True

    def load(self, scenario_hash: str) -> CorpusRecord:
        """Load one record by hash (raises ``SpecJSONError`` if invalid)."""
        path = self.path_for(scenario_hash)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise KeyError(scenario_hash) from None
        except json.JSONDecodeError as exc:
            raise SpecJSONError(f"malformed corpus record {path.name}: {exc}") from exc
        return CorpusRecord.from_jsonable(data)

    def records(self) -> Iterator[CorpusRecord]:
        """Every record, in manifest (sorted-hash) order."""
        for scenario_hash in self.hashes():
            yield self.load(scenario_hash)

    def replay(self, scenario_hash: str) -> ScenarioResult:
        """Re-run a stored spec by hash (determinism makes this exact)."""
        return run_scenario(self.load(scenario_hash).spec)

    # -- retention ------------------------------------------------------
    def prune(
        self,
        *,
        max_per_category: int = DEFAULT_TRANSIENT_CAP,
        categories: Tuple[str, ...] = TRANSIENT_CATEGORIES,
    ) -> Tuple[str, ...]:
        """Bound the transient tiers; returns the removed hashes, sorted.

        For each category in ``categories`` the first
        ``max_per_category`` records *in sorted-hash order* are kept and
        the rest deleted — records carry no timestamp on purpose (the
        corpus is deterministic), so sorted-hash order is the only
        retention order every farm process agrees on, which keeps
        same-seed farm runs writing byte-identical corpora.  Categories
        outside ``categories`` (oracle violations, conformance
        divergences) are never touched.
        """
        if max_per_category < 0:
            raise ValueError(
                f"max_per_category must be non-negative, got {max_per_category}"
            )
        kept_per_category: Dict[str, int] = {}
        removed: List[str] = []
        for scenario_hash in self.hashes():
            try:
                data = json.loads(
                    self.path_for(scenario_hash).read_text(encoding="utf-8")
                )
                category = data.get("category")
            except (OSError, json.JSONDecodeError):
                continue  # leave anything unreadable for validate()
            if category not in categories:
                continue
            kept = kept_per_category.get(category, 0)
            if kept < max_per_category:
                kept_per_category[category] = kept + 1
                continue
            try:
                os.unlink(self.path_for(scenario_hash))
            except OSError:
                continue
            removed.append(scenario_hash)
        return tuple(removed)

    # -- manifest -------------------------------------------------------
    def manifest(self) -> Dict[str, object]:
        """Summary document: every record's hash and category, sorted."""
        entries = []
        for scenario_hash in self.hashes():
            try:
                data = json.loads(
                    self.path_for(scenario_hash).read_text(encoding="utf-8")
                )
                category = data.get("category", "unknown")
            except (OSError, json.JSONDecodeError):
                category = "unreadable"
            entries.append({"hash": scenario_hash, "category": category})
        return {"schema": RECORD_SCHEMA_VERSION, "records": entries}

    def manifest_hash(self) -> str:
        """Stable digest of the manifest — the CI corpus cache key."""
        canonical = json.dumps(self.manifest(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def write_manifest(self) -> Path:
        """Rewrite ``manifest.json`` (returns its path)."""
        self.root.mkdir(parents=True, exist_ok=True)
        document = json.dumps(self.manifest(), indent=2, sort_keys=True)
        tmp = self.manifest_path.with_suffix(f".{os.getpid()}.{next(_TMP_COUNTER)}.tmp")
        try:
            tmp.write_text(document + "\n", encoding="utf-8")
            os.replace(tmp, self.manifest_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return self.manifest_path

    def validate(self) -> Dict[str, List[str]]:
        """Schema problems per record file (empty dict = corpus is clean)."""
        problems: Dict[str, List[str]] = {}
        for scenario_hash in self.hashes():
            path = self.path_for(scenario_hash)
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                problems[path.name] = [f"unreadable: {exc}"]
                continue
            found = validate_record_data(data)
            if data.get("hash") != scenario_hash:
                found.append(
                    f"file name hash {scenario_hash} != record hash {data.get('hash')!r}"
                )
            if found:
                problems[path.name] = found
        return problems


__all__ = [
    "RECORD_SCHEMA_VERSION",
    "CATEGORIES",
    "TRANSIENT_CATEGORIES",
    "DEFAULT_TRANSIENT_CAP",
    "CorpusRecord",
    "Corpus",
    "validate_record_data",
]
