"""The fuzzing farm: budgeted adversarial scenario search, forever.

:class:`FuzzFarm` is the always-on analogue of the oracle suite's
one-shot 60-cell sweep: it streams the unbounded randomized spec stream
of :mod:`repro.fuzz.sample` through a sweep executor under a time or
cell budget, judges every result, and persists the interesting ones to a
:class:`~repro.fuzz.corpus.Corpus`:

* **oracle violations** are shrunk on the spot
  (:mod:`repro.fuzz.shrink`) and recorded with their minimal reproducer
  and a regression test stub;
* (optionally) **cross-backend conformance divergences** are shrunk
  with the conformance evaluator — a candidate survives only while the
  backends still disagree — and recorded with their minimal reproducer;
* **near-f-bound survivors** and **latency outliers** are recorded
  as-is, and their corpus tiers are bounded: after every run the farm
  ages out all but the first ``transient_cap`` records per transient
  category (sorted-hash order, the only order every process agrees on),
  so the CI manifest-hash cache key stays bounded while violation
  records are kept forever.

Dedupe is layered: the shared scenario-hash
:class:`~repro.runner.cache.ResultCache` keeps re-fuzzed cells from
re-executing, and the corpus keys records by the same hash, so a
re-discovered offender never produces a second record.  Everything is
seed-deterministic — two farms with the same seed and cell budget judge
the same cells and write the same records — which is what lets CI replay
any finding.

Executors are pluggable: the default in-process
:class:`~repro.runner.parallel.SweepExecutor` streams cell by cell
(worker churn = process pool); a
:class:`~repro.runner.distributed.DistributedSweepExecutor` (or anything
with a ``run(cells)`` method) is driven in batches instead, inheriting
its lease-timeout requeue and degrade-to-local story.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.runner.parallel import SweepExecutor
from repro.scenarios.conformance import safety_verdict_of
from repro.scenarios.engine import ScenarioResult, run_scenario
from repro.scenarios.oracle import OracleViolation, check_result
from repro.fuzz.corpus import DEFAULT_TRANSIENT_CAP, Corpus, CorpusRecord
from repro.fuzz.sample import stream_fuzz_specs
from repro.fuzz.shrink import (
    ShrinkResult,
    conformance_evaluator,
    oracle_evaluator,
    regression_stub,
    shrink_failing_spec,
)
from repro.scenarios.spec import ScenarioSpec

#: Result checker signature: one run's oracle violations.
ResultChecker = Callable[[ScenarioResult], Sequence[OracleViolation]]

#: Batch size used when driving a non-streaming (e.g. distributed)
#: executor.
DEFAULT_BATCH_SIZE = 16


@dataclass
class FuzzReport:
    """What one budgeted farm run did."""

    cells_run: int = 0
    cache_hits: int = 0
    elapsed_s: float = 0.0
    #: New corpus records written this run, hash by category.
    new_records: Dict[str, List[str]] = field(default_factory=dict)
    #: Cells whose oracle violations were already in the corpus.
    duplicate_violations: int = 0
    #: Shrink statistics of this run's violations.
    shrink_steps: int = 0
    shrink_attempts: int = 0
    #: Transient records (near_f_bound / latency_outlier) aged out of
    #: the corpus at the end of this run.
    pruned_records: int = 0
    manifest_hash: str = ""

    @property
    def violation_count(self) -> int:
        return len(self.new_records.get("oracle_violation", [])) + (
            self.duplicate_violations
        )

    @property
    def exit_code(self) -> int:
        """Process exit status: 0 = oracle green, 2 = violations found."""
        return 2 if self.violation_count else 0

    def record(self, category: str, scenario_hash: str) -> None:
        self.new_records.setdefault(category, []).append(scenario_hash)

    def summary_lines(self) -> List[str]:
        lines = [
            f"cells run: {self.cells_run} (cache hits: {self.cache_hits}) "
            f"in {self.elapsed_s:.1f}s",
        ]
        for category in sorted(self.new_records):
            hashes = self.new_records[category]
            lines.append(f"new {category} records: {len(hashes)}")
            lines.extend(f"  {scenario_hash}" for scenario_hash in hashes)
        if self.duplicate_violations:
            lines.append(
                f"re-discovered known violations: {self.duplicate_violations}"
            )
        if self.shrink_steps or self.shrink_attempts:
            lines.append(
                f"shrinker: {self.shrink_steps} accepted steps / "
                f"{self.shrink_attempts} attempts"
            )
        if self.pruned_records:
            lines.append(f"pruned transient records: {self.pruned_records}")
        lines.append(f"corpus manifest hash: {self.manifest_hash}")
        return lines


class FuzzFarm:
    """Long-lived fuzzing coordinator over a sweep executor.

    Parameters
    ----------
    corpus_dir:
        Where interesting specs are persisted (created on demand).
    cache_dir:
        Shared scenario-hash result cache; ``None`` disables caching
        (every cell re-executes).
    workers:
        Process-pool width of the default executor (ignored when an
        ``executor`` is supplied).
    executor:
        Any object with ``run(cells) -> results``; one exposing
        ``run_stream`` (the in-process :class:`SweepExecutor`) is driven
        cell by cell, anything else — e.g. a
        ``DistributedSweepExecutor`` — in ``batch_size`` batches.
    check:
        Result checker (default: the safety oracle's
        :func:`~repro.scenarios.oracle.check_result`).  Tests inject
        instrumented checkers here; the shrinker sees the same checker,
        so an injected violation shrinks exactly like a real one.
    backends:
        Execution backends the spec stream spreads cells over.
    conformance_backends:
        When set (e.g. ``("simulation", "asyncio")``), every violation-
        free cell is re-run on the *other* backend and diverging safety
        verdicts are recorded — expensive, meant for the nightly lane.
    shrink:
        Whether to delta-debug violations down to minimal reproducers
        (oracle violations via the farm's result checker, conformance
        divergences via the cross-backend evaluator).
    rco_fraction:
        Fraction of cells restacked onto the causal-order wrapper.
    behaviour_fraction:
        Fraction of cells forced to carry one of the extended taxonomy
        behaviours (alter_sender / send_empty / limited_broadcast /
        truncate_path).
    churn_fraction:
        Fraction of cells decorated with one membership-churn fault
        (join / leave / link rewire).
    transient_cap:
        Per-category retention cap applied to the transient corpus
        tiers (near-f-bound, latency outliers) after each run, so the
        CI manifest-hash cache key stops growing without bound;
        ``None`` disables pruning.  Violation records are kept forever.
    latency_outlier_factor / latency_warmup:
        A delivered cell whose latency exceeds ``factor ×`` the stream's
        running mean (after ``warmup`` delivered cells) is recorded as a
        latency outlier.
    """

    def __init__(
        self,
        corpus_dir: Union[str, Path],
        *,
        cache_dir: Optional[Union[str, Path]] = None,
        workers: int = 1,
        executor: Optional[object] = None,
        check: Optional[ResultChecker] = None,
        seed: int = 0,
        backends: Sequence[str] = ("simulation",),
        conformance_backends: Tuple[str, ...] = (),
        shrink: bool = True,
        shrink_max_attempts: int = 500,
        batch_size: int = DEFAULT_BATCH_SIZE,
        workload_fraction: float = 0.25,
        rco_fraction: float = 0.15,
        behaviour_fraction: float = 0.2,
        churn_fraction: float = 0.15,
        transient_cap: Optional[int] = DEFAULT_TRANSIENT_CAP,
        latency_outlier_factor: float = 4.0,
        latency_warmup: int = 24,
    ) -> None:
        self.corpus = Corpus(corpus_dir)
        self.executor = executor or SweepExecutor(
            workers=workers, cache_dir=cache_dir
        )
        self.check: ResultChecker = check if check is not None else check_result
        self.seed = seed
        self.backends = tuple(backends)
        self.conformance_backends = tuple(conformance_backends)
        self.shrink_enabled = shrink
        self.shrink_max_attempts = shrink_max_attempts
        self.batch_size = batch_size
        self.workload_fraction = workload_fraction
        self.rco_fraction = rco_fraction
        self.behaviour_fraction = behaviour_fraction
        self.churn_fraction = churn_fraction
        self.transient_cap = transient_cap
        self.latency_outlier_factor = latency_outlier_factor
        self.latency_warmup = latency_warmup
        # Running latency statistics (across one run() call).
        self._latency_sum = 0.0
        self._latency_count = 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        time_budget_s: Optional[float] = None,
        max_cells: Optional[int] = None,
    ) -> FuzzReport:
        """One budgeted pass: stream, judge, persist; returns the report.

        At least one budget must be given — the spec stream is infinite.
        """
        if time_budget_s is None and max_cells is None:
            raise ValueError(
                "an unbounded farm run needs a budget: pass time_budget_s "
                "and/or max_cells"
            )
        started = time.monotonic()
        report = FuzzReport()
        self._latency_sum = 0.0
        self._latency_count = 0
        specs = stream_fuzz_specs(
            seed=self.seed,
            backends=self.backends,
            workload_fraction=self.workload_fraction,
            rco_fraction=self.rco_fraction,
            behaviour_fraction=self.behaviour_fraction,
            churn_fraction=self.churn_fraction,
        )
        if hasattr(self.executor, "run_stream"):
            for item in self.executor.run_stream(
                specs, time_budget_s=time_budget_s, max_cells=max_cells
            ):
                report.cells_run += 1
                self._judge(item.spec, item.result, report)
            report.cache_hits = getattr(self.executor, "cache_hits", 0)
        else:
            self._run_batched(
                specs,
                report,
                started=started,
                time_budget_s=time_budget_s,
                max_cells=max_cells,
            )
        report.elapsed_s = time.monotonic() - started
        if self.transient_cap is not None:
            report.pruned_records = len(
                self.corpus.prune(max_per_category=self.transient_cap)
            )
        self.corpus.write_manifest()
        report.manifest_hash = self.corpus.manifest_hash()
        return report

    def _run_batched(
        self,
        specs,
        report: FuzzReport,
        *,
        started: float,
        time_budget_s: Optional[float],
        max_cells: Optional[int],
    ) -> None:
        """Drive a batch executor (e.g. distributed) under the budget."""
        while True:
            if time_budget_s is not None and time.monotonic() - started >= time_budget_s:
                return
            remaining = None if max_cells is None else max_cells - report.cells_run
            if remaining is not None and remaining <= 0:
                return
            size = self.batch_size if remaining is None else min(self.batch_size, remaining)
            batch = []
            for _ in range(size):
                try:
                    batch.append(next(specs))
                except StopIteration:
                    break
            if not batch:
                return
            results = self.executor.run(batch)
            report.cache_hits += getattr(self.executor, "cache_hits", 0)
            for spec, result in zip(batch, results):
                report.cells_run += 1
                self._judge(spec, result, report)

    # ------------------------------------------------------------------
    # Judging
    # ------------------------------------------------------------------
    def _judge(
        self, spec: ScenarioSpec, result: ScenarioResult, report: FuzzReport
    ) -> None:
        violations = tuple(self.check(result))
        if violations:
            self._record_violation(spec, result, violations, report)
            return
        if self.conformance_backends and spec.backend in self.conformance_backends:
            self._check_conformance(spec, result, report)
        byzantine_count = len(result.byzantine)
        if spec.f > 0 and byzantine_count >= spec.f:
            self._record(
                report,
                CorpusRecord(
                    category="near_f_bound",
                    spec=spec,
                    stats=self._stats(result),
                    discovery=self._discovery(spec),
                ),
            )
        latency = result.latency_ms
        if latency is not None:
            if (
                self._latency_count >= self.latency_warmup
                and self._latency_count > 0
                and latency
                > self.latency_outlier_factor
                * (self._latency_sum / self._latency_count)
            ):
                self._record(
                    report,
                    CorpusRecord(
                        category="latency_outlier",
                        spec=spec,
                        stats=self._stats(result),
                        discovery=self._discovery(spec),
                    ),
                )
            self._latency_sum += latency
            self._latency_count += 1

    def _record_violation(
        self,
        spec: ScenarioSpec,
        result: ScenarioResult,
        violations: Tuple[OracleViolation, ...],
        report: FuzzReport,
    ) -> None:
        if spec.scenario_hash() in self.corpus:
            report.duplicate_violations += 1
            return
        shrunk: Optional[ShrinkResult] = None
        stub: Optional[str] = None
        if self.shrink_enabled:
            shrunk = shrink_failing_spec(
                spec,
                oracle_evaluator(self.check),
                max_attempts=self.shrink_max_attempts,
            )
            report.shrink_steps += len(shrunk.steps)
            report.shrink_attempts += shrunk.attempts
            stub = regression_stub(shrunk.minimal, shrunk.violations)
        self._record(
            report,
            CorpusRecord(
                category="oracle_violation",
                spec=spec,
                violations=tuple((v.invariant, v.detail) for v in violations),
                stats=self._stats(result),
                shrunk_spec=None if shrunk is None else shrunk.minimal,
                shrunk_violations=()
                if shrunk is None
                else tuple((v.invariant, v.detail) for v in shrunk.violations),
                regression_stub=stub,
                discovery=self._discovery(spec),
            ),
        )

    def _check_conformance(
        self, spec: ScenarioSpec, result: ScenarioResult, report: FuzzReport
    ) -> None:
        others = [b for b in self.conformance_backends if b != spec.backend]
        for backend in others:
            mirrored = run_scenario(spec.with_backend(backend))
            if safety_verdict_of(mirrored) != safety_verdict_of(result):
                shrunk = self._shrink_divergence(spec, backend, report)
                self._record(
                    report,
                    CorpusRecord(
                        category="conformance_divergence",
                        spec=spec,
                        stats={
                            **self._stats(result),
                            "diverging_backend": backend,
                        },
                        shrunk_spec=None if shrunk is None else shrunk.minimal,
                        shrunk_violations=()
                        if shrunk is None
                        else tuple(
                            (v.invariant, v.detail) for v in shrunk.violations
                        ),
                        discovery=self._discovery(spec),
                    ),
                )

    def _shrink_divergence(
        self, spec: ScenarioSpec, backend: str, report: FuzzReport
    ) -> Optional[ShrinkResult]:
        """Delta-debug a diverging spec with the conformance evaluator.

        A wall-clock-sensitive divergence may not reproduce when the
        evaluator re-runs the original spec (the baseline raises
        ``ValueError``); the raw offender is then recorded unshrunk —
        still replayable, just not minimized.
        """
        if not self.shrink_enabled:
            return None
        evaluate = conformance_evaluator(
            (spec.backend, backend), mode="safety"
        )
        try:
            shrunk = shrink_failing_spec(
                spec, evaluate, max_attempts=self.shrink_max_attempts
            )
        except ValueError:
            return None
        report.shrink_steps += len(shrunk.steps)
        report.shrink_attempts += shrunk.attempts
        return shrunk

    # ------------------------------------------------------------------
    # Record helpers
    # ------------------------------------------------------------------
    def _record(self, report: FuzzReport, record: CorpusRecord) -> None:
        if self.corpus.add(record):
            report.record(record.category, record.scenario_hash)

    def _discovery(self, spec: ScenarioSpec) -> Dict[str, object]:
        return {
            "stream_seed": self.seed,
            "backend": spec.backend,
            "spec_name": spec.name,
        }

    @staticmethod
    def _stats(result: ScenarioResult) -> Dict[str, object]:
        return {
            "latency_ms": result.latency_ms,
            "total_bytes": result.total_bytes,
            "message_count": result.message_count,
            "dropped_messages": result.dropped_messages,
            "byzantine": len(result.byzantine),
            "crashed": len(result.crashed),
            "broadcasts": result.broadcast_count,
        }


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "FuzzReport",
    "FuzzFarm",
    "ResultChecker",
]
