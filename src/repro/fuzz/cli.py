"""``repro-fuzz`` — the fuzzing farm's command line.

One budgeted farm pass per invocation (CI's scheduled lanes re-invoke
it; an operator loops it).  Exit status is the farm's verdict: ``0`` for
an oracle-green run, ``2`` when violations were found (new or
re-discovered), ``1`` for corpus-validation failures or usage errors —
so a cron lane turns red exactly when the oracle fires.

Besides fuzzing, the tool serves the corpus:

* ``--validate-corpus`` checks every record against the schema and
  prints the manifest hash (the CI fuzz lanes' post-run assertion and
  cache key);
* ``--list`` prints the stored records;
* ``--replay HASH`` re-runs one stored spec by scenario hash and
  re-checks the oracle on the result.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.fuzz.corpus import DEFAULT_TRANSIENT_CAP, Corpus
from repro.fuzz.farm import FuzzFarm
from repro.scenarios.oracle import check_result
from repro.scenarios.spec import BACKEND_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description=(
            "Budgeted adversarial scenario fuzzing: stream randomized "
            "lossy/adaptive/workload cells, check the safety oracle, "
            "persist interesting specs, shrink any violation to a "
            "minimal reproducer."
        ),
    )
    parser.add_argument(
        "--corpus-dir",
        default="corpus",
        help="directory of JSON corpus records (default: ./corpus)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="shared scenario-hash result cache directory (default: off)",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop consuming new cells after this many seconds",
    )
    parser.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="stop after consuming N cells",
    )
    parser.add_argument("--seed", type=int, default=0, help="stream seed (default: 0)")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width of the in-process executor (default: 1)",
    )
    parser.add_argument(
        "--backend",
        action="append",
        choices=BACKEND_NAMES,
        default=None,
        help="execution backend(s) to fuzz (repeatable; default: simulation)",
    )
    parser.add_argument(
        "--conformance",
        action="store_true",
        help=(
            "re-run violation-free cells on the other backend and record "
            "diverging safety verdicts (expensive; nightly lane)"
        ),
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="record violations without delta-debugging them",
    )
    parser.add_argument(
        "--workload-fraction",
        type=float,
        default=0.25,
        help="fraction of cells decorated with multi-broadcast workloads",
    )
    parser.add_argument(
        "--rco-fraction",
        type=float,
        default=0.15,
        help=(
            "fraction of cells restacked onto the causal-order wrapper "
            "(rco_cross_layer)"
        ),
    )
    parser.add_argument(
        "--behaviour-fraction",
        type=float,
        default=0.2,
        help=(
            "fraction of cells forced to carry one of the extended "
            "taxonomy behaviours (alter_sender, send_empty, "
            "limited_broadcast, truncate_path)"
        ),
    )
    parser.add_argument(
        "--churn-fraction",
        type=float,
        default=0.15,
        help=(
            "fraction of cells decorated with one membership-churn "
            "fault (join, leave, link rewire)"
        ),
    )
    parser.add_argument(
        "--transient-cap",
        type=int,
        default=None,
        metavar="N",
        help=(
            "age out all but N records per transient corpus category "
            "(near_f_bound, latency_outlier) after the run; violation "
            "records are kept forever (default: 64, 0 keeps none, "
            "negative disables pruning)"
        ),
    )
    parser.add_argument(
        "--validate-corpus",
        action="store_true",
        help="validate every corpus record against the schema and exit",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_records",
        help="list the stored corpus records and exit",
    )
    parser.add_argument(
        "--replay",
        metavar="HASH",
        default=None,
        help="re-run one stored spec by scenario hash and re-check the oracle",
    )
    return parser


def _validate(corpus: Corpus) -> int:
    problems = corpus.validate()
    hashes = corpus.hashes()
    if problems:
        for name, found in sorted(problems.items()):
            for problem in found:
                print(f"{name}: {problem}", file=sys.stderr)
        print(f"corpus INVALID: {len(problems)}/{len(hashes)} records failed")
        return 1
    print(f"corpus OK: {len(hashes)} records")
    print(f"manifest hash: {corpus.manifest_hash()}")
    return 0


def _list(corpus: Corpus) -> int:
    for record in corpus.records():
        shrunk = "" if record.shrunk_spec is None else " [shrunk]"
        print(f"{record.scenario_hash}  {record.category}{shrunk}")
    print(f"{len(corpus.hashes())} records")
    return 0


def _replay(corpus: Corpus, scenario_hash: str) -> int:
    try:
        result = corpus.replay(scenario_hash)
    except KeyError:
        print(f"no corpus record {scenario_hash}", file=sys.stderr)
        return 1
    violations = check_result(result)
    print(
        f"replayed {scenario_hash}: latency_ms={result.latency_ms} "
        f"messages={result.message_count} dropped={result.dropped_messages}"
    )
    if violations:
        for violation in violations:
            print(f"  [{violation.invariant}] {violation.detail}")
        return 2
    print("  oracle green")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    corpus = Corpus(args.corpus_dir)

    try:
        if args.validate_corpus:
            return _validate(corpus)
        if args.list_records:
            return _list(corpus)
        if args.replay is not None:
            return _replay(corpus, args.replay)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early (e.g.
        # ``repro-fuzz --list | head``): not an error.  Detach stdout so
        # interpreter shutdown does not trip over the dead pipe again.
        sys.stdout = open(os.devnull, "w")  # noqa: SIM115 - lives until exit
        return 0

    if args.time_budget is None and args.max_cells is None:
        parser.error("a fuzz run needs --time-budget and/or --max-cells")
    backends = tuple(args.backend) if args.backend else ("simulation",)
    if args.transient_cap is None:
        transient_cap = DEFAULT_TRANSIENT_CAP
    elif args.transient_cap < 0:
        transient_cap = None
    else:
        transient_cap = args.transient_cap
    farm = FuzzFarm(
        args.corpus_dir,
        cache_dir=args.cache_dir,
        workers=args.workers,
        seed=args.seed,
        backends=backends,
        conformance_backends=("simulation", "asyncio") if args.conformance else (),
        shrink=not args.no_shrink,
        workload_fraction=args.workload_fraction,
        rco_fraction=args.rco_fraction,
        behaviour_fraction=args.behaviour_fraction,
        churn_fraction=args.churn_fraction,
        transient_cap=transient_cap,
    )
    report = farm.run(time_budget_s=args.time_budget, max_cells=args.max_cells)
    for line in report.summary_lines():
        print(line)
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
