"""Unbounded randomized scenario streams for the fuzzing farm.

:func:`stream_fuzz_specs` turns the oracle suite's one-shot randomized
grid sampler
(:func:`~repro.scenarios.oracle.sample_lossy_adaptive_specs`) into an
infinite, seed-deterministic generator: round ``r`` draws one batch with
derived seed ``seed + r``, decorates a deterministic fraction of the
cells with multi-broadcast workloads (the workload axis the one-shot
sampler does not cover) and spreads the cells over the requested
backends.  Two streams with the same arguments yield the same specs in
the same order, which is what makes a fuzz run — and any shrink that
follows — replayable from its seed.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Iterator, Sequence

from repro.scenarios.oracle import sample_lossy_adaptive_specs
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec

#: Cells drawn per sampler round (one derived seed each round).
BATCH_SIZE = 32

#: Mixing constant separating the per-round decoration RNG from the
#: sampler's own seed stream.
_DECORATION_SALT = 0x5EEDF022


def _with_random_workload(spec: ScenarioSpec, rng: random.Random) -> ScenarioSpec:
    """Attach a small sensor-style workload to ``spec`` (seed-driven)."""
    n = spec.topology.node_count
    count = rng.randint(2, 4)
    interval = rng.choice((10.0, 25.0, 40.0))
    if n >= 2 and rng.random() < 0.5:
        sources = (0, 1)
        workload = WorkloadSpec.round_robin(sources, count, interval)
    else:
        workload = WorkloadSpec.repeated(0, count, interval)
    return spec.with_workload(workload)


def _as_rco_cell(spec: ScenarioSpec, rng: random.Random) -> ScenarioSpec:
    """Restack ``spec`` onto the causal-order wrapper (seed-driven).

    The protocol swap alone already fuzzes the pending-set machinery
    under the cell's loss/adaptive axes; half of the undecorated cells
    additionally get a causally-chained workload so cross-source
    dependency ordering is exercised, not just same-source FIFO.
    """
    spec = replace(spec, protocol="rco_cross_layer")
    n = spec.topology.node_count
    if spec.workload is None and n >= 2 and rng.random() < 0.5:
        chain = (0, rng.randint(1, n - 1), 0)
        interval = rng.choice((25.0, 40.0))
        spec = spec.with_workload(WorkloadSpec.causal_chain(chain, interval))
    return spec


def stream_fuzz_specs(
    *,
    seed: int = 0,
    backends: Sequence[str] = ("simulation",),
    name: str = "fuzz",
    batch_size: int = BATCH_SIZE,
    workload_fraction: float = 0.25,
    rco_fraction: float = 0.15,
) -> Iterator[ScenarioSpec]:
    """Yield an endless, deterministic stream of fuzz cells.

    ``backends`` spreads the stream over execution backends (each cell
    is assigned one); ``workload_fraction`` of the cells carry a
    randomized multi-broadcast workload on top of the lossy/adaptive
    axes; ``rco_fraction`` of the cells are restacked onto the
    causal-order wrapper (``rco_cross_layer``), so the pending-set
    delivery rule is fuzzed under the same loss/adaptive adversaries as
    the bare protocol.  The caller bounds consumption — typically via
    :meth:`~repro.runner.parallel.SweepExecutor.run_stream` budgets.
    """
    backends = tuple(backends)
    if not backends:
        raise ValueError("stream_fuzz_specs needs at least one backend")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    round_index = 0
    while True:
        cells = sample_lossy_adaptive_specs(
            batch_size, seed=seed + round_index, name=f"{name}-r{round_index}"
        )
        rng = random.Random(seed * 1_000_003 + round_index + _DECORATION_SALT)
        for spec in cells:
            backend = backends[0] if len(backends) == 1 else rng.choice(backends)
            if backend != spec.backend:
                spec = spec.with_backend(backend)
            if rng.random() < workload_fraction:
                spec = _with_random_workload(spec, rng)
            if rng.random() < rco_fraction:
                spec = _as_rco_cell(spec, rng)
            yield spec
        round_index += 1


__all__ = ["BATCH_SIZE", "stream_fuzz_specs"]
