"""Unbounded randomized scenario streams for the fuzzing farm.

:func:`stream_fuzz_specs` turns the oracle suite's one-shot randomized
grid sampler
(:func:`~repro.scenarios.oracle.sample_lossy_adaptive_specs`) into an
infinite, seed-deterministic generator: round ``r`` draws one batch with
derived seed ``seed + r``, decorates a deterministic fraction of the
cells with multi-broadcast workloads (the workload axis the one-shot
sampler does not cover) and spreads the cells over the requested
backends.  Two streams with the same arguments yield the same specs in
the same order, which is what makes a fuzz run — and any shrink that
follows — replayable from its seed.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Iterator, Sequence

from repro.scenarios.faults import JoinAt, LeaveAt, RewireLinkAt, TurnByzantineWhen
from repro.scenarios.oracle import sample_lossy_adaptive_specs
from repro.scenarios.spec import AdversarySpec, ScenarioSpec, WorkloadSpec

#: Cells drawn per sampler round (one derived seed each round).
BATCH_SIZE = 32

#: Mixing constant separating the per-round decoration RNG from the
#: sampler's own seed stream.
_DECORATION_SALT = 0x5EEDF022

#: The attacker-taxonomy behaviours beyond the original four, which the
#: ``behaviour_fraction`` decoration forces into a cell.
_EXTENDED_BEHAVIOURS = (
    "alter_sender",
    "send_empty",
    "limited_broadcast",
    "truncate_path",
)


def _with_random_workload(spec: ScenarioSpec, rng: random.Random) -> ScenarioSpec:
    """Attach a small sensor-style workload to ``spec`` (seed-driven)."""
    n = spec.topology.node_count
    count = rng.randint(2, 4)
    interval = rng.choice((10.0, 25.0, 40.0))
    if n >= 2 and rng.random() < 0.5:
        sources = (0, 1)
        workload = WorkloadSpec.round_robin(sources, count, interval)
    else:
        workload = WorkloadSpec.repeated(0, count, interval)
    return spec.with_workload(workload)


def _as_rco_cell(spec: ScenarioSpec, rng: random.Random) -> ScenarioSpec:
    """Restack ``spec`` onto the causal-order wrapper (seed-driven).

    The protocol swap alone already fuzzes the pending-set machinery
    under the cell's loss/adaptive axes; half of the undecorated cells
    additionally get a causally-chained workload so cross-source
    dependency ordering is exercised, not just same-source FIFO.
    """
    spec = replace(spec, protocol="rco_cross_layer")
    n = spec.topology.node_count
    if spec.workload is None and n >= 2 and rng.random() < 0.5:
        chain = (0, rng.randint(1, n - 1), 0)
        interval = rng.choice((25.0, 40.0))
        spec = spec.with_workload(WorkloadSpec.causal_chain(chain, interval))
    return spec


def _with_extended_behaviour(spec: ScenarioSpec, rng: random.Random) -> ScenarioSpec:
    """Force one of the extended taxonomy behaviours into ``spec``.

    Adds a one-process static adversary when the ``f`` budget has room
    (static placements plus adaptive conversions both count), otherwise
    swaps the behaviour of an existing non-equivocate placement; a cell
    with no room and no swappable placement is returned unchanged.
    """
    behaviour = rng.choice(_EXTENDED_BEHAVIOURS)
    converted = {
        fault.pid for fault in spec.adaptive if isinstance(fault, TurnByzantineWhen)
    }
    used = sum(adversary.count for adversary in spec.adversaries) + len(converted)
    if spec.f - used >= 1:
        return replace(
            spec,
            adversaries=spec.adversaries
            + (AdversarySpec(behaviour=behaviour, count=1),),
        )
    swappable = [
        index
        for index, adversary in enumerate(spec.adversaries)
        if adversary.behaviour != "equivocate"
    ]
    if swappable:
        index = rng.choice(swappable)
        adversaries = list(spec.adversaries)
        adversaries[index] = replace(adversaries[index], behaviour=behaviour)
        return replace(spec, adversaries=tuple(adversaries))
    return spec


def _with_churn(spec: ScenarioSpec, rng: random.Random) -> ScenarioSpec:
    """Attach one membership-churn fault to ``spec`` (seed-driven).

    Joins, leaves and link rewires over the non-source pids; a rewire
    needs a non-neighbor to rewire toward, so fully connected cells fall
    back to a leave.  Churn never targets the pinned source pid 0 — an
    absent source is a degenerate cell the static crash axis already
    covers.
    """
    n = spec.topology.node_count
    if n < 3:
        return spec
    pid = rng.randint(1, n - 1)
    draw = rng.random()
    if draw < 0.4:
        fault = JoinAt(pid=pid, time_ms=rng.choice((0.0, 20.0, 60.0)))
    elif draw < 0.75:
        fault = LeaveAt(pid=pid, time_ms=rng.choice((10.0, 40.0)))
    else:
        topology = spec.topology.build(spec.seed)
        neighbors = sorted(topology.neighbors(pid))
        candidates = sorted(set(topology.nodes) - set(neighbors) - {pid})
        if not neighbors or not candidates:
            fault = LeaveAt(pid=pid, time_ms=20.0)
        else:
            fault = RewireLinkAt(
                pid=pid,
                old_peer=rng.choice(neighbors),
                new_peer=rng.choice(candidates),
                time_ms=rng.choice((10.0, 30.0)),
            )
    return replace(spec, faults=spec.faults + (fault,))


def stream_fuzz_specs(
    *,
    seed: int = 0,
    backends: Sequence[str] = ("simulation",),
    name: str = "fuzz",
    batch_size: int = BATCH_SIZE,
    workload_fraction: float = 0.25,
    rco_fraction: float = 0.15,
    behaviour_fraction: float = 0.2,
    churn_fraction: float = 0.15,
) -> Iterator[ScenarioSpec]:
    """Yield an endless, deterministic stream of fuzz cells.

    ``backends`` spreads the stream over execution backends (each cell
    is assigned one); ``workload_fraction`` of the cells carry a
    randomized multi-broadcast workload on top of the lossy/adaptive
    axes; ``rco_fraction`` of the cells are restacked onto the
    causal-order wrapper (``rco_cross_layer``), so the pending-set
    delivery rule is fuzzed under the same loss/adaptive adversaries as
    the bare protocol; ``behaviour_fraction`` of the cells are forced to
    carry one of the extended taxonomy behaviours
    (``alter_sender``/``send_empty``/``limited_broadcast``/
    ``truncate_path``); ``churn_fraction`` of the cells gain one
    membership-churn fault (join/leave/link rewire).  The caller bounds
    consumption — typically via
    :meth:`~repro.runner.parallel.SweepExecutor.run_stream` budgets.
    """
    backends = tuple(backends)
    if not backends:
        raise ValueError("stream_fuzz_specs needs at least one backend")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    round_index = 0
    while True:
        cells = sample_lossy_adaptive_specs(
            batch_size, seed=seed + round_index, name=f"{name}-r{round_index}"
        )
        rng = random.Random(seed * 1_000_003 + round_index + _DECORATION_SALT)
        for spec in cells:
            backend = backends[0] if len(backends) == 1 else rng.choice(backends)
            if backend != spec.backend:
                spec = spec.with_backend(backend)
            if rng.random() < workload_fraction:
                spec = _with_random_workload(spec, rng)
            if rng.random() < rco_fraction:
                spec = _as_rco_cell(spec, rng)
            if rng.random() < behaviour_fraction:
                spec = _with_extended_behaviour(spec, rng)
            if rng.random() < churn_fraction:
                spec = _with_churn(spec, rng)
            yield spec
        round_index += 1


__all__ = ["BATCH_SIZE", "stream_fuzz_specs"]
