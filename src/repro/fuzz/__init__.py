"""Always-on scenario fuzzing farm with a failing-spec shrinker.

The correctness-tooling analogue of a continuous eval farm: randomized
adversarial scenario search runs forever (in CI: a time-boxed smoke lane
per PR, a longer nightly lane on a schedule), every interesting spec is
persisted to a JSON corpus keyed by scenario hash, and any safety-oracle
violation arrives pre-minimized by a delta-debugging shrinker — plus a
ready-to-paste regression test stub.

* :mod:`repro.fuzz.sample` — the unbounded, seed-deterministic spec
  stream (lossy × adaptive × workload grids over both backends);
* :mod:`repro.fuzz.farm` — :class:`FuzzFarm`, the budgeted coordinator
  over the sweep executors;
* :mod:`repro.fuzz.corpus` — the JSON corpus and its record schema;
* :mod:`repro.fuzz.shrink` — the shrinker and regression-stub renderer;
* :mod:`repro.fuzz.cli` — the ``repro-fuzz`` console script
  (``python -m repro.fuzz`` from a checkout).
"""

from repro.fuzz.corpus import (
    CATEGORIES,
    DEFAULT_TRANSIENT_CAP,
    RECORD_SCHEMA_VERSION,
    TRANSIENT_CATEGORIES,
    Corpus,
    CorpusRecord,
    validate_record_data,
)
from repro.fuzz.farm import FuzzFarm, FuzzReport
from repro.fuzz.sample import stream_fuzz_specs
from repro.fuzz.shrink import (
    ShrinkResult,
    ShrinkStep,
    conformance_evaluator,
    oracle_evaluator,
    regression_stub,
    shrink_failing_spec,
)

__all__ = [
    "CATEGORIES",
    "TRANSIENT_CATEGORIES",
    "DEFAULT_TRANSIENT_CAP",
    "RECORD_SCHEMA_VERSION",
    "Corpus",
    "CorpusRecord",
    "validate_record_data",
    "FuzzFarm",
    "FuzzReport",
    "stream_fuzz_specs",
    "ShrinkResult",
    "ShrinkStep",
    "oracle_evaluator",
    "conformance_evaluator",
    "regression_stub",
    "shrink_failing_spec",
]
