"""Spec-level reduction operators for delta-debugging failing scenarios.

When the safety oracle fires on a fuzzed cell, the raw offender is
usually noisy: several adversaries, a stack of adaptive triggers, a
multi-broadcast workload and a lossy delay regime, most of it incidental
to the actual bug.  The shrinker (:mod:`repro.fuzz.shrink`) walks the
candidates produced here, keeping a reduction only when the violation
survives — classic delta debugging, specialized to the scenario algebra:

* **drop fault machinery** — remove one static fault event, one adaptive
  trigger or one adversary placement (or lower a multi-process
  placement's count);
* **shrink the topology** toward the paper's ``2f + 1`` connectivity
  bound (fewer processes, never more, keeping every referenced pid
  valid);
* **shorten the workload** — drop broadcasts, or collapse the workload
  back to the legacy single broadcast;
* **unstack the protocol** — reduce an RCO-wrapped protocol to its
  inner BRB layer;
* **simplify the delay model** — strip message loss, strip burst
  windows, collapse stochastic delay kinds to the fixed synchronous
  setting;
* **lower budgets** — trigger counts, the fault bound ``f``, payload
  size.

Every operator is deterministic, emits candidates in a fixed order and
*strictly decreases* :func:`spec_size`, so greedy shrinking terminates
and two shrinks of the same spec take identical paths.  Candidates are
constructed to pass spec validation; anything a run still rejects
(e.g. a ``CutLinkWhen`` whose link a smaller random topology no longer
has) is simply discarded by the shrinker when evaluation fails.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Tuple

from repro.rco.protocol import RCO_PROTOCOLS
from repro.scenarios.faults import (
    CrashWhen,
    CutLinkWhen,
    TurnByzantineWhen,
)
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec


def fault_event_count(spec: ScenarioSpec) -> int:
    """Fault machinery of a spec: static events, triggers and placements."""
    return (
        len(spec.faults)
        + len(spec.adaptive)
        + sum(adversary.count for adversary in spec.adversaries)
    )


def _delay_complexity(spec: ScenarioSpec) -> int:
    delay = spec.delay
    return (
        int(delay.loss > 0.0)
        + int(delay.burst_period_ms > 0.0 or delay.burst_len_ms > 0.0)
        + int(delay.kind != "fixed")
    )


def _workload_length(spec: ScenarioSpec) -> int:
    return 0 if spec.workload is None else len(spec.workload.broadcasts)


def _trigger_budget(spec: ScenarioSpec) -> int:
    return sum(fault.count for fault in spec.adaptive)


def _protocol_complexity(spec: ScenarioSpec) -> int:
    """1 for a stacked (RCO-wrapped) protocol, 0 for a bare one.

    Gives :func:`simplify_protocol` a strictly decreasing size step
    while leaving every non-RCO spec's size — and therefore every
    existing shrink path — unchanged.
    """
    return int(spec.protocol in RCO_PROTOCOLS)


def spec_size(spec: ScenarioSpec) -> int:
    """Scalar size measure every reduction operator strictly decreases.

    The components are independent non-negative integers, so any single
    strict decrease shrinks the sum — which is what guarantees greedy
    shrinking terminates (and makes "is this spec minimal?" a simple
    fixpoint check).
    """
    return (
        fault_event_count(spec)
        + _trigger_budget(spec)
        + spec.topology.node_count
        + spec.f
        + _workload_length(spec)
        + _delay_complexity(spec)
        + _protocol_complexity(spec)
        + spec.payload_size
    )


# ----------------------------------------------------------------------
# Operators (each yields strictly smaller candidate specs, in order)
# ----------------------------------------------------------------------
def drop_adaptive_fault(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Remove one adaptive trigger at a time."""
    for index in range(len(spec.adaptive)):
        yield replace(
            spec, adaptive=spec.adaptive[:index] + spec.adaptive[index + 1 :]
        )


def drop_static_fault(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Remove one timed fault event at a time."""
    for index in range(len(spec.faults)):
        yield replace(spec, faults=spec.faults[:index] + spec.faults[index + 1 :])


def drop_adversary(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Remove one adversary placement, or lower a multi-process count."""
    for index, adversary in enumerate(spec.adversaries):
        yield replace(
            spec, adversaries=spec.adversaries[:index] + spec.adversaries[index + 1 :]
        )
        if adversary.count > 1:
            reduced = replace(adversary, count=adversary.count - 1)
            yield replace(
                spec,
                adversaries=spec.adversaries[:index]
                + (reduced,)
                + spec.adversaries[index + 1 :],
            )


def reduce_trigger_count(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Lower an adaptive trigger's match count to 1 (fire on first match)."""
    for index, fault in enumerate(spec.adaptive):
        if fault.count > 1:
            yield replace(
                spec,
                adaptive=spec.adaptive[:index]
                + (replace(fault, count=1),)
                + spec.adaptive[index + 1 :],
            )


def shorten_workload(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Fewer broadcasts: single-broadcast collapse first, then halving,
    then dropping one broadcast at a time (keeping at least one)."""
    workload = spec.workload
    if workload is None:
        return
    broadcasts = workload.broadcasts
    first = broadcasts[0]
    # Collapse to the legacy single-broadcast form entirely.
    yield replace(
        spec, workload=None, source=first.source, bid=first.bid
    )
    if len(broadcasts) > 2:
        yield replace(
            spec, workload=WorkloadSpec(broadcasts=broadcasts[: len(broadcasts) // 2])
        )
    if len(broadcasts) > 1:
        for index in range(len(broadcasts)):
            yield replace(
                spec,
                workload=WorkloadSpec(
                    broadcasts=broadcasts[:index] + broadcasts[index + 1 :]
                ),
            )


def _referenced_pids(spec: ScenarioSpec) -> List[int]:
    pids = [spec.source]
    for broadcast in spec.broadcasts():
        pids.append(broadcast.source)
        if broadcast.successor is not None:
            pids.append(broadcast.successor)
    for fault in spec.faults:
        for attr in ("pid", "u", "v", "old_peer", "new_peer"):
            value = getattr(fault, attr, None)
            if value is not None:
                pids.append(value)
    for fault in spec.adaptive:
        if isinstance(fault, (CrashWhen, TurnByzantineWhen)):
            pids.append(fault.pid)
        elif isinstance(fault, CutLinkWhen):
            pids.extend((fault.u, fault.v))
        for attr in ("pid", "dest", "source"):
            value = getattr(fault.after, attr, None)
            if value is not None:
                pids.append(value)
    return pids


def _min_nodes(spec: ScenarioSpec) -> int:
    """Smallest node count a reduced topology may legally have.

    Keeps every referenced pid in range, keeps room for the static
    adversary placements (which exclude the source), and respects the
    connectivity the paper's bound asks of the kind: a complete graph is
    ``(n - 1)``-connected so ``n >= 2f + 2`` preserves ``2f + 1``;
    harary/random-regular keep their explicit ``k``.
    """
    topology = spec.topology
    floor = max(_referenced_pids(spec), default=0) + 1
    floor = max(floor, sum(adv.count for adv in spec.adversaries) + 1, 2)
    if topology.kind == "complete":
        floor = max(floor, 2 * spec.f + 2)
    elif topology.kind in ("harary", "random_regular"):
        floor = max(floor, topology.k + 1, 2 * spec.f + 2)
        if topology.min_connectivity:
            floor = max(floor, topology.min_connectivity + 1)
    else:
        floor = max(floor, 3)
    return floor


def shrink_topology(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Fewer processes, never more: jump to the bound, then bisect."""
    topology = spec.topology
    if topology.kind == "torus":
        return
    n = topology.node_count
    floor = _min_nodes(spec)
    candidates = []
    for candidate in (floor, (n + floor) // 2, n - 1):
        if floor <= candidate < n and candidate not in candidates:
            candidates.append(candidate)
    for candidate in candidates:
        yield replace(spec, topology=replace(topology, n=candidate))


def reduce_f(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Lower the fault bound when the placed/converted budget allows it."""
    if spec.f <= 0:
        return
    converted = {
        fault.pid for fault in spec.adaptive if isinstance(fault, TurnByzantineWhen)
    }
    requested = sum(adv.count for adv in spec.adversaries) + len(converted)
    if requested <= spec.f - 1:
        yield replace(spec, f=spec.f - 1)


def simplify_protocol(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Unstack an RCO wrapper down to its inner BRB protocol.

    A violation that survives without the causal-order layer was never
    about causal order — the shrinker proves it by re-running on the
    bare protocol.  (A ``causal_order`` violation cannot survive this
    reduction — the predicate is vacuous off RCO — so such shrinks
    reject the candidate via the invariant-preservation rule.)
    """
    inner = RCO_PROTOCOLS.get(spec.protocol)
    if inner is not None:
        yield replace(spec, protocol=inner)


def simplify_delay(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Strip loss, then burst windows, then collapse the kind to fixed."""
    delay = spec.delay
    if delay.loss > 0.0:
        yield replace(spec, delay=replace(delay, loss=0.0))
    if delay.burst_period_ms > 0.0 or delay.burst_len_ms > 0.0:
        yield replace(
            spec, delay=replace(delay, burst_period_ms=0.0, burst_len_ms=0.0)
        )
    if delay.kind != "fixed":
        yield replace(spec, delay=replace(delay, kind="fixed"))


def shrink_payload(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Smaller payloads: empty first, then the 16-byte default."""
    if spec.payload_size > 0:
        yield replace(spec, payload_size=0)
    if spec.payload_size > 16:
        yield replace(spec, payload_size=16)


#: Greedy application order: fault machinery first (the usual culprit),
#: then structure (workload, topology, f), then cosmetics (delay kind,
#: payload).  The shrinker walks operators — and each operator's
#: candidates — in exactly this order, which is what makes shrinking
#: replayable.
REDUCTION_OPERATORS: Tuple[Tuple[str, Callable[[ScenarioSpec], Iterator[ScenarioSpec]]], ...] = (
    ("drop_adaptive_fault", drop_adaptive_fault),
    ("drop_static_fault", drop_static_fault),
    ("drop_adversary", drop_adversary),
    ("reduce_trigger_count", reduce_trigger_count),
    ("shorten_workload", shorten_workload),
    ("shrink_topology", shrink_topology),
    ("reduce_f", reduce_f),
    ("simplify_protocol", simplify_protocol),
    ("simplify_delay", simplify_delay),
    ("shrink_payload", shrink_payload),
)


def reduction_candidates(
    spec: ScenarioSpec,
) -> Iterator[Tuple[str, ScenarioSpec]]:
    """Every reduction of ``spec``, tagged with its operator, in order.

    Candidates that fail spec-level validation (an operator interaction
    the conservative constructors could not foresee) are skipped rather
    than raised: the shrinker treats "cannot even build the candidate"
    and "candidate no longer violates" identically.
    """
    for name, operator in REDUCTION_OPERATORS:
        iterator = operator(spec)
        while True:
            try:
                candidate = next(iterator)
            except StopIteration:
                break
            except Exception:
                continue
            yield name, candidate


__all__ = [
    "REDUCTION_OPERATORS",
    "reduction_candidates",
    "fault_event_count",
    "spec_size",
    "drop_adaptive_fault",
    "drop_static_fault",
    "drop_adversary",
    "reduce_trigger_count",
    "shorten_workload",
    "shrink_topology",
    "reduce_f",
    "simplify_protocol",
    "simplify_delay",
    "shrink_payload",
]
