"""Human-readable JSON (de)serialization of scenario specs.

The fuzzing farm (:mod:`repro.fuzz`) persists every interesting spec as
a JSON record under ``corpus/`` so that corpus entries survive code
refactors, diff cleanly in review, and can be pasted into regression
tests.  Pickle (:mod:`repro.scenarios.serialize`) stays the wire format
between coordinator and workers — it round-trips ``RunMetrics`` and is
faster — but a corpus that outlives many code versions needs a format
where a renamed module does not orphan every stored entry.

The codec is intentionally closed-world: only the spec-level dataclasses
listed in :data:`SPEC_TYPES` are encodable, each tagged with its class
name (``{"__type__": "ScenarioSpec", ...}``).  Decoding an unknown tag
or a malformed document raises :class:`SpecJSONError` instead of
guessing.  Round-tripping preserves dataclass equality — and therefore
:meth:`~repro.scenarios.spec.ScenarioSpec.scenario_hash`, which is what
keys the corpus.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.core.errors import ReproError
from repro.core.modifications import ModificationSet
from repro.scenarios.faults import (
    CrashAt,
    CrashWhen,
    CutLinkWhen,
    DelayedStart,
    JoinAt,
    LeaveAt,
    LinkDropWindow,
    ObservationFilter,
    RewireLinkAt,
    TurnByzantineWhen,
)
from repro.scenarios.spec import (
    AdversarySpec,
    BroadcastSpec,
    DelaySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)


class SpecJSONError(ReproError):
    """A spec could not be encoded to or decoded from JSON."""


#: Every dataclass a :class:`ScenarioSpec` may transitively embed.
SPEC_TYPES = {
    cls.__name__: cls
    for cls in (
        ScenarioSpec,
        TopologySpec,
        DelaySpec,
        AdversarySpec,
        BroadcastSpec,
        WorkloadSpec,
        ModificationSet,
        CrashAt,
        LinkDropWindow,
        DelayedStart,
        JoinAt,
        LeaveAt,
        RewireLinkAt,
        ObservationFilter,
        CrashWhen,
        TurnByzantineWhen,
        CutLinkWhen,
    )
}


def spec_to_jsonable(value: Any) -> Any:
    """Recursively encode a spec (or nested spec value) to JSON-safe data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in SPEC_TYPES:
            raise SpecJSONError(
                f"cannot encode {name}: not a registered spec type "
                f"(expected one of {sorted(SPEC_TYPES)})"
            )
        encoded: Dict[str, Any] = {"__type__": name}
        for field in dataclasses.fields(value):
            if not field.init:
                continue
            encoded[field.name] = spec_to_jsonable(getattr(value, field.name))
        return encoded
    if isinstance(value, (tuple, list)):
        return [spec_to_jsonable(item) for item in value]
    if isinstance(value, bytes):
        # Tagged like spec types so a decoded document cannot confuse a
        # payload with a mapping; hex keeps the record human-diffable.
        return {"__bytes__": value.hex()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise SpecJSONError(f"cannot encode value of type {type(value).__name__}")


def spec_from_jsonable(data: Any) -> Any:
    """Decode :func:`spec_to_jsonable` output back into spec dataclasses.

    Sequences decode to tuples — every sequence-valued spec field
    (adversaries, faults, adaptive, workload broadcasts) is tuple-typed,
    so the round trip restores dataclass equality exactly.
    """
    if isinstance(data, dict):
        if "__bytes__" in data and "__type__" not in data:
            if len(data) != 1 or not isinstance(data["__bytes__"], str):
                raise SpecJSONError(f"malformed __bytes__ value: {sorted(data)}")
            try:
                return bytes.fromhex(data["__bytes__"])
            except ValueError as exc:
                raise SpecJSONError(f"malformed __bytes__ hex: {exc}") from exc
        if "__type__" not in data:
            raise SpecJSONError(f"spec document lacks a __type__ tag: {sorted(data)}")
        name = data["__type__"]
        cls = SPEC_TYPES.get(name)
        if cls is None:
            raise SpecJSONError(f"unknown spec type tag {name!r}")
        fields = {
            field.name: field for field in dataclasses.fields(cls) if field.init
        }
        kwargs = {}
        for key, value in data.items():
            if key == "__type__":
                continue
            if key not in fields:
                raise SpecJSONError(f"{name} has no field {key!r}")
            kwargs[key] = spec_from_jsonable(value)
        try:
            return cls(**kwargs)
        except ReproError:
            raise
        except Exception as exc:
            raise SpecJSONError(f"cannot construct {name}: {exc!r}") from exc
    if isinstance(data, list):
        return tuple(spec_from_jsonable(item) for item in data)
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    raise SpecJSONError(f"cannot decode value of type {type(data).__name__}")


def dumps_spec_json(spec: ScenarioSpec, *, indent: int = 2) -> str:
    """Serialize one spec to a stable, human-diffable JSON document."""
    if not isinstance(spec, ScenarioSpec):
        raise SpecJSONError(f"expected a ScenarioSpec, got {type(spec).__name__}")
    return json.dumps(spec_to_jsonable(spec), indent=indent, sort_keys=True)


def loads_spec_json(document: str) -> ScenarioSpec:
    """Deserialize one spec from :func:`dumps_spec_json` output."""
    try:
        data = json.loads(document)
    except json.JSONDecodeError as exc:
        raise SpecJSONError(f"malformed spec JSON: {exc}") from exc
    spec = spec_from_jsonable(data)
    if not isinstance(spec, ScenarioSpec):
        raise SpecJSONError(
            f"document decoded to {type(spec).__name__}, expected ScenarioSpec"
        )
    return spec


__all__ = [
    "SpecJSONError",
    "SPEC_TYPES",
    "spec_to_jsonable",
    "spec_from_jsonable",
    "dumps_spec_json",
    "loads_spec_json",
]
