"""Safety oracle: the paper's BRB invariants, checked on scenario results.

Byzantine reliable broadcast makes three *safety* promises that must
survive any adversary, any message loss and any trigger-driven behaviour
change (Sec. 3 of the paper):

* **No forgery** — no correct process delivers a broadcast its correct
  source never made;
* **Agreement** — no two correct processes deliver different payloads
  for the same broadcast;
* **Validity** — when the source is correct, correct processes only
  deliver what it actually sent.

*Totality* (every correct process eventually delivers) is a liveness
property: it additionally needs the network to stay ``(2f + 1)``-
connected and the links to actually carry the messages, so the oracle
only asserts it for cells where delivery is guaranteed — no loss, no
adaptive triggers, no static fault events (see
:func:`totality_expected`).

The oracle is the reusable test layer every execution backend must pass:
:func:`check_result` turns one
:class:`~repro.scenarios.engine.ScenarioResult` into a list of
:class:`OracleViolation` (empty = the invariants held), and
:func:`sample_lossy_adaptive_specs` draws the randomized lossy/adaptive
scenario grids the ``tests/oracles`` suite sweeps on both backends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.rco.causal import causal_order_violations, is_rco_result
from repro.scenarios.conformance import no_forged_deliveries
from repro.scenarios.engine import ScenarioResult
from repro.scenarios.faults import (
    CrashWhen,
    CutLinkWhen,
    DelayedStart,
    ObservationFilter,
    TurnByzantineWhen,
)
from repro.scenarios.spec import (
    AdversarySpec,
    DelaySpec,
    ScenarioSpec,
    TopologySpec,
)


@dataclass(frozen=True)
class OracleViolation:
    """One broken invariant, with enough detail to reproduce the failure."""

    invariant: str
    detail: str


# ----------------------------------------------------------------------
# Invariant checks
# ----------------------------------------------------------------------
def check_no_forgery(result: ScenarioResult) -> List[OracleViolation]:
    """No correct process delivered a forged broadcast."""
    if no_forged_deliveries(result):
        return []
    scheduled = {broadcast.key for broadcast in result.spec.broadcasts()}
    byzantine = {pid for pid, _ in result.byzantine}
    correct = set(result.correct_processes)
    forged = sorted(
        {
            (pid, key)
            for pid, key in result.metrics.delivery_times
            if pid in correct
            and key not in scheduled
            and key[0] not in byzantine
            and key[0] != -1
        }
    )
    return [
        OracleViolation(
            invariant="no_forgery",
            detail=(
                f"correct process {pid} delivered unscheduled broadcast "
                f"{key} attributed to a correct source"
            ),
        )
        for pid, key in forged
    ]


def check_agreement(result: ScenarioResult) -> List[OracleViolation]:
    """No two correct processes delivered conflicting payloads per key."""
    return [
        OracleViolation(
            invariant="agreement",
            detail=(
                f"broadcast {outcome.key}: correct processes delivered "
                "conflicting payloads"
            ),
        )
        for outcome in result.outcomes
        if not outcome.agreement_holds
    ]


def check_validity(result: ScenarioResult) -> List[OracleViolation]:
    """Correct deliverers only got what each correct source sent.

    Per-outcome ``validity_holds`` is already vacuously true for
    broadcasts whose source is Byzantine (including sources an adaptive
    trigger converted mid-run), matching BRB-Validity's scope.
    """
    return [
        OracleViolation(
            invariant="validity",
            detail=(
                f"broadcast {outcome.key}: a correct process delivered a "
                f"payload the source never sent"
            ),
        )
        for outcome in result.outcomes
        if not outcome.validity_holds
    ]


def check_totality(result: ScenarioResult) -> List[OracleViolation]:
    """Every correct process delivered every correct-source broadcast.

    Only meaningful where delivery is guaranteed — gate calls on
    :func:`totality_expected`; :func:`check_result` does.
    """
    byzantine = {pid for pid, _ in result.byzantine}
    return [
        OracleViolation(
            invariant="totality",
            detail=(
                f"broadcast {outcome.key}: correct processes "
                f"{sorted(set(result.correct_processes) - set(outcome.delivered_processes))} "
                "never delivered"
            ),
        )
        for outcome in result.outcomes
        if outcome.source not in byzantine and not outcome.all_correct_delivered
    ]


def totality_expected(spec: ScenarioSpec) -> bool:
    """Whether the oracle may assert totality for ``spec``.

    Totality is guaranteed only when nothing can keep a message from a
    correct process: reliable links (no lossy delay regime), no adaptive
    triggers (a fired trigger may crash or partition mid-run) and no
    *delivery-breaking* static fault events — a crash silences a process
    for good and a link-drop window loses messages, but a
    :class:`~repro.scenarios.faults.DelayedStart` only postpones them: a
    dormant node buffers everything that arrives early and replays it in
    arrival order at wake-up, so every correct process still delivers.
    Membership churn (``JoinAt``/``LeaveAt``/``RewireLinkAt``) is
    delivery-breaking by construction — a late joiner misses early
    traffic and graph edits lose in-flight messages — so churn specs
    fail the ``DelayedStart``-only test and totality stays conservative.
    The fault *types* decide, not mere presence.  Connectivity
    (``>= 2f + 1``) is the spec author's obligation, as in the property
    suite; the randomized oracle grids only emit compliant topologies.
    """
    return (
        not spec.is_lossy
        and not spec.is_adaptive
        and all(isinstance(fault, DelayedStart) for fault in spec.faults)
    )


def check_causal_order(result: ScenarioResult) -> List[OracleViolation]:
    """Correct processes delivered in causal order (RCO protocols only).

    The predicate of :mod:`repro.rco.causal` is loss-tolerant — it only
    constrains processes that actually delivered the causally-later
    broadcast — so it is asserted unconditionally for RCO specs, lossy
    and adaptive cells included.  Vacuously green off RCO.
    """
    if not is_rco_result(result):
        return []
    return [
        OracleViolation(invariant="causal_order", detail=detail)
        for detail in causal_order_violations(result)
    ]


def check_result(result: ScenarioResult) -> List[OracleViolation]:
    """Every violated invariant of one run (empty = the oracle is green).

    The safety invariants (no forgery, agreement, validity) are always
    asserted — plus causal order on RCO protocols; totality only where
    :func:`totality_expected` says delivery is guaranteed.
    """
    violations = (
        check_no_forgery(result)
        + check_agreement(result)
        + check_validity(result)
        + check_causal_order(result)
    )
    if totality_expected(result.spec):
        violations += check_totality(result)
    return violations


def assert_safe(result: ScenarioResult) -> None:
    """Raise ``AssertionError`` listing every violated invariant."""
    violations = check_result(result)
    if violations:
        lines = "\n".join(
            f"  [{violation.invariant}] {violation.detail}"
            for violation in violations
        )
        raise AssertionError(
            f"safety oracle violated for scenario "
            f"{result.spec.name!r} (seed {result.spec.seed}):\n{lines}"
        )


# ----------------------------------------------------------------------
# Randomized lossy/adaptive scenario grids
# ----------------------------------------------------------------------
_DELAY_BASES = (
    DelaySpec(kind="fixed", mean_ms=10.0),
    DelaySpec(kind="normal", mean_ms=15.0, std_ms=15.0),
    DelaySpec(kind="uniform", low_ms=1.0, high_ms=25.0),
)

_LOSS_LEVELS = (0.02, 0.05, 0.1, 0.2)

_STATIC_BEHAVIOURS = (
    "mute",
    "drop",
    "forge",
    "equivocate",
    "alter_sender",
    "send_empty",
    "limited_broadcast",
    "truncate_path",
)


def sample_lossy_adaptive_specs(
    count: int,
    *,
    seed: int = 0,
    backend: str = "simulation",
    name: str = "oracle",
) -> Tuple[ScenarioSpec, ...]:
    """Draw ``count`` randomized scenario cells for the oracle suite.

    Deterministic in ``seed``.  Every cell respects the paper's fault
    model — at most ``f`` Byzantine processes (static placements plus
    adaptive conversions combined) on a ``(2f + 1)``-connected topology —
    while mixing in the adversarial conditions the safety invariants
    must survive: independent and bursty message loss, adaptive crashes
    of the source keyed on in-flight ECHO traffic, mid-run Byzantine
    conversions keyed on first delivery, and reactive link cuts.  A
    fraction of the cells stays loss-free and trigger-free so totality
    is exercised too.
    """
    rng = random.Random(seed)
    cells = []
    for index in range(count):
        f = rng.choice((0, 1, 1, 2))
        required = 2 * f + 1
        n = rng.randint(max(3 * f + 1, required + 1, 4), 10)
        kind = rng.choice(("complete", "harary", "complete"))
        if kind == "complete" or required < 2:
            topology = TopologySpec(kind="complete", n=n)
        else:
            topology = TopologySpec(kind="harary", n=n, k=required)

        budget = f
        adversaries: Tuple[AdversarySpec, ...] = ()
        if budget and rng.random() < 0.5:
            behaviour = rng.choice(_STATIC_BEHAVIOURS)
            static_count = 1 if behaviour == "equivocate" else rng.randint(1, budget)
            adversaries = (
                AdversarySpec(behaviour=behaviour, count=static_count),
            )
            budget -= static_count

        adaptive = []
        lossy = rng.random() < 0.6
        if rng.random() < 0.6:
            choice = rng.random()
            if choice < 0.4:
                # Crash the source once enough ECHO/SEND traffic is in
                # flight — the paper-style adaptive source crash.
                adaptive.append(
                    CrashWhen(
                        pid=0,
                        after=ObservationFilter(kind="send"),
                        count=f + 1,
                    )
                )
            elif choice < 0.7 and budget:
                # Turn a relay Byzantine after its first delivery.
                adaptive.append(
                    TurnByzantineWhen(
                        pid=rng.randint(1, n - 1),
                        after=ObservationFilter(kind="deliver"),
                        count=1,
                        behaviour=rng.choice(("mute", "drop", "forge")),
                    )
                )
                budget -= 1
            elif kind == "complete":
                # Cut a link the instant it first carries traffic.
                u = rng.randint(0, n - 2)
                v = rng.randint(u + 1, n - 1)
                adaptive.append(
                    CutLinkWhen(
                        u=u,
                        v=v,
                        after=ObservationFilter(kind="send", pid=u, dest=v),
                        count=1,
                        duration_ms=rng.choice((None, 30.0)),
                    )
                )

        delay = rng.choice(_DELAY_BASES)
        if lossy:
            if rng.random() < 0.7:
                delay = replace(delay, loss=rng.choice(_LOSS_LEVELS))
            else:
                delay = replace(
                    delay,
                    burst_period_ms=60.0,
                    burst_len_ms=rng.choice((5.0, 15.0)),
                )

        cells.append(
            ScenarioSpec(
                name=f"{name}-{index}",
                topology=topology,
                delay=delay,
                protocol="cross_layer",
                f=f,
                payload_size=rng.choice((0, 16, 48)),
                seed=rng.randint(0, 100_000),
                adversaries=adversaries,
                adaptive=tuple(adaptive),
                backend=backend,
            )
        )
    return tuple(cells)


__all__ = [
    "OracleViolation",
    "check_no_forgery",
    "check_agreement",
    "check_validity",
    "check_totality",
    "check_causal_order",
    "check_result",
    "assert_safe",
    "totality_expected",
    "sample_lossy_adaptive_specs",
]
