"""Adversary placement strategies.

Given a topology and a number of Byzantine slots, a strategy picks which
processes misbehave.  All strategies are deterministic for a given seed,
which the parallel sweep executor relies on.

* ``"random"`` — uniform choice among the eligible processes (the paper's
  setting: Byzantine processes are placed at random, excluding the
  source).
* ``"max_degree"`` — the best-connected processes, the strongest static
  placement against flooding protocols: a high-degree Byzantine relay
  silences or pollutes the most paths.
* ``"articulation_adjacent"`` — processes at or next to articulation
  points, the cut vertices of the graph.  On weakly connected graphs this
  concentrates the adversary around the bottlenecks every path must
  cross; on biconnected graphs (no articulation points) it falls back to
  the neighborhood of the minimum-degree process — the closest thing to a
  bottleneck — topped up by degree.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.topology.analysis import articulation_points
from repro.topology.generators import Topology


def _eligible(topology: Topology, exclude: Iterable[int]) -> List[int]:
    excluded = set(exclude)
    return [pid for pid in topology.nodes if pid not in excluded]


def _place_random(
    topology: Topology, count: int, candidates: Sequence[int], seed: int
) -> List[int]:
    return random.Random(seed).sample(list(candidates), count)


def _place_max_degree(
    topology: Topology, count: int, candidates: Sequence[int], seed: int
) -> List[int]:
    ranked = sorted(candidates, key=lambda pid: (-topology.degree(pid), pid))
    return ranked[:count]


def _place_articulation_adjacent(
    topology: Topology, count: int, candidates: Sequence[int], seed: int
) -> List[int]:
    eligible = set(candidates)
    points = [pid for pid in articulation_points(topology) if pid in eligible]
    if points:
        anchors = points
    else:
        # Biconnected graph: anchor on the minimum-degree process instead.
        anchors = sorted(candidates, key=lambda pid: (topology.degree(pid), pid))[:1]
    chosen: List[int] = []
    seen = set()
    for pid in anchors:
        if pid not in seen:
            chosen.append(pid)
            seen.add(pid)
    for anchor in anchors:
        for neighbor in sorted(topology.neighbors(anchor)):
            if neighbor in eligible and neighbor not in seen:
                chosen.append(neighbor)
                seen.add(neighbor)
    if len(chosen) < count:
        for pid in _place_max_degree(topology, len(candidates), candidates, seed):
            if pid not in seen:
                chosen.append(pid)
                seen.add(pid)
    return chosen[:count]


PLACEMENT_STRATEGIES = {
    "random": _place_random,
    "max_degree": _place_max_degree,
    "articulation_adjacent": _place_articulation_adjacent,
}


def place_adversaries(
    topology: Topology,
    count: int,
    strategy: str = "random",
    *,
    seed: int = 0,
    exclude: Iterable[int] = (),
) -> Tuple[int, ...]:
    """Pick ``count`` Byzantine processes, sorted, excluding ``exclude``.

    Raises :class:`ConfigurationError` when the strategy is unknown or
    fewer than ``count`` processes are eligible.
    """
    try:
        place = PLACEMENT_STRATEGIES[strategy]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown placement strategy {strategy!r}; "
            f"expected one of {tuple(PLACEMENT_STRATEGIES)}"
        ) from exc
    candidates = _eligible(topology, exclude)
    if count > len(candidates):
        raise ConfigurationError(
            f"cannot place {count} adversaries among {len(candidates)} "
            "eligible processes"
        )
    if count <= 0:
        return ()
    return tuple(sorted(place(topology, count, candidates, seed)))


__all__ = ["PLACEMENT_STRATEGIES", "place_adversaries"]
