"""Wire (de)serialization of scenario specs and results.

The distributed sweep executor ships :class:`ScenarioSpec` cells to
worker hosts and gets :class:`ScenarioResult` snapshots back; both
travel as pickled payloads inside tagged wire envelopes (see
:mod:`repro.runner.wire`).  Pickle is the right tool here — specs embed
:class:`~repro.core.modifications.ModificationSet`, fault-event and
workload (:class:`~repro.scenarios.spec.WorkloadSpec`) dataclasses, and
results carry full :class:`~repro.metrics.collector.RunMetrics`
snapshots plus per-broadcast
:class:`~repro.scenarios.engine.BroadcastOutcome` tuples — but raw
``pickle.loads`` turns a corrupt frame into an
arbitrary exception (or an arbitrary object).  Since wire v3 the spec
payloads may also embed lossy delay fields and adaptive fault classes
(:class:`~repro.scenarios.faults.ObservationFilter` and friends), which
is why mixed-version pairs are rejected at the envelope layer before any
body reaches these helpers.  They pin the failure mode instead:

* any unpickling problem — truncated payload, garbage bytes, a payload
  produced by an incompatible code version — raises
  :class:`SerializationError`;
* a payload that unpickles into the *wrong type* also raises
  :class:`SerializationError`, so a transposed message kind cannot leak
  a spec where a result is expected (or vice versa).

Trust model: the sweep protocol links the operator's own coordinator and
worker processes (the authenticated-channel assumption the node runtime
already makes); the validation here is about corruption and version
skew, not about sandboxing hostile pickles.
"""

from __future__ import annotations

import pickle

from repro.core.errors import ReproError
from repro.scenarios.engine import ScenarioResult
from repro.scenarios.spec import ScenarioSpec


class SerializationError(ReproError):
    """A spec or result payload could not be (de)serialized."""


def dumps_spec(spec: ScenarioSpec) -> bytes:
    """Serialize one spec for the wire."""
    if not isinstance(spec, ScenarioSpec):
        raise SerializationError(f"expected a ScenarioSpec, got {type(spec).__name__}")
    return pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)


def loads_spec(payload: bytes) -> ScenarioSpec:
    """Deserialize a spec payload, validating its type."""
    return _loads(payload, ScenarioSpec)


def dumps_result(result: ScenarioResult) -> bytes:
    """Serialize one result for the wire."""
    if not isinstance(result, ScenarioResult):
        raise SerializationError(
            f"expected a ScenarioResult, got {type(result).__name__}"
        )
    return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)


def loads_result(payload: bytes) -> ScenarioResult:
    """Deserialize a result payload, validating its type."""
    return _loads(payload, ScenarioResult)


def _loads(payload: bytes, expected: type):
    try:
        value = pickle.loads(payload)
    except Exception as exc:
        raise SerializationError(
            f"cannot deserialize {expected.__name__} payload: {exc!r}"
        ) from exc
    if not isinstance(value, expected):
        raise SerializationError(
            f"payload deserialized to {type(value).__name__}, "
            f"expected {expected.__name__}"
        )
    return value


__all__ = [
    "SerializationError",
    "dumps_spec",
    "loads_spec",
    "dumps_result",
    "loads_result",
]
