"""Timed fault events injected into a :class:`SimulatedNetwork` run.

These extend the static Byzantine placement of
:class:`~repro.scenarios.spec.AdversarySpec` with dynamic faults: a
process crashing mid-run, a link dropping every message during a time
window, or a process that boots late.  Each event is a small frozen
dataclass with an ``apply`` hook the scenario engine calls on the network
before the run starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class CrashAt:
    """Crash process ``pid`` at absolute simulated time ``time_ms``.

    A crash at time 0 takes effect before the process runs ``on_start``,
    so it never participates at all; a later crash silences a process that
    may already have relayed part of a broadcast.
    """

    pid: int
    time_ms: float = 0.0

    def apply(self, network) -> None:
        network.crash_at(self.pid, self.time_ms)


@dataclass(frozen=True)
class LinkDropWindow:
    """Lose every message put on the ``{u, v}`` link in ``[start_ms, end_ms)``.

    ``end_ms=None`` models a link that goes down and never reopens — the
    protocols must then route around it through the remaining disjoint
    paths (or fail to deliver if the graph is not connected enough).
    """

    u: int
    v: int
    start_ms: float = 0.0
    end_ms: Optional[float] = None

    def apply(self, network) -> None:
        network.add_link_drop_window(self.u, self.v, self.start_ms, self.end_ms)


@dataclass(frozen=True)
class DelayedStart:
    """Keep process ``pid`` dormant until absolute time ``time_ms``.

    Messages arriving earlier are buffered and replayed in arrival order
    at wake-up, modelling a correct node that boots late.
    """

    pid: int
    time_ms: float

    def apply(self, network) -> None:
        network.delay_start(self.pid, self.time_ms)


FaultEvent = Union[CrashAt, LinkDropWindow, DelayedStart]

__all__ = ["CrashAt", "LinkDropWindow", "DelayedStart", "FaultEvent"]
