"""Timed and adaptive fault events injected into a scenario run.

Two fault families extend the static Byzantine placement of
:class:`~repro.scenarios.spec.AdversarySpec`:

* **Timed faults** (:class:`CrashAt`, :class:`LinkDropWindow`,
  :class:`DelayedStart`) fire at fixed scenario times.  Each is a small
  frozen dataclass with an ``apply`` hook the scenario engine calls on
  the simulated network before the run starts; the asyncio backend
  translates them into runtime actions instead.

* **Adaptive faults** (:class:`CrashWhen`, :class:`TurnByzantineWhen`,
  :class:`CutLinkWhen`) fire when a *trigger* condition over the run's
  observed protocol events is met — "crash the source once f+1 ECHOs are
  in flight", "turn a node Byzantine after its first delivery".  Each
  adaptive fault declares an :class:`ObservationFilter` (what to watch),
  a match ``count`` (how many matches arm the trigger) and, through
  ``trigger(observation) -> actions``, the :data:`AdaptiveAction` list to
  apply when it fires.  The engine feeds every
  :class:`~repro.core.events.Observation` of a run through an
  :class:`AdaptiveController`, which tracks per-fault match counts and
  emits the actions exactly once — identically on both execution
  backends.

All spec-level dataclasses validate at construction
(:class:`~repro.core.errors.SpecError`), so a malformed fault fails
where it is written, not deep inside a sweep worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.errors import SpecError
from repro.core.events import Observation


@dataclass(frozen=True)
class CrashAt:
    """Crash process ``pid`` at absolute simulated time ``time_ms``.

    A crash at time 0 takes effect before the process runs ``on_start``,
    so it never participates at all; a later crash silences a process that
    may already have relayed part of a broadcast.
    """

    pid: int
    time_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise SpecError(
                f"CrashAt time must be non-negative, got {self.time_ms}"
            )

    def apply(self, network) -> None:
        network.crash_at(self.pid, self.time_ms)


@dataclass(frozen=True)
class LinkDropWindow:
    """Lose every message put on the ``{u, v}`` link in ``[start_ms, end_ms)``.

    ``end_ms=None`` models a link that goes down and never reopens — the
    protocols must then route around it through the remaining disjoint
    paths (or fail to deliver if the graph is not connected enough).
    """

    u: int
    v: int
    start_ms: float = 0.0
    end_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_ms < 0:
            raise SpecError(
                f"LinkDropWindow start must be non-negative, got {self.start_ms}"
            )
        if self.end_ms is not None:
            if self.end_ms < 0:
                raise SpecError(
                    f"LinkDropWindow end must be non-negative, got {self.end_ms}"
                )
            if self.end_ms < self.start_ms:
                raise SpecError(
                    f"LinkDropWindow ends before it starts: "
                    f"[{self.start_ms}, {self.end_ms})"
                )

    def apply(self, network) -> None:
        network.add_link_drop_window(self.u, self.v, self.start_ms, self.end_ms)


@dataclass(frozen=True)
class DelayedStart:
    """Keep process ``pid`` dormant until absolute time ``time_ms``.

    Messages arriving earlier are buffered and replayed in arrival order
    at wake-up, modelling a correct node that boots late.
    """

    pid: int
    time_ms: float

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise SpecError(
                f"DelayedStart time must be non-negative, got {self.time_ms}"
            )

    def apply(self, network) -> None:
        network.delay_start(self.pid, self.time_ms)


# ----------------------------------------------------------------------
# Membership churn
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JoinAt:
    """Process ``pid`` joins the run at absolute time ``time_ms``.

    Until the join fires the process is *absent*: it does not run
    ``on_start`` and messages addressed to it are dropped (unlike
    :class:`DelayedStart`, which buffers them — a late joiner never saw
    the early traffic).  The process keeps its topology links; only its
    participation starts late.
    """

    pid: int
    time_ms: float

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise SpecError(
                f"JoinAt time must be non-negative, got {self.time_ms}"
            )

    def apply(self, network) -> None:
        network.join_at(self.pid, self.time_ms)


@dataclass(frozen=True)
class LeaveAt:
    """Process ``pid`` leaves the run at absolute time ``time_ms``.

    Leaving is a graph edit, not just a crash: the process goes
    fail-silent *and* its links are torn down, so later sends toward it
    are lost on the (now missing) channel instead of reaching a dead
    inbox.  For safety accounting the process counts as non-correct, like
    a crashed one.
    """

    pid: int
    time_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise SpecError(
                f"LeaveAt time must be non-negative, got {self.time_ms}"
            )

    def apply(self, network) -> None:
        network.leave_at(self.pid, self.time_ms)


@dataclass(frozen=True)
class RewireLinkAt:
    """At ``time_ms``, replace ``pid``'s link to ``old_peer`` with ``new_peer``.

    The ``{pid, old_peer}`` edge is severed and ``{pid, new_peer}`` comes
    up, mid-run.  Degree is preserved but the disjoint-path structure the
    2f+1 bound rests on can change under the protocols' feet — the
    connectivity-under-churn helper in ``repro.topology.analysis``
    reports whether the bound survived every edit.
    """

    pid: int
    old_peer: int
    new_peer: int
    time_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise SpecError(
                f"RewireLinkAt time must be non-negative, got {self.time_ms}"
            )
        if self.old_peer == self.pid or self.new_peer == self.pid:
            raise SpecError(
                f"RewireLinkAt peers must differ from pid {self.pid}"
            )
        if self.old_peer == self.new_peer:
            raise SpecError(
                "RewireLinkAt old_peer and new_peer must differ, "
                f"both are {self.old_peer}"
            )

    def apply(self, network) -> None:
        network.rewire_link_at(self.pid, self.old_peer, self.new_peer, self.time_ms)


FaultEvent = Union[CrashAt, LinkDropWindow, DelayedStart, JoinAt, LeaveAt, RewireLinkAt]

#: The churn subset of the timed fault taxonomy — events that edit the
#: live topology (or membership) instead of only silencing traffic.
CHURN_FAULT_TYPES = (JoinAt, LeaveAt, RewireLinkAt)


# ----------------------------------------------------------------------
# Adaptive (trigger-driven) faults
# ----------------------------------------------------------------------
#: Observation kinds an :class:`ObservationFilter` may select on.
OBSERVATION_KINDS = ("send", "deliver")


@dataclass(frozen=True)
class ObservationFilter:
    """Declarative predicate over run observations.

    Every non-``None`` field must match the observation; ``mtype`` is a
    substring match against the canonical message-type name (so
    ``"ECHO"`` matches both a plain Bracha ``ECHO`` and a Dolev-wrapped
    ``DOLEV[ECHO]``).  Being pure data, filters hash into the scenario
    hash and travel the sweep wire like every other spec field.
    """

    kind: Optional[str] = None
    pid: Optional[int] = None
    dest: Optional[int] = None
    mtype: Optional[str] = None
    source: Optional[int] = None
    bid: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is not None and self.kind not in OBSERVATION_KINDS:
            raise SpecError(
                f"unknown observation kind {self.kind!r}; "
                f"expected one of {OBSERVATION_KINDS}"
            )

    def matches(self, observation: Observation) -> bool:
        """Whether ``observation`` satisfies every constrained field."""
        if self.kind is not None and observation.kind != self.kind:
            return False
        if self.pid is not None and observation.pid != self.pid:
            return False
        if self.dest is not None and observation.dest != self.dest:
            return False
        if self.mtype is not None and (
            observation.mtype is None or self.mtype not in observation.mtype
        ):
            return False
        if self.source is not None and observation.source != self.source:
            return False
        if self.bid is not None and observation.bid != self.bid:
            return False
        return True


# -- actions an adaptive fault applies when it fires -------------------
@dataclass(frozen=True)
class CrashAction:
    """Crash process ``pid`` immediately (fail-silent from now on)."""

    pid: int


@dataclass(frozen=True)
class ByzantineAction:
    """Swap process ``pid``'s protocol for Byzantine ``behaviour``."""

    pid: int
    behaviour: str
    drop_probability: float = 0.5


@dataclass(frozen=True)
class LinkDownAction:
    """Cut the ``{u, v}`` link now, for ``duration_ms`` (``None``: forever)."""

    u: int
    v: int
    duration_ms: Optional[float] = None


AdaptiveAction = Union[CrashAction, ByzantineAction, LinkDownAction]


class _TriggeredFault:
    """Shared trigger surface of the adaptive fault dataclasses.

    Subclasses are frozen dataclasses declaring ``after`` (the
    observation filter) and ``count`` (matches required to fire) and
    implement :meth:`actions`.  ``trigger`` is the stateless hook of the
    AdaptiveFault protocol: per-run match counting lives in the
    :class:`AdaptiveController`, so the spec object stays immutable and
    reusable across runs.
    """

    def actions(self) -> Tuple[AdaptiveAction, ...]:
        raise NotImplementedError

    def trigger(self, observation: Observation) -> Tuple[AdaptiveAction, ...]:
        """Actions to apply if ``observation`` completes the trigger.

        Stateless: assumes the previous ``count - 1`` matches already
        happened (the controller guarantees it).  Returns ``()`` when the
        observation does not match the fault's filter.
        """
        if not self.after.matches(observation):
            return ()
        return self.actions()


@dataclass(frozen=True)
class CrashWhen(_TriggeredFault):
    """Crash ``pid`` once ``count`` observations matched ``after``.

    The paper-style adaptive crash: e.g. crash the source once ``f + 1``
    ECHO messages are in flight
    (``after=ObservationFilter(kind="send", mtype="ECHO"), count=f + 1``).
    """

    pid: int
    after: ObservationFilter = ObservationFilter()
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SpecError(f"trigger count must be >= 1, got {self.count}")

    def actions(self) -> Tuple[AdaptiveAction, ...]:
        return (CrashAction(pid=self.pid),)


@dataclass(frozen=True)
class TurnByzantineWhen(_TriggeredFault):
    """Turn ``pid`` Byzantine once ``count`` observations matched ``after``.

    The process runs correctly until the trigger fires, then its protocol
    instance is swapped for ``behaviour`` (``"mute"`` forgets the wrapped
    instance; every relay behaviour — ``"drop"``, ``"forge"``,
    ``"alter_sender"``, ``"send_empty"``, ``"limited_broadcast"``,
    ``"truncate_path"`` — wraps the *live* instance, so the turned
    process keeps its accumulated protocol state).  The pid counts
    against the spec's ``f`` budget — an adaptive adversary corrupts
    processes mid-run but cannot exceed the paper's fault bound.
    """

    pid: int
    after: ObservationFilter = ObservationFilter(kind="deliver")
    count: int = 1
    behaviour: str = "mute"
    drop_probability: float = 0.5

    _BEHAVIOURS = (
        "mute",
        "drop",
        "forge",
        "alter_sender",
        "send_empty",
        "limited_broadcast",
        "truncate_path",
    )

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SpecError(f"trigger count must be >= 1, got {self.count}")
        if self.behaviour not in self._BEHAVIOURS:
            raise SpecError(
                f"adaptive behaviour {self.behaviour!r} not supported; "
                f"expected one of {self._BEHAVIOURS} (equivocation only "
                "makes sense at broadcast time, before any trigger)"
            )
        if not 0.0 <= self.drop_probability <= 1.0:
            raise SpecError(
                f"drop_probability must be within [0, 1], "
                f"got {self.drop_probability}"
            )

    def actions(self) -> Tuple[AdaptiveAction, ...]:
        return (
            ByzantineAction(
                pid=self.pid,
                behaviour=self.behaviour,
                drop_probability=self.drop_probability,
            ),
        )


@dataclass(frozen=True)
class CutLinkWhen(_TriggeredFault):
    """Cut the ``{u, v}`` link once ``count`` observations matched ``after``.

    ``duration_ms=None`` cuts the link for the rest of the run; a finite
    duration reopens it.  Unlike :class:`LinkDropWindow` the cut is
    placed *reactively* — e.g. the instant the first message crosses the
    link — which is how an adaptive network-level adversary partitions a
    barely-connected graph at the worst possible moment.
    """

    u: int
    v: int
    after: ObservationFilter = ObservationFilter(kind="send")
    count: int = 1
    duration_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SpecError(f"trigger count must be >= 1, got {self.count}")
        if self.duration_ms is not None and self.duration_ms <= 0:
            raise SpecError(
                f"cut duration must be positive (or None), got {self.duration_ms}"
            )

    def actions(self) -> Tuple[AdaptiveAction, ...]:
        return (
            LinkDownAction(u=self.u, v=self.v, duration_ms=self.duration_ms),
        )


#: The AdaptiveFault protocol: anything with ``after``, ``count``,
#: ``actions()`` and the ``trigger(observation) -> actions`` hook.
AdaptiveFault = Union[CrashWhen, TurnByzantineWhen, CutLinkWhen]

#: Concrete adaptive fault types accepted by ``ScenarioSpec.adaptive``.
ADAPTIVE_FAULT_TYPES = (CrashWhen, TurnByzantineWhen, CutLinkWhen)


class AdaptiveController:
    """Per-run trigger state of a spec's adaptive faults.

    Both execution backends feed every run observation through
    :meth:`observe`; each fault fires exactly once, after its filter
    matched ``count`` times.  The controller is deliberately
    backend-agnostic — *applying* the returned actions (crashing a node,
    cutting a link, swapping a protocol) is the backend's job.
    """

    def __init__(self, faults: Tuple[AdaptiveFault, ...]) -> None:
        self.faults = tuple(faults)
        self._matched = [0] * len(self.faults)
        self._fired = [False] * len(self.faults)

    def observe(self, observation: Observation) -> List[AdaptiveAction]:
        """Actions of every fault whose trigger ``observation`` completes."""
        actions: List[AdaptiveAction] = []
        for index, fault in enumerate(self.faults):
            if self._fired[index]:
                continue
            if not fault.after.matches(observation):
                continue
            self._matched[index] += 1
            if self._matched[index] >= fault.count:
                self._fired[index] = True
                actions.extend(fault.actions())
        return actions

    @property
    def fired(self) -> Tuple[AdaptiveFault, ...]:
        """The faults whose triggers have fired so far."""
        return tuple(
            fault
            for index, fault in enumerate(self.faults)
            if self._fired[index]
        )


__all__ = [
    "CrashAt",
    "LinkDropWindow",
    "DelayedStart",
    "JoinAt",
    "LeaveAt",
    "RewireLinkAt",
    "CHURN_FAULT_TYPES",
    "FaultEvent",
    "OBSERVATION_KINDS",
    "ObservationFilter",
    "CrashAction",
    "ByzantineAction",
    "LinkDownAction",
    "AdaptiveAction",
    "CrashWhen",
    "TurnByzantineWhen",
    "CutLinkWhen",
    "AdaptiveFault",
    "ADAPTIVE_FAULT_TYPES",
    "AdaptiveController",
]
