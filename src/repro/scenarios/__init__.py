"""Declarative, reproducible simulation scenarios.

This package turns the ad-hoc experiment loops of the benchmarks into a
composable scenario engine:

* :mod:`repro.scenarios.spec` — pure-data specs describing a topology, a
  delay regime, a protocol configuration and an adversary;
* :mod:`repro.scenarios.placement` — strategies choosing *where* the
  Byzantine processes sit (random / max-degree / articulation-adjacent);
* :mod:`repro.scenarios.faults` — timed fault events (crash-at-time,
  link-drop windows, delayed-start nodes);
* :mod:`repro.scenarios.grid` — cartesian expansion of a base spec into
  sweep cells;
* :mod:`repro.scenarios.engine` — the runner producing a
  :class:`~repro.scenarios.engine.ScenarioResult` per cell;
* :mod:`repro.scenarios.backends` — pluggable execution backends: the
  deterministic discrete-event simulator and the asyncio TCP runtime
  (real sockets on localhost), selected per cell via ``spec.backend``;
* :mod:`repro.scenarios.conformance` — cross-backend agreement on the
  delivery/safety verdicts of one spec.

Scenario cells are plain picklable data, which is what lets
:class:`repro.runner.parallel.SweepExecutor` fan them out over a process
pool while guaranteeing results identical to a serial run.
"""

from repro.scenarios.backends import (
    BACKENDS,
    AsyncioBackend,
    ScenarioBackend,
    SimulationBackend,
    get_backend,
)
from repro.scenarios.conformance import (
    BackendVerdict,
    ConformanceReport,
    run_conformance,
    verdict_of,
)
from repro.scenarios.engine import (
    ScenarioResult,
    build_network,
    build_protocols,
    place_byzantine,
    run_scenario,
    simulate_scenario,
)
from repro.scenarios.faults import CrashAt, DelayedStart, FaultEvent, LinkDropWindow
from repro.scenarios.grid import expand_grid, seed_cells
from repro.scenarios.placement import PLACEMENT_STRATEGIES, place_adversaries
from repro.scenarios.serialize import (
    SerializationError,
    dumps_result,
    dumps_spec,
    loads_result,
    loads_spec,
)
from repro.scenarios.spec import (
    BACKEND_NAMES,
    AdversarySpec,
    DelaySpec,
    ScenarioSpec,
    TopologySpec,
)

__all__ = [
    # specs
    "ScenarioSpec",
    "TopologySpec",
    "DelaySpec",
    "AdversarySpec",
    "BACKEND_NAMES",
    # faults
    "CrashAt",
    "LinkDropWindow",
    "DelayedStart",
    "FaultEvent",
    # placement
    "PLACEMENT_STRATEGIES",
    "place_adversaries",
    # grid
    "expand_grid",
    "seed_cells",
    # engine
    "ScenarioResult",
    "run_scenario",
    "simulate_scenario",
    "build_network",
    "build_protocols",
    "place_byzantine",
    # backends
    "ScenarioBackend",
    "SimulationBackend",
    "AsyncioBackend",
    "BACKENDS",
    "get_backend",
    # conformance
    "BackendVerdict",
    "ConformanceReport",
    "verdict_of",
    "run_conformance",
    # wire serialization
    "SerializationError",
    "dumps_spec",
    "loads_spec",
    "dumps_result",
    "loads_result",
]
