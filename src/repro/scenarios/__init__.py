"""Declarative, reproducible simulation scenarios.

This package turns the ad-hoc experiment loops of the benchmarks into a
composable scenario engine:

* :mod:`repro.scenarios.spec` — pure-data specs describing a topology, a
  delay regime, a protocol configuration and an adversary;
* :mod:`repro.scenarios.placement` — strategies choosing *where* the
  Byzantine processes sit (random / max-degree / articulation-adjacent);
* :mod:`repro.scenarios.faults` — timed fault events (crash-at-time,
  link-drop windows, delayed-start nodes);
* :mod:`repro.scenarios.grid` — cartesian expansion of a base spec into
  sweep cells;
* :mod:`repro.scenarios.engine` — the deterministic runner producing a
  :class:`~repro.scenarios.engine.ScenarioResult` per cell.

Scenario cells are plain picklable data, which is what lets
:class:`repro.runner.parallel.SweepExecutor` fan them out over a process
pool while guaranteeing results identical to a serial run.
"""

from repro.scenarios.engine import (
    ScenarioResult,
    build_network,
    build_protocols,
    place_byzantine,
    run_scenario,
)
from repro.scenarios.faults import CrashAt, DelayedStart, FaultEvent, LinkDropWindow
from repro.scenarios.grid import expand_grid, seed_cells
from repro.scenarios.placement import PLACEMENT_STRATEGIES, place_adversaries
from repro.scenarios.spec import AdversarySpec, DelaySpec, ScenarioSpec, TopologySpec

__all__ = [
    # specs
    "ScenarioSpec",
    "TopologySpec",
    "DelaySpec",
    "AdversarySpec",
    # faults
    "CrashAt",
    "LinkDropWindow",
    "DelayedStart",
    "FaultEvent",
    # placement
    "PLACEMENT_STRATEGIES",
    "place_adversaries",
    # grid
    "expand_grid",
    "seed_cells",
    # engine
    "ScenarioResult",
    "run_scenario",
    "build_network",
    "build_protocols",
    "place_byzantine",
]
