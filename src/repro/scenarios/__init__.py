"""Declarative, reproducible simulation scenarios.

This package turns the ad-hoc experiment loops of the benchmarks into a
composable scenario engine:

* :mod:`repro.scenarios.spec` — pure-data specs describing a topology, a
  delay regime, a protocol configuration, an adversary and a broadcast
  workload (:class:`~repro.scenarios.spec.WorkloadSpec`: one broadcast
  by default, sensor-style repeated/round-robin schedules otherwise);
* :mod:`repro.scenarios.placement` — strategies choosing *where* the
  Byzantine processes sit (random / max-degree / articulation-adjacent);
* :mod:`repro.scenarios.faults` — timed fault events (crash-at-time,
  link-drop windows, delayed-start nodes) and adaptive, trigger-driven
  adversaries (crash/convert/cut once observed protocol events match);
* :mod:`repro.scenarios.grid` — cartesian expansion of a base spec into
  sweep cells;
* :mod:`repro.scenarios.engine` — the runner producing a
  :class:`~repro.scenarios.engine.ScenarioResult` per cell, with one
  :class:`~repro.scenarios.engine.BroadcastOutcome` per workload
  broadcast and run-level throughput aggregates;
* :mod:`repro.scenarios.backends` — pluggable execution backends: the
  deterministic discrete-event simulator and the asyncio TCP runtime
  (real sockets on localhost), selected per cell via ``spec.backend``;
* :mod:`repro.scenarios.conformance` — cross-backend agreement on the
  delivery/safety verdicts of one spec (safety-only verdicts for lossy
  or adaptive scenarios, whose delivery sets legitimately differ);
* :mod:`repro.scenarios.oracle` — the safety oracle: paper-level BRB
  invariants checked on any result, plus randomized lossy/adaptive
  scenario grids for the cross-backend oracle test suite.

Scenario cells are plain picklable data, which is what lets
:class:`repro.runner.parallel.SweepExecutor` fan them out over a process
pool while guaranteeing results identical to a serial run.
"""

from repro.scenarios.backends import (
    BACKENDS,
    AsyncioBackend,
    ScenarioBackend,
    SimulationBackend,
    get_backend,
)
from repro.scenarios.conformance import (
    BackendVerdict,
    BroadcastVerdict,
    ConformanceReport,
    SafetyVerdict,
    broadcast_verdict_of,
    conformance_mode_for,
    no_forged_deliveries,
    run_conformance,
    safety_verdict_of,
    verdict_of,
)
from repro.scenarios.engine import (
    BroadcastOutcome,
    ScenarioResult,
    build_network,
    build_protocols,
    freeze_broadcast_outcome,
    freeze_result,
    place_byzantine,
    run_scenario,
    simulate_scenario,
)
from repro.scenarios.faults import (
    CHURN_FAULT_TYPES,
    AdaptiveController,
    AdaptiveFault,
    CrashAt,
    CrashWhen,
    CutLinkWhen,
    DelayedStart,
    FaultEvent,
    JoinAt,
    LeaveAt,
    LinkDropWindow,
    ObservationFilter,
    RewireLinkAt,
    TurnByzantineWhen,
)
from repro.scenarios.grid import expand_grid, seed_cells
from repro.scenarios.oracle import (
    OracleViolation,
    assert_safe,
    check_causal_order,
    check_result,
    sample_lossy_adaptive_specs,
    totality_expected,
)
from repro.scenarios.jsonio import (
    SpecJSONError,
    dumps_spec_json,
    loads_spec_json,
    spec_from_jsonable,
    spec_to_jsonable,
)
from repro.scenarios.placement import PLACEMENT_STRATEGIES, place_adversaries
from repro.scenarios.reduce import (
    REDUCTION_OPERATORS,
    fault_event_count,
    reduction_candidates,
    spec_size,
)
from repro.scenarios.serialize import (
    SerializationError,
    dumps_result,
    dumps_spec,
    loads_result,
    loads_spec,
)
from repro.scenarios.spec import (
    BACKEND_NAMES,
    AdversarySpec,
    BroadcastSpec,
    DelaySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = [
    # specs
    "ScenarioSpec",
    "TopologySpec",
    "DelaySpec",
    "AdversarySpec",
    "BroadcastSpec",
    "WorkloadSpec",
    "BACKEND_NAMES",
    # faults
    "CrashAt",
    "LinkDropWindow",
    "DelayedStart",
    "JoinAt",
    "LeaveAt",
    "RewireLinkAt",
    "CHURN_FAULT_TYPES",
    "FaultEvent",
    # adaptive faults
    "ObservationFilter",
    "CrashWhen",
    "TurnByzantineWhen",
    "CutLinkWhen",
    "AdaptiveFault",
    "AdaptiveController",
    # placement
    "PLACEMENT_STRATEGIES",
    "place_adversaries",
    # grid
    "expand_grid",
    "seed_cells",
    # engine
    "ScenarioResult",
    "BroadcastOutcome",
    "run_scenario",
    "simulate_scenario",
    "build_network",
    "build_protocols",
    "place_byzantine",
    "freeze_result",
    "freeze_broadcast_outcome",
    # backends
    "ScenarioBackend",
    "SimulationBackend",
    "AsyncioBackend",
    "BACKENDS",
    "get_backend",
    # conformance
    "BackendVerdict",
    "BroadcastVerdict",
    "SafetyVerdict",
    "ConformanceReport",
    "verdict_of",
    "broadcast_verdict_of",
    "safety_verdict_of",
    "no_forged_deliveries",
    "conformance_mode_for",
    "run_conformance",
    # safety oracle
    "OracleViolation",
    "check_result",
    "check_causal_order",
    "assert_safe",
    "totality_expected",
    "sample_lossy_adaptive_specs",
    # wire serialization
    "SerializationError",
    "dumps_spec",
    "loads_spec",
    "dumps_result",
    "loads_result",
    # JSON spec serialization (corpus format)
    "SpecJSONError",
    "spec_to_jsonable",
    "spec_from_jsonable",
    "dumps_spec_json",
    "loads_spec_json",
    # spec reduction (delta debugging)
    "REDUCTION_OPERATORS",
    "reduction_candidates",
    "fault_event_count",
    "spec_size",
]
