"""Cross-backend conformance: do two backends agree on one scenario?

The simulation backend is deterministic down to the timestamp; the
asyncio backend runs over real sockets and its timings are wall-clock.
What *must* agree between them — and what CI asserts — are the
delivery/safety verdicts: which processes are correct, which delivered,
what they delivered, and whether the BRB predicates (totality,
agreement, validity) hold.  :class:`BackendVerdict` captures exactly
that timing-free projection of a
:class:`~repro.scenarios.engine.ScenarioResult`, and
:func:`run_conformance` runs one spec on several backends and compares.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Sequence, Tuple

from repro.scenarios.engine import BroadcastOutcome, ScenarioResult, run_scenario
from repro.scenarios.spec import ScenarioSpec


@dataclass(frozen=True)
class BroadcastVerdict:
    """Timing-free delivery/safety projection of one broadcast outcome."""

    source: int
    bid: int
    #: Correct processes that delivered this broadcast, sorted.
    delivered_correct: Tuple[int, ...]
    #: (pid, payload_hex) for every correct process that delivered it.
    payloads: Tuple[Tuple[int, str], ...]
    all_correct_delivered: bool
    agreement_holds: bool
    validity_holds: bool


@dataclass(frozen=True)
class BackendVerdict:
    """Timing-free delivery/safety projection of one scenario result.

    The run-level fields describe the primary broadcast and the
    aggregated predicates (every broadcast must satisfy them);
    ``broadcasts`` carries one :class:`BroadcastVerdict` per workload
    broadcast, sorted by ``(source, bid)``, so multi-broadcast workloads
    are compared broadcast by broadcast.
    """

    correct_processes: Tuple[int, ...]
    crashed: Tuple[int, ...]
    byzantine: Tuple[Tuple[int, str], ...]
    #: Correct processes that delivered the primary broadcast, sorted.
    delivered_correct: Tuple[int, ...]
    #: (pid, payload_hex) for every correct process that delivered it.
    payloads: Tuple[Tuple[int, str], ...]
    all_correct_delivered: bool
    agreement_holds: bool
    validity_holds: bool
    #: Per-broadcast verdicts, sorted by (source, bid).
    broadcasts: Tuple[BroadcastVerdict, ...] = ()


def broadcast_verdict_of(
    outcome: BroadcastOutcome, correct: frozenset
) -> BroadcastVerdict:
    """Project one broadcast outcome onto its comparable verdict fields."""
    return BroadcastVerdict(
        source=outcome.source,
        bid=outcome.bid,
        delivered_correct=tuple(
            sorted(pid for pid in outcome.delivered_processes if pid in correct)
        ),
        payloads=tuple(
            sorted(
                (pid, payload)
                for _, pid, _, _, payload in outcome.delivery_trace
                if pid in correct
            )
        ),
        all_correct_delivered=outcome.all_correct_delivered,
        agreement_holds=outcome.agreement_holds,
        validity_holds=outcome.validity_holds,
    )


def verdict_of(result: ScenarioResult) -> BackendVerdict:
    """Project a result onto the backend-comparable verdict fields."""
    correct = frozenset(result.correct_processes)
    payloads = tuple(
        sorted(
            (pid, payload)
            for _, pid, _, _, payload in result.delivery_trace
            if pid in correct
        )
    )
    return BackendVerdict(
        correct_processes=tuple(sorted(result.correct_processes)),
        crashed=result.crashed,
        byzantine=result.byzantine,
        delivered_correct=tuple(
            sorted(pid for pid in result.delivered_processes if pid in correct)
        ),
        payloads=payloads,
        all_correct_delivered=result.all_correct_delivered,
        agreement_holds=result.agreement_holds,
        validity_holds=result.validity_holds,
        broadcasts=tuple(
            broadcast_verdict_of(outcome, correct) for outcome in result.outcomes
        ),
    )


@dataclass(frozen=True)
class ConformanceReport:
    """Verdicts of one spec across backends, plus the disagreement list."""

    spec_name: str
    scenario_hashes: Tuple[Tuple[str, str], ...]
    verdicts: Tuple[Tuple[str, BackendVerdict], ...]
    #: Per-backend latency until all correct processes delivered (None if
    #: some did not).  Informational only — simulated vs wall-clock
    #: milliseconds — and deliberately not part of the agreement check.
    latencies_ms: Tuple[Tuple[str, object], ...] = ()

    @property
    def agree(self) -> bool:
        """Whether every backend produced the same verdict."""
        return not self.mismatches()

    def mismatches(self) -> List[str]:
        """Human-readable field-level disagreements against the first backend."""
        if len(self.verdicts) < 2:
            return []
        reference_name, reference = self.verdicts[0]
        problems: List[str] = []
        for name, verdict in self.verdicts[1:]:
            for field_ in fields(BackendVerdict):
                expected = getattr(reference, field_.name)
                observed = getattr(verdict, field_.name)
                if expected != observed:
                    problems.append(
                        f"{field_.name}: {reference_name}={expected!r} "
                        f"vs {name}={observed!r}"
                    )
        return problems


def run_conformance(
    spec: ScenarioSpec,
    backends: Sequence[str] = ("simulation", "asyncio"),
    *,
    overrides: Dict[str, object] = None,
) -> ConformanceReport:
    """Run one spec on every listed backend and compare the verdicts.

    ``overrides`` optionally maps a backend name to a configured
    :class:`~repro.scenarios.backends.ScenarioBackend` instance (e.g. an
    ``AsyncioBackend`` with a shorter delivery timeout for CI).
    """
    overrides = overrides or {}
    results: List[Tuple[str, ScenarioResult]] = []
    for name in backends:
        result = run_scenario(spec.with_backend(name), backend=overrides.get(name))
        results.append((name, result))
    return ConformanceReport(
        spec_name=spec.name,
        scenario_hashes=tuple(
            (name, result.scenario_hash) for name, result in results
        ),
        verdicts=tuple((name, verdict_of(result)) for name, result in results),
        latencies_ms=tuple((name, result.latency_ms) for name, result in results),
    )


__all__ = [
    "BroadcastVerdict",
    "BackendVerdict",
    "ConformanceReport",
    "broadcast_verdict_of",
    "verdict_of",
    "run_conformance",
]
